//! Nested teams and team-relative intrinsics: a 16-image run splits into a
//! 2-level team tree (grid → rows → row halves), exercising `form team`,
//! `change team`, `team_number()`, `this_image()`/`num_images()` inside
//! teams, coarray allocation scoped to a team, and events across a team.
//!
//! Run with: `cargo run --release --example team_tree`

use caf::runtime::{run, RunConfig};
use caf::topology::presets;

fn main() {
    let cfg = RunConfig::sim_packed(presets::mini(4, 4), 16);

    let summaries = run(cfg, |img| {
        let initial_me = img.this_image();
        assert_eq!(img.team_number(), -1, "initial team is numbered -1");

        // Level 1: four "row" teams of 4 images.
        let row = ((initial_me - 1) / 4) as i64;
        let row_team = img.form_team(row);
        let (_row_team, summary) = img.change_team(row_team, |img| {
            assert_eq!(img.num_images(), 4);
            assert_eq!(img.team_number(), row);
            assert_eq!(img.team_depth(), 1);

            // A coarray allocated *inside* the team spans only the team —
            // the paper's memory benefit of change-team allocation.
            let scoped = img.coarray::<u64>(1);
            assert_eq!(scoped.team_size(), 4);
            scoped.write_local(&[img.this_image() as u64 * 11]);
            img.sync_all();
            let from_teammate = scoped.get_elem(3, 0);
            assert_eq!(from_teammate, 33);

            // Events within the team: image 1 is a coordinator.
            let mut ev = img.events(1);
            if img.this_image() != 1 {
                ev.post(1, 0);
            } else {
                ev.wait(0, 3);
            }

            // Level 2: split each row into halves.
            let half = ((img.this_image() - 1) / 2) as i64;
            let half_team = img.form_team(half);
            let (_half_team, pair_sum) = img.change_team(half_team, |img| {
                assert_eq!(img.num_images(), 2);
                assert_eq!(img.team_depth(), 2);
                let mut v = vec![img.image_index_in_initial(img.this_image()) as u64];
                img.co_sum(&mut v);
                v[0]
            });
            assert_eq!(img.team_depth(), 1, "end team pops the stack");
            pair_sum
        });
        assert_eq!(img.team_depth(), 0);
        (initial_me, summary)
    });

    for (me, pair_sum) in &summaries {
        // Each pair sums two consecutive initial image numbers.
        let base = (me - 1) / 2 * 2 + 1;
        assert_eq!(*pair_sum, (base + base + 1) as u64);
    }
    println!("16 images -> 4 row teams -> 8 pair teams, all intrinsics consistent");
    println!("team_tree OK");
}
