//! Segment/flag handles shared by both fabric implementations, plus the
//! relaxed-atomic byte storage the real-threads fabric uses.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Handle to one segment of one image's memory.
///
/// Allocation is **image-local**: `alloc_segment(me, …)` creates storage on
/// `me` only and the returned id indexes `me`'s table. Remote access
/// therefore needs the *owner's* id. Teams obtain co-members' ids by
/// exchanging them through their parent team's communication structures
/// (see `caf-collectives`); images executing identical allocation sequences
/// (classic SPMD symmetry) get identical ids by construction.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegmentId(pub usize);

impl fmt::Debug for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seg{}", self.0)
    }
}

/// Handle to one sync flag of one image. Allocation is image-local, like
/// [`SegmentId`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlagId(pub usize);

impl FlagId {
    /// The `i`-th flag of a block allocated with `alloc_flags(count)`.
    #[inline]
    pub fn nth(self, i: usize) -> FlagId {
        FlagId(self.0 + i)
    }
}

impl fmt::Debug for FlagId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flag{}", self.0)
    }
}

/// A byte buffer writable/readable concurrently from any thread using
/// relaxed atomic accesses.
///
/// PGAS puts and gets may race when the *user program* omits
/// synchronization; modeling target memory as `AtomicU8` keeps such races
/// well-defined at the Rust level (each byte independently yields some
/// written value) while the fabric's flag operations provide the
/// acquire/release edges that make properly-synchronized programs see full
/// payloads.
pub struct SharedBytes {
    data: Box<[AtomicU8]>,
}

impl SharedBytes {
    /// A zeroed buffer of `len` bytes.
    pub fn new(len: usize) -> Self {
        let mut v = Vec::with_capacity(len);
        v.resize_with(len, || AtomicU8::new(0));
        Self {
            data: v.into_boxed_slice(),
        }
    }

    /// Buffer length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer has zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy `src` into the buffer at `offset` (relaxed per-byte stores).
    pub fn write(&self, offset: usize, src: &[u8]) {
        let end = offset
            .checked_add(src.len())
            .expect("segment offset overflow");
        assert!(
            end <= self.data.len(),
            "put of {} bytes at offset {offset} exceeds segment of {} bytes",
            src.len(),
            self.data.len()
        );
        for (cell, &b) in self.data[offset..end].iter().zip(src) {
            cell.store(b, Ordering::Relaxed);
        }
    }

    /// Copy from the buffer at `offset` into `dst` (relaxed per-byte loads).
    pub fn read(&self, offset: usize, dst: &mut [u8]) {
        let end = offset
            .checked_add(dst.len())
            .expect("segment offset overflow");
        assert!(
            end <= self.data.len(),
            "get of {} bytes at offset {offset} exceeds segment of {} bytes",
            dst.len(),
            self.data.len()
        );
        for (cell, b) in self.data[offset..end].iter().zip(dst) {
            *b = cell.load(Ordering::Relaxed);
        }
    }

    /// View an aligned 8-byte cell as an `AtomicU64` for remote atomics.
    ///
    /// # Panics
    /// Panics if `offset` is not 8-byte aligned or out of range.
    pub fn as_atomic_u64(&self, offset: usize) -> &AtomicU64 {
        assert!(
            offset.is_multiple_of(8),
            "AMO offset {offset} not 8-byte aligned"
        );
        assert!(
            offset + 8 <= self.data.len(),
            "AMO at offset {offset} exceeds segment of {} bytes",
            self.data.len()
        );
        // SAFETY: `AtomicU8` and `AtomicU64` have the same representation as
        // their integer counterparts; the region [offset, offset+8) is
        // in-bounds, 8-byte aligned (the box allocation is at least 8-byte
        // aligned for any len >= 8 because we check offset alignment against
        // the base... we additionally assert the base pointer alignment),
        // and all accesses to it go through atomic operations.
        let base = self.data.as_ptr() as usize;
        assert!(
            (base + offset).is_multiple_of(8),
            "segment base not 8-byte aligned for AMO"
        );
        unsafe { &*((base + offset) as *const AtomicU64) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_bytes_roundtrip() {
        let s = SharedBytes::new(32);
        s.write(4, &[1, 2, 3, 4]);
        let mut out = [0u8; 6];
        s.read(3, &mut out);
        assert_eq!(out, [0, 1, 2, 3, 4, 0]);
    }

    #[test]
    #[should_panic(expected = "exceeds segment")]
    fn shared_bytes_bounds_checked() {
        let s = SharedBytes::new(8);
        s.write(5, &[0; 4]);
    }

    #[test]
    fn shared_bytes_atomic_u64_view() {
        let s = SharedBytes::new(24);
        let a = s.as_atomic_u64(8);
        a.store(0x0102_0304_0506_0708, Ordering::SeqCst);
        let mut out = [0u8; 8];
        s.read(8, &mut out);
        assert_eq!(u64::from_ne_bytes(out), 0x0102_0304_0506_0708);
        assert_eq!(a.fetch_add(1, Ordering::SeqCst), 0x0102_0304_0506_0708);
    }

    #[test]
    #[should_panic(expected = "not 8-byte aligned")]
    fn amo_alignment_enforced() {
        let s = SharedBytes::new(24);
        s.as_atomic_u64(4);
    }

    #[test]
    fn flag_id_nth() {
        assert_eq!(FlagId(10).nth(3), FlagId(13));
    }

    #[test]
    fn empty_shared_bytes() {
        let s = SharedBytes::new(0);
        assert!(s.is_empty());
        s.write(0, &[]);
        let mut out = [];
        s.read(0, &mut out);
    }
}
