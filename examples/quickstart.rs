//! Quickstart: images, coarrays, one-sided puts, synchronization, and an
//! intrinsic reduction — the CAF "hello world" on a simulated 2-node
//! cluster.
//!
//! Run with: `cargo run --release --example quickstart`

use caf::runtime::{run, RunConfig};
use caf::topology::presets;

fn main() {
    // 8 images packed onto a simulated 2-node x 4-core machine.
    let cfg = RunConfig::sim_packed(presets::mini(2, 4), 8);

    let results = run(cfg, |img| {
        let me = img.this_image(); // 1-based, like Fortran
        let n = img.num_images();

        // A coarray with 1 element per image:  integer :: x[*]
        let x = img.coarray::<u64>(1);

        // x[right_neighbor] = me   — one-sided put, ring style.
        let right = me % n + 1;
        x.put(right, 0, &[me as u64]);

        img.sync_all(); // sync all

        // Read the value our left neighbor deposited in *our* memory.
        let got = x.get_elem(me, 0);
        let left = if me == 1 { n } else { me - 1 };
        assert_eq!(got, left as u64);

        // co_sum: every image contributes `me`, everyone gets the total.
        let mut total = vec![me as u64];
        img.co_sum(&mut total);
        assert_eq!(total[0], (n * (n + 1) / 2) as u64);

        if me == 1 {
            println!("co_sum over {n} images = {}", total[0]);
            println!(
                "virtual time so far: {:.2} us (simulated cluster)",
                img.now_ns() as f64 / 1000.0
            );
        }
        got
    });

    println!("per-image neighbor values: {results:?}");
    println!("quickstart OK");
}
