//! `cargo xtask` — repo automation.
//!
//! `cargo xtask check [--quick|--deep] [--seeds N] [--socket|--socket-only]
//! [--shm-only]`
//!
//! builds and runs the `caf-check` differential harness (crates/check):
//! the conformance program across the fabric × algorithm × chaos-seed
//! matrix, plus the shared-memory column (real fleets with the zero-copy
//! shm tier on, diffed against the sim oracle and the pure-wire fleet —
//! part of every sweep, alone via `--shm-only`). `--quick` is the CI
//! sweep (a few hundred seeded runs, about a minute); `--deep` is the
//! scheduled/manual sweep; `--socket` adds the pure-wire backend column
//! (real multi-process `SocketFabric` fleets diffed against the sim
//! oracle) and `--socket-only` runs just that column. Any extra flags are
//! passed through to the `caf-check` binary, and `CAF_CHECK_SEED=<seed>`
//! replays a single reported seed.
//!
//! `cargo xtask bench-diff <baseline.json> <new.json> [--tolerance PCT]
//! [--wall-tolerance PCT]`
//!
//! compares two bench JSON files (`exp_c1_msgsize`'s
//! `BENCH_collectives.json`, `exp_s1_simscale`'s `BENCH_simscale.json`)
//! and fails (exit 1) when any matching `(op, bytes, algo)` entry
//! regressed by more than the tolerance (default 10%). The simulator is
//! deterministic, so on an unchanged runtime modeled-time rows diff to
//! exactly zero; any drift is a real change to the modeled data path.
//! Rows whose algo ends in `wall` measure host wall-clock (simulator
//! throughput) and are inherently noisy on shared CI runners:
//! `--wall-tolerance` applies a looser gate to just those rows.
//!
//! No external JSON crate: the emitter in `exp_c1_msgsize` writes one
//! result object per line, and the tiny parser below reads exactly that
//! shape (and refuses anything else rather than guessing).

mod json;

use std::process::ExitCode;

#[derive(Debug, PartialEq)]
struct Entry {
    op: String,
    bytes: u64,
    algo: String,
    ns: f64,
}

fn parse_bench(path: &str) -> Result<Vec<Entry>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let root = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let results = root
        .get("results")
        .and_then(json::Value::as_array)
        .ok_or_else(|| format!("{path}: no \"results\" array"))?;
    let mut out = Vec::new();
    for (i, r) in results.iter().enumerate() {
        let field = |k: &str| {
            r.get(k)
                .cloned()
                .ok_or_else(|| format!("{path}: results[{i}] missing \"{k}\""))
        };
        out.push(Entry {
            op: field("op")?
                .as_str()
                .ok_or_else(|| format!("{path}: results[{i}].op not a string"))?
                .to_string(),
            bytes: field("bytes")?
                .as_f64()
                .ok_or_else(|| format!("{path}: results[{i}].bytes not a number"))?
                as u64,
            algo: field("algo")?
                .as_str()
                .ok_or_else(|| format!("{path}: results[{i}].algo not a string"))?
                .to_string(),
            ns: field("ns")?
                .as_f64()
                .ok_or_else(|| format!("{path}: results[{i}].ns not a number"))?,
        });
    }
    Ok(out)
}

fn bench_diff(
    baseline: &str,
    new: &str,
    tolerance_pct: f64,
    wall_tolerance_pct: Option<f64>,
    markdown: bool,
) -> Result<(), String> {
    let (report, verdict) =
        bench_diff_report(baseline, new, tolerance_pct, wall_tolerance_pct, markdown)?;
    println!("{report}");
    verdict
}

/// The diff itself, rendering into a string so the markdown table can be
/// unit-tested and piped verbatim into `$GITHUB_STEP_SUMMARY`. The outer
/// `Result` is a parse/usage failure; the inner one is the regression
/// verdict (the report is printed either way).
#[allow(clippy::type_complexity)]
fn bench_diff_report(
    baseline: &str,
    new: &str,
    tolerance_pct: f64,
    wall_tolerance_pct: Option<f64>,
    markdown: bool,
) -> Result<(String, Result<(), String>), String> {
    use std::fmt::Write as _;
    let base = parse_bench(baseline)?;
    let cur = parse_bench(new)?;
    let mut out = String::new();
    let mut compared = 0usize;
    let mut failures = Vec::new();
    if markdown {
        // GitHub-flavored table, made to be appended to a CI step summary
        // (`cargo xtask bench-diff a b --markdown >> "$GITHUB_STEP_SUMMARY"`).
        let _ = writeln!(out, "### Collective bench diff\n");
        let _ = writeln!(
            out,
            "| op | bytes | algo | baseline ns | new ns | Δ% | status |"
        );
        let _ = writeln!(out, "|---|---:|---|---:|---:|---:|---|");
    }
    for b in &base {
        let Some(c) = cur
            .iter()
            .find(|c| c.op == b.op && c.bytes == b.bytes && c.algo == b.algo)
        else {
            failures.push(format!(
                "missing in {new}: {} {} B {}",
                b.op, b.bytes, b.algo
            ));
            continue;
        };
        compared += 1;
        let delta_pct = (c.ns - b.ns) / b.ns * 100.0;
        // Wall-clock rows (simulator throughput) get their own, typically
        // looser, gate; modeled-time rows stay on the strict one.
        let tol = if b.algo.ends_with("wall") {
            wall_tolerance_pct.unwrap_or(tolerance_pct)
        } else {
            tolerance_pct
        };
        let regressed = delta_pct > tol;
        if regressed {
            failures.push(format!(
                "REGRESSION {} {} B {}: {:.1} -> {:.1} ns ({:+.1}%)",
                b.op, b.bytes, b.algo, b.ns, c.ns, delta_pct
            ));
        }
        if markdown {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {:.1} | {:.1} | {:+.2}% | {} |",
                b.op,
                b.bytes,
                b.algo,
                b.ns,
                c.ns,
                delta_pct,
                if regressed {
                    "❌ regression"
                } else {
                    "✅ ok"
                }
            );
        } else {
            let _ = writeln!(
                out,
                "{:>4}  {:<9} {:>8} B  {:<24} {:>14.1} -> {:>14.1} ns  {:+.2}%",
                if regressed { "FAIL" } else { "ok" },
                b.op,
                b.bytes,
                b.algo,
                b.ns,
                c.ns,
                delta_pct
            );
        }
    }
    if compared == 0 {
        return Err("no comparable entries between the two files".into());
    }
    let verdict = if failures.is_empty() {
        "no regressions".to_string()
    } else {
        format!("{} failure(s)", failures.len())
    };
    let wall_note = match wall_tolerance_pct {
        Some(w) => format!(" (wall rows ±{w}%)"),
        None => String::new(),
    };
    if markdown {
        let _ = writeln!(
            out,
            "\ncompared {compared} entries at ±{tolerance_pct}% tolerance{wall_note}: **{verdict}**"
        );
    } else {
        let _ = writeln!(
            out,
            "\ncompared {compared} entries, tolerance {tolerance_pct}%{wall_note}: {verdict}"
        );
    }
    let result = if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("\n"))
    };
    Ok((out, result))
}

/// Build and run the `caf-check` harness, passing every remaining CLI
/// argument straight through (`--quick`, `--deep`, `--seeds N`).
fn check(passthrough: &[String]) -> Result<(), String> {
    let mut cmd = std::process::Command::new(env!("CARGO"));
    cmd.args(["run", "--release", "-p", "caf-check", "--"]);
    cmd.args(passthrough);
    let status = cmd
        .status()
        .map_err(|e| format!("launching cargo run -p caf-check: {e}"))?;
    if status.success() {
        Ok(())
    } else {
        Err(format!("caf-check failed ({status})"))
    }
}

fn usage() -> String {
    "usage: cargo xtask check [--quick|--deep] [--seeds N] [--socket|--socket-only]\n       \
     \x20                 [--shm-only] [--recover|--recover-only] [--kill-after-ms T]\n       \
     cargo xtask bench-diff <baseline.json> <new.json> [--tolerance PCT]\n       \
     \x20                 [--wall-tolerance PCT] [--markdown]"
        .into()
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("bench-diff") => {
            let mut tolerance = 10.0f64;
            let mut wall_tolerance = None;
            let mut markdown = false;
            let mut files = Vec::new();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                if a == "--tolerance" {
                    let v = it.next().ok_or("--tolerance needs a value")?;
                    tolerance = v.parse().map_err(|e| format!("bad tolerance {v:?}: {e}"))?;
                } else if a == "--wall-tolerance" {
                    let v = it.next().ok_or("--wall-tolerance needs a value")?;
                    wall_tolerance = Some(
                        v.parse()
                            .map_err(|e| format!("bad wall tolerance {v:?}: {e}"))?,
                    );
                } else if a == "--markdown" {
                    markdown = true;
                } else {
                    files.push(a.clone());
                }
            }
            if files.len() != 2 {
                return Err(usage());
            }
            bench_diff(&files[0], &files[1], tolerance, wall_tolerance, markdown)
        }
        _ => Err(usage()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "experiment": "exp_c1_msgsize",
  "quick": true,
  "results": [
    {"op": "broadcast", "bytes": 8, "algo": "two_level", "ns": 100.0},
    {"op": "allreduce", "bytes": 1048576, "algo": "two_level_pipelined", "ns": 5000.5}
  ]
}"#;

    fn tmp(name: &str, content: &str) -> String {
        let p = std::env::temp_dir().join(format!("xtask-test-{name}.json"));
        std::fs::write(&p, content).unwrap();
        p.to_string_lossy().into_owned()
    }

    #[test]
    fn parses_the_emitted_shape() {
        let p = tmp("parse", SAMPLE);
        let entries = parse_bench(&p).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].op, "broadcast");
        assert_eq!(entries[1].bytes, 1_048_576);
        assert_eq!(entries[1].ns, 5000.5);
    }

    #[test]
    fn identical_files_pass() {
        let a = tmp("ident-a", SAMPLE);
        let b = tmp("ident-b", SAMPLE);
        assert!(bench_diff(&a, &b, 10.0, None, false).is_ok());
    }

    #[test]
    fn regression_beyond_tolerance_fails() {
        let a = tmp("reg-a", SAMPLE);
        let worse = SAMPLE.replace("100.0", "115.0");
        let b = tmp("reg-b", &worse);
        let err = bench_diff(&a, &b, 10.0, None, false).unwrap_err();
        assert!(err.contains("REGRESSION"), "{err}");
        // A looser tolerance admits the same delta.
        assert!(bench_diff(&a, &b, 20.0, None, false).is_ok());
    }

    #[test]
    fn wall_rows_use_the_looser_gate() {
        // A simscale-style file: one deterministic virt row, one noisy
        // wall row that regressed 30%.
        let base = r#"{
  "experiment": "exp_s1_simscale",
  "quick": true,
  "results": [
    {"op": "barrier", "bytes": 10000, "algo": "sharded_virt", "ns": 1000.0},
    {"op": "barrier", "bytes": 10000, "algo": "sharded_wall", "ns": 100.0}
  ]
}"#;
        let a = tmp("wall-a", base);
        let b = tmp("wall-b", &base.replace("100.0", "130.0"));
        // Without a wall tolerance the strict gate catches it...
        assert!(bench_diff(&a, &b, 10.0, None, false).is_err());
        // ...with one, the wall row passes while virt rows stay strict.
        assert!(bench_diff(&a, &b, 10.0, Some(75.0), false).is_ok());
        let c = tmp("wall-c", &base.replace("1000.0", "1300.0"));
        let err = bench_diff(&a, &c, 10.0, Some(75.0), false).unwrap_err();
        assert!(err.contains("REGRESSION"), "{err}");
    }

    #[test]
    fn improvement_passes() {
        let a = tmp("imp-a", SAMPLE);
        let better = SAMPLE.replace("5000.5", "2000.0");
        let b = tmp("imp-b", &better);
        assert!(bench_diff(&a, &b, 10.0, None, false).is_ok());
    }

    #[test]
    fn missing_entry_fails() {
        let a = tmp("miss-a", SAMPLE);
        let fewer = SAMPLE.replace(
            "    {\"op\": \"broadcast\", \"bytes\": 8, \"algo\": \"two_level\", \"ns\": 100.0},\n",
            "",
        );
        let b = tmp("miss-b", &fewer);
        let err = bench_diff(&a, &b, 10.0, None, false).unwrap_err();
        assert!(err.contains("missing"), "{err}");
    }

    #[test]
    fn markdown_renders_a_github_table() {
        let a = tmp("md-a", SAMPLE);
        let b = tmp("md-b", SAMPLE);
        let (report, verdict) = bench_diff_report(&a, &b, 10.0, None, true).unwrap();
        assert!(verdict.is_ok());
        assert!(
            report.contains("| op | bytes | algo | baseline ns | new ns | Δ% | status |"),
            "{report}"
        );
        assert!(
            report.contains("| broadcast | 8 | two_level | 100.0 | 100.0 | +0.00% | ✅ ok |"),
            "{report}"
        );
        assert!(report.contains("**no regressions**"), "{report}");
    }

    #[test]
    fn markdown_regressions_still_fail() {
        let a = tmp("mdreg-a", SAMPLE);
        let worse = SAMPLE.replace("100.0", "130.0");
        let b = tmp("mdreg-b", &worse);
        let (report, verdict) = bench_diff_report(&a, &b, 10.0, None, true).unwrap();
        let err = verdict.unwrap_err();
        assert!(err.contains("REGRESSION"), "{err}");
        assert!(report.contains("❌ regression"), "{report}");
        assert!(report.contains("**1 failure(s)**"), "{report}");
    }
}
