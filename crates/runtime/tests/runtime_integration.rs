//! End-to-end tests of the CAF runtime API: images, coarrays, teams,
//! sync statements, events, atomics — on both fabrics.

use caf_runtime::{run, CollectiveConfig, RunConfig};
use caf_topology::presets;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn sim(nodes: usize, cores: usize, images: usize) -> RunConfig {
    RunConfig::sim_packed(presets::mini(nodes, cores), images)
}

fn threads(nodes: usize, cores: usize, images: usize) -> RunConfig {
    RunConfig::threads_packed(presets::mini(nodes, cores), images)
}

#[test]
fn this_image_and_num_images() {
    let out = run(sim(2, 4, 8), |img| (img.this_image(), img.num_images()));
    for (i, (me, n)) in out.into_iter().enumerate() {
        assert_eq!(me, i + 1);
        assert_eq!(n, 8);
    }
}

#[test]
fn coarray_put_get_neighbor_ring() {
    // Image i writes its id into image (i % n) + 1, ring-style:
    // A(1)[right] = me; after sync, everyone checks its left neighbor's id.
    run(sim(2, 2, 4), |img| {
        let n = img.num_images();
        let me = img.this_image();
        let co = img.coarray::<u64>(2);
        let right = me % n + 1;
        co.put(right, 0, &[me as u64, me as u64 * 100]);
        img.sync_all();
        let left = if me == 1 { n } else { me - 1 };
        let mut got = [0u64; 2];
        co.get(me, 0, &mut got);
        assert_eq!(got, [left as u64, left as u64 * 100]);
    });
}

#[test]
fn coarray_remote_get() {
    run(sim(2, 2, 4), |img| {
        let me = img.this_image();
        let co = img.coarray::<f64>(1);
        co.write_local(&[me as f64 * 1.5]);
        img.sync_all();
        // Everyone reads image 3's value remotely.
        assert_eq!(co.get_elem(3, 0), 4.5);
    });
}

#[test]
fn coarray_inside_change_team_spans_only_the_subteam() {
    run(sim(2, 4, 8), |img| {
        let me = img.this_image();
        let team = img.form_team(((me - 1) % 2) as i64);
        let (_team, _) = img.change_team(team, |img| {
            assert_eq!(img.num_images(), 4);
            let co = img.coarray::<u64>(1);
            assert_eq!(co.team_size(), 4);
            co.write_local(&[img.this_image() as u64]);
            img.sync_all();
            // Sum of my subteam's values via remote gets.
            let mut total = 0;
            for j in 1..=4 {
                total += co.get_elem(j, 0);
            }
            assert_eq!(total, 1 + 2 + 3 + 4);
        });
    });
}

#[test]
fn change_team_intrinsics_and_mapping() {
    run(sim(2, 4, 8), |img| {
        let initial_me = img.this_image();
        let color = ((initial_me - 1) / 4) as i64; // 0 for 1..4, 1 for 5..8
        let team = img.form_team(color);
        let (_team, _) = img.change_team(team, |img| {
            assert_eq!(img.num_images(), 4);
            assert_eq!(img.team_number(), color);
            assert_eq!(img.team_depth(), 1);
            let expect_initial = (color as usize) * 4 + img.this_image();
            assert_eq!(img.image_index_in_initial(img.this_image()), expect_initial);
            assert_eq!(expect_initial, initial_me);
        });
        assert_eq!(img.team_depth(), 0);
        assert_eq!(img.team_number(), -1);
    });
}

#[test]
fn sync_all_inside_subteam_does_not_touch_other_team() {
    // Two teams; team 0 does many barriers while team 1 does none — if
    // sync_all leaked outside the team this would deadlock (and the sim
    // detects deadlocks).
    run(sim(2, 4, 8), |img| {
        let color = ((img.this_image() - 1) % 2) as i64;
        let team = img.form_team(color);
        let (_team, _) = img.change_team(team, |img| {
            if img.team_number() == 0 {
                for _ in 0..5 {
                    img.sync_all();
                }
            } else {
                img.compute(10_000);
            }
        });
    });
}

#[test]
fn sync_images_pairwise() {
    let counter = Arc::new(AtomicU64::new(0));
    let c2 = counter.clone();
    run(sim(1, 4, 4), move |img| {
        let me = img.this_image();
        // Image 1 is a hub: everyone syncs with it, it syncs with all.
        if me == 1 {
            img.sync_images(&[2, 3, 4]);
            assert_eq!(c2.load(Ordering::SeqCst), 3);
        } else {
            c2.fetch_add(1, Ordering::SeqCst);
            img.sync_images(&[1]);
        }
    });
}

#[test]
fn sync_images_repeated_pairs() {
    run(threads(1, 2, 2), |img| {
        let me = img.this_image();
        let partner = 3 - me;
        for _ in 0..50 {
            img.sync_images(&[partner]);
        }
    });
}

#[test]
fn events_producer_consumer() {
    run(sim(2, 2, 4), |img| {
        let me = img.this_image();
        let mut ev = img.events(2);
        if me != 1 {
            // All post twice to image 1's event 0, once to event 1.
            ev.post(1, 0);
            ev.post(1, 0);
            ev.post(1, 1);
        } else {
            ev.wait(0, 6);
            ev.wait(1, 3);
            assert_eq!(ev.query(0), 0);
        }
        img.sync_all();
    });
}

#[test]
fn event_query_counts_pending() {
    run(sim(1, 2, 2), |img| {
        let me = img.this_image();
        let mut ev = img.events(1);
        if me == 2 {
            ev.post(1, 0);
            ev.post(1, 0);
        }
        img.sync_all();
        if me == 1 {
            assert_eq!(ev.query(0), 2);
            ev.wait(0, 1);
            assert_eq!(ev.query(0), 1);
            ev.wait(0, 1);
            assert_eq!(ev.query(0), 0);
        }
    });
}

#[test]
fn atomics_on_coarray() {
    run(threads(1, 4, 4), |img| {
        let me = img.this_image();
        let co = img.coarray::<u64>(2);
        img.sync_all();
        // Everyone increments image 1's cell 0 a hundred times.
        for _ in 0..100 {
            co.atomic_add(1, 0, 1);
        }
        img.sync_all();
        if me == 1 {
            assert_eq!(co.atomic_read(1, 0), 400);
        }
        // CAS-based lock-ish exchange on cell 1 of image 2.
        let old = co.atomic_cas(2, 1, 0, me as u64);
        img.sync_all();
        if me == 1 {
            let winner = co.atomic_read(2, 1);
            assert!((1..=4).contains(&(winner as usize)));
        }
        let _ = old;
    });
}

#[test]
fn collectives_through_ctx_api() {
    run(sim(2, 4, 8), |img| {
        let me = img.this_image() as u64;
        let mut v = vec![me, 1];
        img.co_sum(&mut v);
        assert_eq!(v, vec![36, 8]);
        let mut w = vec![me as i64 - 5];
        img.co_min(&mut w);
        assert_eq!(w[0], -4);
        let mut b = if me == 3 { vec![0xBEEFu64] } else { vec![0] };
        img.co_broadcast(&mut b, 3);
        assert_eq!(b[0], 0xBEEF);
        let mut m = vec![(me as f64, me)];
        img.co_reduce_with(&mut m, |a, b| if a.0 >= b.0 { a } else { b });
        assert_eq!(m[0], (8.0, 8));
    });
}

#[test]
fn collectives_inside_subteams_overlap() {
    // The paper's motivation for teams: collectives on disjoint subteams
    // proceed without global synchronization.
    run(sim(2, 4, 8), |img| {
        let color = ((img.this_image() - 1) % 2) as i64;
        let team = img.form_team(color);
        let (_t, _) = img.change_team(team, |img| {
            let mut v = vec![img.this_image() as u64];
            img.co_sum(&mut v);
            assert_eq!(v[0], 1 + 2 + 3 + 4);
            let mut b = if img.this_image() == 2 {
                vec![color as u64 + 7]
            } else {
                vec![0]
            };
            img.co_broadcast(&mut b, 2);
            assert_eq!(b[0], color as u64 + 7);
        });
    });
}

#[test]
fn form_team_with_index_reverses_order() {
    run(sim(1, 4, 4), |img| {
        let n = img.num_images();
        let me = img.this_image();
        let team = img.form_team_with_index(9, n - me + 1);
        let (_t, _) = img.change_team(team, |img| {
            assert_eq!(img.this_image(), n - me + 1);
        });
    });
}

#[test]
fn one_level_and_two_level_configs_both_correct() {
    for cfg in [CollectiveConfig::one_level(), CollectiveConfig::two_level()] {
        let rc = sim(2, 4, 8).with_collectives(cfg);
        run(rc, |img| {
            let mut v = vec![img.this_image() as u64];
            img.co_sum(&mut v);
            assert_eq!(v[0], 36);
            img.sync_all();
        });
    }
}

#[test]
fn virtual_time_advances_with_compute_and_comm() {
    let out = run(sim(2, 2, 4), |img| {
        img.compute(5_000);
        img.sync_all();
        img.now_ns()
    });
    for t in out {
        assert!(t >= 5_000, "virtual time {t} must include compute");
    }
}

#[test]
fn deep_team_nesting_three_levels() {
    // Halve the team at each level: 16 -> 8 -> 4 -> 2.
    fn halve(img: &mut caf_runtime::ImageCtx, levels_left: usize) {
        if levels_left == 0 {
            return;
        }
        let size = img.num_images();
        let color = ((img.this_image() - 1) / (size / 2)) as i64;
        let team = img.form_team(color);
        let (_t, _) = img.change_team(team, |img| {
            assert_eq!(img.num_images(), size / 2);
            let mut v = vec![1u64];
            img.co_sum(&mut v);
            assert_eq!(v[0], (size / 2) as u64);
            halve(img, levels_left - 1);
        });
    }
    run(sim(2, 8, 16), |img| {
        halve(img, 3);
        img.sync_all();
        assert_eq!(img.num_images(), 16);
    });
}

#[test]
fn locks_protect_a_remote_counter() {
    // Classic lock test: n images increment a non-atomic remote cell under
    // a lock; the final count is exact only if mutual exclusion held.
    run(threads(1, 4, 4), |img| {
        let mut locks = img.locks(1);
        let cell = img.coarray::<u64>(1);
        img.sync_all();
        for _ in 0..50 {
            locks.lock(1, 0);
            let v = cell.get_elem(1, 0);
            cell.put_elem(1, 0, v + 1);
            img.sync_memory();
            locks.unlock(1, 0);
        }
        img.sync_all();
        assert_eq!(cell.get_elem(1, 0), 200);
    });
}

#[test]
fn try_lock_fails_while_held_elsewhere() {
    run(sim(1, 2, 2), |img| {
        let mut locks = img.locks(2);
        img.sync_all();
        if img.this_image() == 1 {
            locks.lock(1, 0);
            assert!(locks.holds(1, 0));
            img.sync_all(); // partner probes while we hold
            img.sync_all();
            locks.unlock(1, 0);
            img.sync_all();
        } else {
            img.sync_all();
            assert!(!locks.try_lock(1, 0), "lock is held by image 1");
            img.sync_all();
            img.sync_all();
            assert!(locks.try_lock(1, 0), "lock was released");
            locks.unlock(1, 0);
        }
    });
}

#[test]
fn locks_on_distinct_cells_are_independent() {
    run(sim(1, 4, 4), |img| {
        let me = img.this_image();
        let mut locks = img.locks(4);
        img.sync_all();
        // Each image takes its own cell on image 1 — no contention.
        locks.lock(1, me - 1);
        assert!(locks.holds(1, me - 1));
        locks.unlock(1, me - 1);
        img.sync_all();
    });
}

#[test]
#[should_panic(expected = "not held")]
fn unlock_without_lock_panics() {
    run(sim(1, 1, 1), |img| {
        let mut locks = img.locks(1);
        locks.unlock(1, 0);
    });
}
