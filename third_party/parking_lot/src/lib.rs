//! Offline shim for the `parking_lot` API subset used by this workspace:
//! non-poisoning `Mutex`, `Condvar` (with `wait` / `wait_for` taking
//! `&mut MutexGuard`), and `RwLock`, all backed by `std::sync`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// Non-poisoning mutex over `std::sync::Mutex`.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard for [`Mutex`]. Holds an `Option` so `Condvar` can temporarily
/// take the underlying std guard during a wait.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a timed condvar wait.
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable usable with [`MutexGuard`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r.timed_out()),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r.timed_out())
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult { timed_out: res }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// Non-poisoning reader-writer lock over `std::sync::RwLock`.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let m = Arc::new(Mutex::new(0u64));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (m.clone(), cv.clone());
        let h = std::thread::spawn(move || {
            let mut g = m2.lock();
            *g = 7;
            cv2.notify_all();
        });
        let mut g = m.lock();
        while *g != 7 {
            cv.wait_for(&mut g, Duration::from_millis(10));
        }
        assert_eq!(*g, 7);
        drop(g);
        h.join().unwrap();
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
