//! # caf-bench
//!
//! Shared scaffolding for the experiment harnesses under `benches/`. Each
//! `exp_*` bench target regenerates one table/figure (or quantified claim)
//! of the paper and prints a paper-vs-measured comparison; EXPERIMENTS.md
//! indexes them. `wallclock_collectives` additionally measures the real
//! `ThreadFabric` with criterion.
//!
//! Scale control: set `CAF_BENCH_QUICK=1` to shrink image counts and
//! iteration counts (CI-friendly); the default regenerates the paper-scale
//! configurations.

#![warn(missing_docs)]

use caf_runtime::{BarrierAlgo, CollectiveConfig};
use caf_topology::{presets, SoftwareOverheads};

/// True when the quick (CI) scale was requested via `CAF_BENCH_QUICK`.
pub fn quick_mode() -> bool {
    std::env::var("CAF_BENCH_QUICK").is_ok_and(|v| v != "0")
}

/// Pick between the full and quick value.
pub fn scaled<T: Copy>(full: T, quick: T) -> T {
    if quick_mode() {
        quick
    } else {
        full
    }
}

/// A named software stack + collective configuration — one comparator line
/// of the paper's evaluation.
#[derive(Clone, Copy, Debug)]
pub struct Comparator {
    /// Display name used in tables.
    pub name: &'static str,
    /// Software overheads of the stack.
    pub stack: SoftwareOverheads,
    /// Collective algorithms the stack runs.
    pub collectives: CollectiveConfig,
}

/// The barrier comparators of §V-A (EXP-B1): TDLB against every
/// dissemination variant and the MPI barriers.
pub fn barrier_comparators() -> Vec<Comparator> {
    use presets::stacks::*;
    let dissem = |barrier| CollectiveConfig {
        barrier,
        ..CollectiveConfig::default()
    };
    vec![
        Comparator {
            name: "UHCAF-TDLB",
            stack: UHCAF,
            collectives: dissem(BarrierAlgo::Tdlb),
        },
        Comparator {
            name: "UHCAF-dissem",
            stack: UHCAF_FLAT,
            collectives: dissem(BarrierAlgo::Dissemination),
        },
        Comparator {
            name: "GASNet-RDMA",
            stack: GASNET_RDMA,
            collectives: dissem(BarrierAlgo::Dissemination),
        },
        Comparator {
            name: "GASNet-IB",
            stack: GASNET_IB,
            collectives: dissem(BarrierAlgo::Dissemination),
        },
        Comparator {
            name: "CAF2.0",
            stack: CAF20_OPENUH,
            collectives: dissem(BarrierAlgo::Dissemination),
        },
        Comparator {
            name: "MVAPICH",
            stack: MVAPICH,
            collectives: dissem(BarrierAlgo::Dissemination),
        },
        Comparator {
            name: "OpenMPI",
            stack: OPEN_MPI,
            collectives: dissem(BarrierAlgo::Dissemination),
        },
        Comparator {
            name: "OpenMPI-hier",
            stack: OPEN_MPI_HIER,
            collectives: dissem(BarrierAlgo::Tdlb),
        },
    ]
}

/// The five HPL configurations of Figure 1 (EXP-F1).
pub fn hpl_comparators() -> Vec<Comparator> {
    use presets::stacks::*;
    vec![
        Comparator {
            name: "UHCAF-2level",
            stack: UHCAF,
            collectives: CollectiveConfig::two_level(),
        },
        Comparator {
            name: "UHCAF-1level",
            stack: UHCAF_FLAT,
            collectives: CollectiveConfig::one_level(),
        },
        Comparator {
            name: "CAF2.0-OpenUH",
            stack: CAF20_OPENUH,
            collectives: CollectiveConfig::one_level(),
        },
        Comparator {
            name: "CAF2.0-GFortran",
            stack: CAF20_GFORTRAN,
            collectives: CollectiveConfig::one_level(),
        },
        Comparator {
            name: "OpenMPI-notuning",
            stack: OPEN_MPI,
            collectives: CollectiveConfig::one_level(),
        },
    ]
}

/// Print the cost-model parameters an experiment ran with (every harness
/// leads with this, per DESIGN.md §6).
pub fn print_cost_preamble(label: &str) {
    let c = presets::whale_cost();
    println!(
        "[{label}] machine=whale(44x2x4) cost: l_intra={}ns gap_intra={}ns \
         l_inter={}ns gap_nic={}ns o_inter={}ns bw_inter~{:.2}GB/s core={:.1}GFLOP/s",
        c.l_intra_ns,
        c.gap_intra_ns,
        c.l_inter_ns,
        c.gap_nic_ns,
        c.o_inter_ns,
        1000.0 / c.g_inter_ps_per_byte as f64,
        c.flops_per_us as f64 / 1000.0,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparator_lists_cover_the_paper() {
        let b = barrier_comparators();
        assert_eq!(b.len(), 8);
        assert!(b.iter().any(|c| c.name == "UHCAF-TDLB"));
        assert!(b.iter().any(|c| c.name == "GASNet-IB"));
        let h = hpl_comparators();
        assert_eq!(h.len(), 5, "Figure 1 has five curves");
        assert!(h.iter().any(|c| c.name == "CAF2.0-GFortran"));
    }

    #[test]
    fn scaled_honors_quick_env() {
        // Not setting the env var here; default is full scale.
        if !quick_mode() {
            assert_eq!(scaled(10, 2), 10);
        }
    }
}
