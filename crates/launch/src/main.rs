//! `caf-launch`: spawn a multi-process SocketFabric fleet and supervise it.
//!
//! ```text
//! caf-launch demo --nodes 2 --cores 4 --images 8 [--iters 50]
//!                 [--kill-node R --kill-after-ms T] [--tcp]
//!                 [--peer-timeout-ms T] [--run-timeout-ms T]
//! ```
//!
//! `demo` re-executes this same binary once per occupied node (hidden
//! `demo-child` mode); each child joins the fleet over real sockets, runs a
//! barrier + `co_sum` loop through the full runtime stack, and reports a
//! per-image digest back over the coordinator connection. `--kill-node`
//! turns the demo into a fault drill: the launcher kills that child
//! mid-run and must report its 1-based image ranks instead of hanging.
//! Adding `--respawn` turns the drill into kill-*and-recover*: the dead
//! node is respawned, rejoins via the `Rejoin` handshake, restores from
//! the checkpoint store, and the digests must match an undisturbed run.
//! `--shrink` instead lets the survivors re-form the team without the
//! dead node and complete on the shrunken topology.

use caf_fabric::socket::{SocketConfig, SocketFabric};
use caf_fabric::TelemetryPhase;
use caf_launch::{launch, ChildEnv, KillSpec, LaunchSpec, Transport};
use caf_obs::{fleet_report_json, fleet_summary, merged_chrome_json, NodeFeed};
use caf_runtime::{
    recovery::ENV_CKPT_DIR, run_hosted, run_hosted_rejoin, CheckpointStore, CollectiveConfig,
    ImageCtx, RecoveryError,
};
use caf_topology::{presets, ImageMap, NodeId, Placement};
use caf_trace::Tracer;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

#[derive(Clone, Debug)]
struct DemoArgs {
    nodes: usize,
    cores: usize,
    images: usize,
    iters: usize,
    kill_node: Option<usize>,
    kill_after_ms: u64,
    tcp: bool,
    peer_timeout_ms: Option<u64>,
    run_timeout_ms: u64,
    /// Serve live /metrics + /healthz here while the fleet runs
    /// (`--obs-addr`, env `CAF_OBS_ADDR`).
    obs_addr: Option<String>,
    /// Write fleet_trace.json + fleet_report.json into this directory
    /// after the run (`--trace-out`, env `CAF_OBS_DIR`).
    trace_out: Option<String>,
    /// Children ship live telemetry this often; 0 disables
    /// (`--obs-interval-ms`, env `CAF_OBS_INTERVAL_MS`).
    obs_interval_ms: u64,
    /// Keep the observability surface up this long after completion.
    linger_ms: u64,
    /// Repair a killed node by respawning it with a `Rejoin` handshake;
    /// the new incarnation restores from the checkpoint store.
    respawn: bool,
    /// Tolerate a killed node: survivors re-form the team without it and
    /// the fleet completes on the shrunken topology.
    shrink: bool,
    /// Checkpoint directory shared by all incarnations (`--ckpt-dir`, env
    /// `CAF_CKPT_DIR`). Respawn runs create a temporary one when unset.
    ckpt_dir: Option<String>,
    /// Checkpoint every K iterations in recovery mode — the rollback
    /// granularity (work since the last epoch boundary is recomputed).
    ckpt_every: usize,
}

impl Default for DemoArgs {
    fn default() -> Self {
        Self {
            nodes: 2,
            cores: 4,
            images: 8,
            iters: 50,
            kill_node: None,
            kill_after_ms: 200,
            tcp: false,
            peer_timeout_ms: None,
            run_timeout_ms: 60_000,
            obs_addr: std::env::var("CAF_OBS_ADDR").ok().filter(|s| !s.is_empty()),
            trace_out: std::env::var("CAF_OBS_DIR").ok().filter(|s| !s.is_empty()),
            obs_interval_ms: std::env::var("CAF_OBS_INTERVAL_MS")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(500),
            linger_ms: 0,
            respawn: false,
            shrink: false,
            ckpt_dir: std::env::var(ENV_CKPT_DIR).ok().filter(|s| !s.is_empty()),
            ckpt_every: 25,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: caf-launch demo --nodes N --cores C --images I [--iters K]\n\
         \x20                [--kill-node R --kill-after-ms T] [--tcp]\n\
         \x20                [--peer-timeout-ms T] [--run-timeout-ms T]\n\
         \x20                [--obs-addr HOST:PORT] [--trace-out DIR]\n\
         \x20                [--obs-interval-ms T] [--linger-ms T]\n\
         \x20                [--respawn | --shrink] [--ckpt-dir DIR] [--ckpt-every K]"
    );
    std::process::exit(2)
}

fn parse_demo(args: &[String]) -> DemoArgs {
    let mut out = DemoArgs::default();
    let mut it = args.iter();
    let next_val = |it: &mut std::slice::Iter<String>, flag: &str| -> String {
        it.next()
            .unwrap_or_else(|| {
                eprintln!("caf-launch: {flag} needs a value");
                usage()
            })
            .clone()
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--nodes" => out.nodes = next_val(&mut it, a).parse().unwrap_or_else(|_| usage()),
            "--cores" => out.cores = next_val(&mut it, a).parse().unwrap_or_else(|_| usage()),
            "--images" => out.images = next_val(&mut it, a).parse().unwrap_or_else(|_| usage()),
            "--iters" => out.iters = next_val(&mut it, a).parse().unwrap_or_else(|_| usage()),
            "--kill-node" => {
                out.kill_node = Some(next_val(&mut it, a).parse().unwrap_or_else(|_| usage()))
            }
            "--kill-after-ms" => {
                out.kill_after_ms = next_val(&mut it, a).parse().unwrap_or_else(|_| usage())
            }
            "--tcp" => out.tcp = true,
            "--peer-timeout-ms" => {
                out.peer_timeout_ms = Some(next_val(&mut it, a).parse().unwrap_or_else(|_| usage()))
            }
            "--run-timeout-ms" => {
                out.run_timeout_ms = next_val(&mut it, a).parse().unwrap_or_else(|_| usage())
            }
            "--obs-addr" => out.obs_addr = Some(next_val(&mut it, a)),
            "--trace-out" => out.trace_out = Some(next_val(&mut it, a)),
            "--obs-interval-ms" => {
                out.obs_interval_ms = next_val(&mut it, a).parse().unwrap_or_else(|_| usage())
            }
            "--linger-ms" => {
                out.linger_ms = next_val(&mut it, a).parse().unwrap_or_else(|_| usage())
            }
            "--respawn" => out.respawn = true,
            "--shrink" => out.shrink = true,
            "--ckpt-dir" => out.ckpt_dir = Some(next_val(&mut it, a)),
            "--ckpt-every" => {
                out.ckpt_every = next_val(&mut it, a).parse().unwrap_or_else(|_| usage())
            }
            _ => {
                eprintln!("caf-launch: unknown flag {a}");
                usage()
            }
        }
    }
    out
}

fn demo_map(args: &DemoArgs) -> ImageMap {
    ImageMap::new(
        presets::mini(args.nodes, args.cores),
        args.images,
        &Placement::Packed,
    )
}

/// Occupied nodes and their 1-based image numbers, in node order. Only
/// occupied nodes get a process, so "node rank" below is an index into
/// this list, not a raw machine NodeId.
fn occupied_images(map: &ImageMap) -> Vec<Vec<usize>> {
    (0..map.machine().nodes)
        .map(NodeId)
        .filter(|n| !map.images_on_node(*n).is_empty())
        .map(|n| {
            map.images_on_node(n)
                .iter()
                .map(|p| p.index() + 1)
                .collect()
        })
        .collect()
}

fn demo_parent(args: &DemoArgs, raw: &[String]) -> ExitCode {
    let map = demo_map(args);
    let node_images = occupied_images(&map);
    if args.tcp {
        // Children inherit the environment, so one knob steers both the
        // coordinator transport and every data-plane socket.
        std::env::set_var("CAF_SOCKET_TCP", "1");
    }
    if let Some(ms) = args.peer_timeout_ms {
        std::env::set_var("CAF_SOCKET_PEER_TIMEOUT_MS", ms.to_string());
    }
    // Respawn needs a file-backed checkpoint store: a fresh incarnation
    // must read epochs its dead predecessor wrote. The directory reaches
    // the children through the inherited environment.
    let mut ckpt_tmp: Option<std::path::PathBuf> = None;
    if let Some(dir) = &args.ckpt_dir {
        std::env::set_var(ENV_CKPT_DIR, dir);
    } else if args.respawn {
        let dir = std::env::temp_dir().join(format!("caf-ckpt-{}", std::process::id()));
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("caf-launch: cannot create checkpoint dir {dir:?}: {e}");
            return ExitCode::FAILURE;
        }
        std::env::set_var(ENV_CKPT_DIR, &dir);
        ckpt_tmp = Some(dir);
    }
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("caf-launch: cannot find own executable: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut command = vec![exe.to_string_lossy().into_owned(), "demo-child".into()];
    command.extend(raw.iter().cloned());
    let mut spec = LaunchSpec::new(command, node_images);
    spec.transport = Transport::from_env();
    spec.run_timeout = Duration::from_millis(args.run_timeout_ms);
    spec.kill = args.kill_node.map(|rank| KillSpec {
        rank,
        after: Duration::from_millis(args.kill_after_ms),
    });
    spec.obs_linger = Duration::from_millis(args.linger_ms);
    spec.respawn = args.respawn;
    spec.shrink = args.shrink;
    if let Some(addr) = &args.obs_addr {
        match addr.parse() {
            Ok(a) => spec.obs_addr = Some(a),
            Err(e) => {
                eprintln!("caf-launch: bad --obs-addr {addr}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let outcome = launch(&spec);
    if let Some(dir) = &ckpt_tmp {
        let _ = std::fs::remove_dir_all(dir);
    }
    match outcome {
        Ok(outcome) => {
            for (img, digest) in &outcome.results {
                println!("image {:>3}: digest {digest:#018x}", img + 1);
            }
            for (rank, generation) in &outcome.respawns {
                println!(
                    "caf-launch: node {rank} respawned and rejoined at recovery \
                     generation {generation}"
                );
            }
            for rank in &outcome.lost {
                println!("caf-launch: node {rank} lost; completed on the shrunken surviving team");
            }
            let feeds: Vec<NodeFeed> = outcome.telemetry.iter().flatten().cloned().collect();
            if let Some(dir) = &args.trace_out {
                if let Err(e) = write_fleet_artifacts(dir, &feeds) {
                    eprintln!("caf-launch: writing fleet artifacts to {dir} failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
            print_fleet_summary(&feeds);
            println!(
                "caf-launch: fleet complete ({} images across {} processes)",
                outcome.results.len(),
                spec.node_images.len() - outcome.lost.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("caf-launch: fleet failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Write the merged Perfetto timeline and the machine-readable fleet
/// report into `dir`.
fn write_fleet_artifacts(dir: &str, feeds: &[NodeFeed]) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let trace = std::path::Path::new(dir).join("fleet_trace.json");
    let report = std::path::Path::new(dir).join("fleet_report.json");
    std::fs::write(&trace, merged_chrome_json(feeds))?;
    std::fs::write(&report, fleet_report_json(feeds))?;
    println!(
        "caf-launch: wrote {} and {}",
        trace.display(),
        report.display()
    );
    Ok(())
}

/// Print the fleet-wide per-(team, op, level) percentile table — only when
/// the children actually captured trace events (i.e. a `trace` build).
fn print_fleet_summary(feeds: &[NodeFeed]) {
    let (headers, rows) = fleet_summary(feeds);
    if rows.is_empty() {
        return;
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    println!("fleet trace summary:");
    let fmt_row = |cells: &[String]| {
        let line = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ");
        println!("  {line}");
    };
    fmt_row(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    for row in &rows {
        fmt_row(row);
    }
}

fn demo_child(args: &DemoArgs) -> ExitCode {
    let env = match ChildEnv::detect() {
        Some(env) => env,
        None => {
            eprintln!("caf-launch demo-child: not running under caf-launch");
            return ExitCode::FAILURE;
        }
    };
    let map = demo_map(args);
    let mut cfg = SocketConfig::from_env();
    // Always install a per-image tracer: with the `trace` feature it
    // records every fabric operation into per-image rings (shipped in
    // telemetry and merged by the parent); without it it's a zero-sized
    // no-op and this line costs nothing.
    cfg.tracer = Tracer::for_images(map.n_images());
    if let Some(ms) = args.peer_timeout_ms {
        cfg.peer_timeout = Duration::from_millis(ms);
        cfg.heartbeat_period = Duration::from_millis((ms / 4).max(10));
    }
    // A respawned incarnation carries the recovery generation it must
    // rejoin at (CAF_GENERATION, set by the supervisor).
    let rejoining = cfg.rejoin_generation.is_some();
    let (fabric, coord) = match SocketFabric::join(map, env.node, &env.coord, cfg) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("caf-launch demo-child node {}: join failed: {e}", env.node);
            return ExitCode::FAILURE;
        }
    };
    // The coordinator connection is shared between this thread (final
    // telemetry + Done) and the live-telemetry shipper.
    let coord = Arc::new(Mutex::new(coord));
    let stop = Arc::new(AtomicBool::new(false));
    let live = if args.obs_interval_ms > 0 {
        let fabric = fabric.clone();
        let coord = coord.clone();
        let stop = stop.clone();
        let period = Duration::from_millis(args.obs_interval_ms);
        Some(std::thread::spawn(move || {
            let mut next = Instant::now() + period;
            while !stop.load(Ordering::Acquire) {
                if Instant::now() < next {
                    std::thread::sleep(Duration::from_millis(20));
                    continue;
                }
                next += period;
                let t = fabric.node_telemetry(TelemetryPhase::Live, None);
                if coord.lock().unwrap().send_telemetry(t.encode()).is_err() {
                    return; // launcher gone: nobody left to tell
                }
            }
        }))
    } else {
        None
    };
    let hosted = fabric.hosted().to_vec();
    let iters = args.iters;
    let recover = args.respawn || args.shrink;
    // One store per process, shared by its image threads; file-backed when
    // the supervisor exported CAF_CKPT_DIR (respawn), in-memory otherwise.
    let store = Arc::new(CheckpointStore::from_env());
    let every = args.ckpt_every.max(1);
    let body = move |img: &mut ImageCtx| {
        if recover {
            img.recovering(MAX_RECOVERIES, |img| demo_epochs(img, &store, iters, every))
                .unwrap_or_else(|e| panic!("image {} could not recover: {e}", img.this_image()))
        } else {
            let me = img.this_image() as u64;
            let mut h: u64 = DIGEST_SEED;
            for _ in 0..iters {
                let mut v = [me];
                img.co_sum(&mut v);
                h ^= v[0];
                h = h.wrapping_mul(DIGEST_PRIME);
                img.sync_all();
            }
            h
        }
    };
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if rejoining {
            run_hosted_rejoin(fabric.clone(), &hosted, CollectiveConfig::two_level(), body)
        } else {
            run_hosted(fabric.clone(), &hosted, CollectiveConfig::two_level(), body)
        }
    }));
    stop.store(true, Ordering::Release);
    if let Some(t) = live {
        let _ = t.join();
    }
    let results = match run {
        Ok(results) => results,
        Err(payload) => {
            // Going down (a peer died, or our own images failed): ship the
            // flight recorder — final counters plus the per-image trace
            // window — to the launcher before exiting.
            let cause = panic_message(payload.as_ref());
            let t = fabric.node_telemetry(TelemetryPhase::FlightRecorder, Some(&cause));
            let _ = coord.lock().unwrap().send_telemetry(t.encode());
            eprintln!("caf-launch demo-child node {}: {cause}", env.node);
            return ExitCode::FAILURE;
        }
    };
    let report: Vec<(u32, u64)> = results
        .iter()
        .map(|(p, digest)| (p.index() as u32, *digest))
        .collect();
    let t = fabric.node_telemetry(TelemetryPhase::Final, None);
    let mut coord = coord.lock().unwrap();
    let _ = coord.send_telemetry(t.encode());
    if let Err(e) = coord.send_done(&report) {
        eprintln!(
            "caf-launch demo-child node {}: report failed: {e}",
            env.node
        );
        return ExitCode::FAILURE;
    }
    drop(coord);
    fabric.shutdown();
    ExitCode::SUCCESS
}

/// FNV-1a offset basis / prime: the demo digest accumulator.
const DIGEST_SEED: u64 = 0xcbf2_9ce4_8422_2325;
const DIGEST_PRIME: u64 = 0x0000_0100_0000_01b3;
/// How many team re-formations an image rides out before giving up.
const MAX_RECOVERIES: usize = 2;

/// The restart-shaped demo body: roll back to the last globally complete
/// checkpoint epoch (none on first launch), then run the remaining
/// iterations, checkpointing the digest accumulator every `every`-th one.
/// The same shape serves first launches, shrink survivors, and respawned
/// rejoiners: `recovering` re-runs it from the top after every team
/// re-formation, and `restore` decides where to resume.
fn demo_epochs(
    img: &mut ImageCtx,
    store: &CheckpointStore,
    iters: usize,
    every: usize,
) -> Result<u64, RecoveryError> {
    let me = img.this_image() as u64;
    let mut h: u64 = DIGEST_SEED;
    // Epoch e was committed after iteration e*every, so that's where a
    // rollback resumes; iterations past the last boundary are recomputed.
    let start = match img.restore(store)? {
        Some((epoch, payloads)) => {
            h = u64::from_le_bytes(payloads[0][..8].try_into().expect("digest payload"));
            epoch as usize * every
        }
        None => 0,
    };
    img.try_sync_all()?;
    for it in start..iters {
        let mut v = [me];
        img.try_co_sum(&mut v)?;
        h ^= v[0];
        h = h.wrapping_mul(DIGEST_PRIME);
        img.try_sync_all()?;
        if (it + 1) % every == 0 {
            img.checkpoint(store, |_| vec![h.to_le_bytes().to_vec()])?;
        }
    }
    Ok(h)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "image panicked".to_string()
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("demo") => {
            let args = parse_demo(&argv[1..]);
            demo_parent(&args, &argv[1..])
        }
        Some("demo-child") => {
            let args = parse_demo(&argv[1..]);
            demo_child(&args)
        }
        _ => usage(),
    }
}
