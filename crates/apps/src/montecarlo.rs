//! Monte Carlo π with teams: the "loosely-coupled subproblems" pattern of
//! the paper's §I — disjoint teams sample independently, combining only
//! within themselves (`co_sum` on the subteam), and the full-team combine
//! happens exactly once at the end. No global synchronization while the
//! teams work.

use caf_runtime::ImageCtx;

/// Configuration.
#[derive(Clone, Copy, Debug)]
pub struct PiConfig {
    /// Samples drawn by each image.
    pub samples_per_image: u64,
    /// Number of independent teams to split into.
    pub teams: usize,
    /// RNG seed (deterministic per image).
    pub seed: u64,
}

/// Per-image result.
#[derive(Clone, Copy, Debug)]
pub struct PiOutcome {
    /// My team's independent estimate of π.
    pub team_estimate: f64,
    /// The final cross-team (global) estimate.
    pub global_estimate: f64,
    /// The team this image worked in.
    pub team_number: i64,
}

#[inline]
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[inline]
fn unit(x: &mut u64) -> f64 {
    (splitmix64(x) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Estimate π. Collective over the current team; every image returns both
/// its team's estimate and the global one.
pub fn pi_teams(img: &mut ImageCtx, cfg: &PiConfig) -> PiOutcome {
    assert!(cfg.teams >= 1);
    let me = img.this_image();
    let color = ((me - 1) % cfg.teams) as i64;

    // Sample locally (deterministic per image).
    let mut state = cfg
        .seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(me as u64);
    let mut hits = 0u64;
    for _ in 0..cfg.samples_per_image {
        let x = unit(&mut state) - 0.5;
        let y = unit(&mut state) - 0.5;
        if x * x + y * y <= 0.25 {
            hits += 1;
        }
    }
    img.compute(img.fabric().cost().flops_to_ns(6 * cfg.samples_per_image));

    // Combine within my team only.
    let team = img.form_team(color);
    let (_team, (team_estimate, team_totals)) = img.change_team(team, |img| {
        let mut acc = vec![hits as f64, cfg.samples_per_image as f64];
        img.co_sum(&mut acc);
        (4.0 * acc[0] / acc[1], acc)
    });

    // One final cross-team combine on the initial team.
    let members = img.num_images() as f64 / cfg.teams as f64;
    let _ = members;
    let mut global = vec![hits as f64, cfg.samples_per_image as f64];
    img.co_sum(&mut global);
    let global_estimate = 4.0 * global[0] / global[1];
    let _ = team_totals;

    PiOutcome {
        team_estimate,
        global_estimate,
        team_number: color,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caf_runtime::{run, RunConfig};
    use caf_topology::presets;

    #[test]
    fn pi_converges_globally_and_per_team() {
        let rc = RunConfig::sim_packed(presets::mini(2, 4), 8);
        let cfg = PiConfig {
            samples_per_image: 40_000,
            teams: 2,
            seed: 99,
        };
        let out = run(rc, move |img| pi_teams(img, &cfg));
        let global = out[0].global_estimate;
        assert!(
            (global - std::f64::consts::PI).abs() < 0.02,
            "global {global}"
        );
        for o in &out {
            assert_eq!(o.global_estimate, global, "global estimate must agree");
            assert!(
                (o.team_estimate - std::f64::consts::PI).abs() < 0.05,
                "team {} estimate {}",
                o.team_number,
                o.team_estimate
            );
        }
        // Teams sampled independently: estimates differ (else teaming is fake).
        let t0 = out
            .iter()
            .find(|o| o.team_number == 0)
            .unwrap()
            .team_estimate;
        let t1 = out
            .iter()
            .find(|o| o.team_number == 1)
            .unwrap()
            .team_estimate;
        assert_ne!(t0, t1);
    }

    #[test]
    fn deterministic_given_seed() {
        let once = || {
            let rc = RunConfig::sim_packed(presets::mini(1, 4), 4);
            let cfg = PiConfig {
                samples_per_image: 5_000,
                teams: 2,
                seed: 7,
            };
            run(rc, move |img| pi_teams(img, &cfg).global_estimate)
        };
        assert_eq!(once(), once());
    }

    #[test]
    fn single_team_is_global() {
        let rc = RunConfig::sim_packed(presets::mini(1, 4), 4);
        let cfg = PiConfig {
            samples_per_image: 10_000,
            teams: 1,
            seed: 1,
        };
        let out = run(rc, move |img| pi_teams(img, &cfg));
        for o in out {
            assert_eq!(o.team_estimate, o.global_estimate);
        }
    }
}
