//! CAF events (`event_type`, `event post`, `event wait`, `event_query`).
//!
//! An event variable is a counting semaphore on some image: any image may
//! `post` to it; the owner `wait`s, which consumes posts. Built directly on
//! the fabric's accumulating flags plus a local consumed-counter.

use caf_collectives::TeamComm;
use caf_fabric::{ArcFabric, FlagId};
use caf_topology::ProcId;
use caf_trace::{Event, EventKind};
use std::sync::Arc;

/// A block of `count` event variables on every image of the allocating
/// team.
pub struct Events {
    fabric: ArcFabric,
    me: ProcId,
    my_rank: usize,
    members: Arc<Vec<ProcId>>,
    /// Per team rank: base flag id of that member's event block.
    flags: Arc<Vec<FlagId>>,
    count: usize,
    /// Posts I have already consumed, per local event variable.
    consumed: Vec<u64>,
}

impl Events {
    pub(crate) fn allocate(
        fabric: ArcFabric,
        me: ProcId,
        comm: &mut TeamComm,
        count: usize,
    ) -> Self {
        assert!(count > 0, "event block needs at least one variable");
        let base = fabric.alloc_flags(me, count);
        let g = comm.allgather4([base.0 as u64, count as u64, 0, 0]);
        let flags: Vec<FlagId> = g
            .iter()
            .enumerate()
            .map(|(j, v)| {
                assert_eq!(
                    v[1] as usize, count,
                    "event allocation mismatch at rank {j}"
                );
                FlagId(v[0] as usize)
            })
            .collect();
        Self {
            fabric,
            me,
            my_rank: comm.rank(),
            members: comm.members().clone(),
            flags: Arc::new(flags),
            count,
            consumed: vec![0; count],
        }
    }

    /// Event variables per image.
    pub fn count(&self) -> usize {
        self.count
    }

    /// `event post (ev[image1])`: post once to event `idx` on `image1`
    /// (1-based team index).
    pub fn post(&self, image1: usize, idx: usize) {
        assert!(idx < self.count, "event index {idx} out of {}", self.count);
        assert!(
            (1..=self.members.len()).contains(&image1),
            "event image {image1} outside team of {}",
            self.members.len()
        );
        self.fabric.flag_add(
            self.me,
            self.members[image1 - 1],
            self.flags[image1 - 1].nth(idx),
            1,
        );
        let tracer = self.fabric.tracer();
        if tracer.enabled() {
            tracer.record(
                self.me.index(),
                Event::instant(EventKind::EventPost, self.fabric.now_ns(self.me))
                    .a(self.members[image1 - 1].index() as u64)
                    .b(idx as u64),
            );
        }
    }

    /// `event wait (ev, until_count=n)`: block until `n` unconsumed posts
    /// are available on my event `idx`, then consume them.
    pub fn wait(&mut self, idx: usize, until_count: u64) {
        assert!(idx < self.count, "event index {idx} out of {}", self.count);
        assert!(until_count > 0, "event wait needs until_count >= 1");
        let target = self.consumed[idx] + until_count;
        let tracer = self.fabric.tracer();
        let t0 = if tracer.enabled() {
            self.fabric.now_ns(self.me)
        } else {
            0
        };
        self.fabric
            .flag_wait_ge(self.me, self.flags[self.my_rank].nth(idx), target);
        if tracer.enabled() {
            let t1 = self.fabric.now_ns(self.me);
            tracer.record(
                self.me.index(),
                Event::span(EventKind::EventWait, t0, t1.saturating_sub(t0))
                    .a(idx as u64)
                    .b(target),
            );
        }
        self.consumed[idx] = target;
    }

    /// `event_query (ev, count)`: unconsumed posts currently available on
    /// my event `idx` (never blocks).
    pub fn query(&self, idx: usize) -> u64 {
        assert!(idx < self.count, "event index {idx} out of {}", self.count);
        let raw = self
            .fabric
            .flag_read(self.me, self.flags[self.my_rank].nth(idx));
        raw - self.consumed[idx]
    }
}
