//! Litmus tests for the `put_nb` fencing edge cases: the small programs
//! whose orderings the nonblocking data path must get right, each pinned
//! down on both fabrics where meaningful, plus the
//! injected == completed stats invariants — including under chaos fault
//! injection (delayed/duplicated completions).

use caf_fabric::socket::testing::{fleet, run_fleet};
use caf_fabric::{
    bootstrap, ChaosConfig, Fabric, PutToken, SimConfig, SimFabric, SocketConfig, ThreadConfig,
    ThreadFabric,
};
use caf_fabric::{run_spmd, FlagId};
use caf_topology::{presets, ImageMap, Placement, ProcId, SoftwareOverheads};
use std::sync::Arc;
use std::time::Duration;

const SPARE_FLAG: FlagId = FlagId(2);
const BSEG: caf_fabric::SegmentId = bootstrap::SEG;

fn sim(nodes: usize, cores: usize, images: usize, chaos: Option<ChaosConfig>) -> Arc<SimFabric> {
    let map = ImageMap::new(presets::mini(nodes, cores), images, &Placement::Packed);
    SimFabric::new(
        map,
        SimConfig {
            cost: presets::whale_cost(),
            overheads: SoftwareOverheads::NONE,
            chaos,
            ..SimConfig::default()
        },
    )
}

#[test]
fn quiet_with_zero_outstanding_puts_is_a_no_op() {
    let f = sim(2, 1, 2, None);
    let me = ProcId(0);
    let t = f.now_ns(me);
    f.quiet(me); // nothing in flight: must not advance time
    assert_eq!(f.now_ns(me), t);
    // ...and must still be a no-op after a put has been fully drained.
    f.put(me, ProcId(1), BSEG, 0, &[1u8; 8]);
    f.quiet(me);
    let after_drain = f.now_ns(me);
    f.quiet(me);
    assert_eq!(f.now_ns(me), after_drain);
    f.image_done(me);
    f.image_done(ProcId(1));
}

#[test]
fn put_test_polled_before_completion_spins_then_succeeds() {
    let f = sim(2, 1, 2, None);
    let f2 = f.clone();
    run_spmd(f.clone(), move |me| {
        if me == ProcId(0) {
            let tok = f2.put_nb(me, ProcId(1), BSEG, 0, &[5u8; 8]);
            // Poll to completion: each failed test costs one poll, so the
            // loop terminates in bounded virtual time and the number of
            // polls is itself deterministic.
            let mut polls = 0u64;
            while !f2.put_test(me, tok) {
                polls += 1;
                assert!(polls < 1_000_000, "put_test never completed");
            }
            assert!(polls > 0, "an inter-node put cannot complete instantly");
            assert!(f2.now_ns(me) >= tok.arrival_ns);
            // A completed token stays completed.
            assert!(f2.put_test(me, tok));
        }
        f2.image_done(me);
    });
    let s = f.stats().snapshot();
    assert_eq!(s.puts_nb_injected, 1);
    assert_eq!(s.puts_nb_completed, 1);
}

#[test]
fn interleaved_put_and_put_nb_to_the_same_slot_keep_program_order() {
    // Blocking and nonblocking puts to the same remote slot from one
    // image: payloads are applied in program order (the fabric's
    // point-to-point ordering), so after a fence + flag handshake the
    // reader sees the *last* write, on both fabrics.
    let check = |fabric: caf_fabric::ArcFabric| {
        let f2 = fabric.clone();
        run_spmd(fabric, move |me| {
            if me == ProcId(0) {
                f2.put(me, ProcId(1), BSEG, 0, &10u64.to_ne_bytes());
                let t1 = f2.put_nb(me, ProcId(1), BSEG, 0, &20u64.to_ne_bytes());
                f2.put(me, ProcId(1), BSEG, 0, &30u64.to_ne_bytes());
                let t2 = f2.put_nb(me, ProcId(1), BSEG, 0, &40u64.to_ne_bytes());
                f2.put_wait(me, t1);
                f2.put_wait(me, t2);
                f2.quiet(me);
                f2.flag_add(me, ProcId(1), SPARE_FLAG, 1);
            } else {
                f2.flag_wait_ge(me, SPARE_FLAG, 1);
                let mut out = [0u8; 8];
                f2.get(me, me, BSEG, 0, &mut out);
                assert_eq!(u64::from_ne_bytes(out), 40, "must see the last write");
            }
            f2.image_done(me);
        });
    };
    check(sim(2, 1, 2, None));
    let map = ImageMap::new(presets::mini(2, 1), 2, &Placement::Packed);
    check(ThreadFabric::new(map, ThreadConfig::default()));
}

#[test]
fn stats_injected_equals_completed_after_every_fence() {
    let f = sim(2, 2, 4, None);
    let f2 = f.clone();
    run_spmd(f.clone(), move |me| {
        if me.index() < 3 {
            let mut tok = PutToken::DONE;
            for k in 0..5usize {
                tok = f2.put_nb(me, ProcId(3), BSEG, 8 * me.index(), &[k as u8; 8]);
            }
            f2.put_wait(me, tok);
            f2.quiet(me);
            f2.flag_add(me, ProcId(3), SPARE_FLAG, 1);
        } else {
            f2.flag_wait_ge(me, SPARE_FLAG, 3);
        }
        f2.image_done(me);
    });
    let s = f.stats().snapshot();
    assert_eq!(s.puts_nb_injected, 15);
    assert_eq!(
        s.puts_nb_completed, s.puts_nb_injected,
        "every injected nonblocking put must complete by run end"
    );
}

#[test]
fn stats_invariant_holds_under_completion_faults() {
    // Delayed + duplicated completions must not double-count: the
    // duplicate landing is stats-neutral, so injected == completed still
    // holds at quiescence for every seed.
    for seed in 0..8 {
        let chaos = ChaosConfig {
            completion_delay_ns: 7_000,
            duplicate_completions: true,
            ..ChaosConfig::from_seed(seed)
        };
        let f = sim(2, 2, 4, Some(chaos));
        let f2 = f.clone();
        run_spmd(f.clone(), move |me| {
            if me.index() > 0 {
                let tok = f2.put_nb(me, ProcId(0), BSEG, 8 * me.index(), &[7u8; 8]);
                f2.put_wait(me, tok);
                f2.flag_add(me, ProcId(0), SPARE_FLAG, 1);
            } else {
                f2.flag_wait_ge(me, SPARE_FLAG, 3);
            }
            f2.image_done(me);
        });
        let s = f.stats().snapshot();
        assert_eq!(s.puts_nb_injected, s.puts_nb_completed, "seed {seed}");
    }
}

#[test]
fn chaos_delays_put_nb_completion_but_not_correctness() {
    // With a completion delay the token's arrival estimate moves out, so
    // put_wait covers the injected delay; the payload is still the one
    // the flag handshake published.
    let delay = 9_000;
    let f = sim(
        2,
        1,
        2,
        Some(ChaosConfig {
            completion_delay_ns: delay,
            ..ChaosConfig::off(3)
        }),
    );
    let f2 = f.clone();
    run_spmd(f.clone(), move |me| {
        if me == ProcId(0) {
            let before = f2.now_ns(me);
            let tok = f2.put_nb(me, ProcId(1), BSEG, 0, &77u64.to_ne_bytes());
            assert!(tok.arrival_ns >= before + delay, "delay must push arrival");
            f2.put_wait(me, tok);
            assert!(f2.now_ns(me) >= before + delay);
            f2.flag_add(me, ProcId(1), SPARE_FLAG, 1);
        } else {
            f2.flag_wait_ge(me, SPARE_FLAG, 1);
            let mut out = [0u8; 8];
            f2.get(me, me, BSEG, 0, &mut out);
            assert_eq!(u64::from_ne_bytes(out), 77);
        }
        f2.image_done(me);
    });
}

// ---------------------------------------------------------------------------
// SocketFabric ports: the same litmus programs, but with the initiator and
// target in *separate fabric instances* joined over real sockets — the wire
// ack protocol, not shared memory, is what must uphold the orderings.
// ---------------------------------------------------------------------------

fn socket_cfg() -> SocketConfig {
    SocketConfig {
        io_timeout: Duration::from_secs(10),
        flag_wait_timeout: Duration::from_secs(10),
        ..SocketConfig::default()
    }
}

fn socket_pair() -> Vec<Arc<caf_fabric::SocketFabric>> {
    let map = ImageMap::new(presets::mini(2, 1), 2, &Placement::Packed);
    fleet(&map, &socket_cfg())
}

#[test]
fn socket_quiet_with_zero_outstanding_puts_is_a_no_op() {
    let fabrics = socket_pair();
    run_fleet(&fabrics, |f, me| {
        if me == ProcId(0) {
            f.quiet(me); // nothing in flight: must return immediately
            f.put(me, ProcId(1), BSEG, 0, &[1u8; 8]);
            f.quiet(me); // blocking put is already acked: still a no-op
            f.quiet(me);
        }
        f.image_done(me);
    });
}

#[test]
fn socket_put_test_polled_before_completion_eventually_succeeds() {
    let fabrics = socket_pair();
    let initiator = fabrics[0].clone();
    run_fleet(&fabrics, |f, me| {
        if me == ProcId(0) {
            let tok = f.put_nb(me, ProcId(1), BSEG, 0, &[5u8; 8]);
            let mut polls = 0u64;
            while !f.put_test(me, tok) {
                polls += 1;
                assert!(polls < 100_000_000, "put_test never completed");
                std::hint::spin_loop();
            }
            // A completed token stays completed.
            assert!(f.put_test(me, tok));
            f.quiet(me);
        }
        f.image_done(me);
    });
    let s = initiator.stats().snapshot();
    assert_eq!(s.puts_nb_injected, 1);
    assert_eq!(s.puts_nb_completed, 1);
}

#[test]
fn socket_interleaved_put_and_put_nb_keep_program_order() {
    // The core ordering litmus over the wire: one egress connection per
    // ordered pair applies payloads in program order, so after the fence +
    // flag handshake the reader must see the *last* write.
    let fabrics = socket_pair();
    run_fleet(&fabrics, |f, me| {
        if me == ProcId(0) {
            f.put(me, ProcId(1), BSEG, 0, &10u64.to_ne_bytes());
            let t1 = f.put_nb(me, ProcId(1), BSEG, 0, &20u64.to_ne_bytes());
            f.put(me, ProcId(1), BSEG, 0, &30u64.to_ne_bytes());
            let t2 = f.put_nb(me, ProcId(1), BSEG, 0, &40u64.to_ne_bytes());
            f.put_wait(me, t1);
            f.put_wait(me, t2);
            f.quiet(me);
            f.flag_add(me, ProcId(1), SPARE_FLAG, 1);
        } else {
            f.flag_wait_ge(me, SPARE_FLAG, 1);
            let mut out = [0u8; 8];
            f.get(me, me, BSEG, 0, &mut out);
            assert_eq!(u64::from_ne_bytes(out), 40, "must see the last write");
        }
        f.image_done(me);
    });
}

#[test]
fn socket_stats_injected_equals_completed_after_every_fence() {
    let map = ImageMap::new(presets::mini(2, 2), 4, &Placement::Packed);
    let fabrics = fleet(&map, &socket_cfg());
    let stats_fabrics = fabrics.clone();
    run_fleet(&fabrics, |f, me| {
        if me.index() < 3 {
            let mut tok = PutToken::DONE;
            for k in 0..5usize {
                tok = f.put_nb(me, ProcId(3), BSEG, 8 * me.index(), &[k as u8; 8]);
            }
            f.put_wait(me, tok);
            f.quiet(me);
            f.flag_add(me, ProcId(3), SPARE_FLAG, 1);
        } else {
            f.flag_wait_ge(me, SPARE_FLAG, 3);
        }
        f.image_done(me);
    });
    // Per-process stats: sum injections and completions across the fleet.
    let (injected, completed) = stats_fabrics
        .iter()
        .map(|f| {
            let s = f.stats().snapshot();
            (s.puts_nb_injected, s.puts_nb_completed)
        })
        .fold((0, 0), |(i, c), (fi, fc)| (i + fi, c + fc));
    assert_eq!(injected, 15);
    assert_eq!(
        completed, injected,
        "every injected nonblocking put must be acked by run end"
    );
}

#[test]
fn thread_fabric_flag_overflow_is_caught() {
    // The sim-side guard has a twin in sim.rs tests; this pins the
    // ThreadFabric's atomic counter guard.
    let map = ImageMap::new(presets::mini(1, 1), 1, &Placement::Packed);
    let f = ThreadFabric::new(map, ThreadConfig::default());
    let me = ProcId(0);
    f.flag_add(me, me, SPARE_FLAG, u64::MAX);
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        f.flag_add(me, me, SPARE_FLAG, 1);
    }));
    assert!(caught.is_err(), "wraparound must panic");
}
