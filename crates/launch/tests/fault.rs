//! End-to-end launcher tests: a real multi-process fleet over real sockets,
//! including the fault drill the issue demands — kill one child
//! mid-collective and the launcher must report the dead image ranks within
//! the timeout instead of hanging.

use std::process::Command;
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_caf-launch");

#[test]
fn clean_demo_fleet_completes() {
    let out = Command::new(BIN)
        .args([
            "demo", "--nodes", "2", "--cores", "2", "--images", "4", "--iters", "5",
        ])
        .output()
        .expect("run caf-launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "clean fleet should exit 0\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stdout.contains("fleet complete (4 images across 2 processes)"),
        "expected completion banner, got:\n{stdout}"
    );
    // Collective results are deterministic, so every image digests the same
    // value stream: 4 identical digest lines.
    let digests: Vec<&str> = stdout
        .lines()
        .filter(|l| l.contains("digest"))
        .map(|l| l.split("digest").nth(1).unwrap().trim())
        .collect();
    assert_eq!(digests.len(), 4, "one digest per image:\n{stdout}");
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "co_sum digests must agree across images:\n{stdout}"
    );
}

#[test]
fn killed_node_is_reported_by_image_rank_within_timeout() {
    let t0 = Instant::now();
    let out = Command::new(BIN)
        .args([
            "demo",
            "--nodes",
            "2",
            "--cores",
            "4",
            "--images",
            "8",
            "--iters",
            "200000",
            "--kill-node",
            "1",
            "--kill-after-ms",
            "150",
            "--peer-timeout-ms",
            "500",
            "--run-timeout-ms",
            "30000",
        ])
        .output()
        .expect("run caf-launch");
    let elapsed = t0.elapsed();
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !out.status.success(),
        "a fleet with a killed member must fail\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    // The launcher names the dead node and its 1-based images (packed
    // placement: node 1 hosts images 5..8).
    assert!(
        stderr.contains("node 1") && stderr.contains("images 5,6,7,8"),
        "launcher must report the dead node's image ranks, got:\n{stderr}"
    );
    // Bounded detection: no hang. The kill fires at 150 ms and peer
    // timeout is 500 ms; 20 s leaves slack for slow CI but catches hangs.
    assert!(
        elapsed < Duration::from_secs(20),
        "death must be detected within the timeout, took {elapsed:?}"
    );
}

#[test]
fn respawned_fleet_completes_and_leaves_no_shm_litter() {
    // Kill-and-recover drill: node 1 dies mid-run, the launcher respawns
    // it at recovery generation 1, and the fleet still completes. The dead
    // incarnation's shared segment (its owner never ran its unlink) must
    // be swept before the respawn, and nothing with this launch's fleet
    // tag may survive in the segment directory afterwards.
    let t0 = Instant::now();
    let child = Command::new(BIN)
        .args([
            "demo",
            "--nodes",
            "2",
            "--cores",
            "2",
            "--images",
            "4",
            "--iters",
            "3000",
            "--kill-node",
            "1",
            "--kill-after-ms",
            "150",
            "--peer-timeout-ms",
            "500",
            "--run-timeout-ms",
            "60000",
            "--respawn",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn caf-launch");
    let launcher_pid = child.id();
    let out = child.wait_with_output().expect("run caf-launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "respawn drill should recover and exit 0\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stdout.contains("respawned and rejoined at recovery generation 1"),
        "the recovery must actually have happened, got:\n{stdout}"
    );
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_secs(50),
        "respawn drill must not hang, took {elapsed:?}"
    );
    // No shared-segment litter: every file of this launch's fleet tag
    // ("l<launcher pid>-<seq>") is gone — clean children unlinked their
    // own, the launcher swept the killed incarnation's.
    let prefix = format!("caf-shm-l{launcher_pid}-");
    let leftovers: Vec<String> = std::fs::read_dir(caf_fabric::socket::shm::segment_dir())
        .map(|entries| {
            entries
                .flatten()
                .filter_map(|e| e.file_name().to_str().map(str::to_owned))
                .filter(|name| name.starts_with(&prefix))
                .collect()
        })
        .unwrap_or_default();
    assert!(
        leftovers.is_empty(),
        "launcher must sweep its fleet's shared segments, found: {leftovers:?}"
    );
}

#[test]
fn survivors_name_the_dead_peer_in_their_own_report() {
    // Same drill, but check the *survivors'* poison path too: images on the
    // living node fail loudly naming the dead peer process rather than
    // exiting silently.
    let out = Command::new(BIN)
        .args([
            "demo",
            "--nodes",
            "2",
            "--cores",
            "2",
            "--images",
            "4",
            "--iters",
            "200000",
            "--kill-node",
            "0",
            "--kill-after-ms",
            "150",
            "--peer-timeout-ms",
            "500",
            "--run-timeout-ms",
            "30000",
        ])
        .output()
        .expect("run caf-launch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "fleet must fail\nstdout:\n{stdout}");
    assert!(
        stderr.contains("node 0") && stderr.contains("images 1,2"),
        "launcher must name node 0's images, got:\n{stderr}"
    );
    // Child stderr is inherited, so the survivor's poison report (naming
    // the dead peer process) should be visible in the combined output.
    assert!(
        stderr.contains("peer process 0") || stderr.contains("died before reporting"),
        "survivors should name the dead peer, got:\n{stderr}"
    );
}
