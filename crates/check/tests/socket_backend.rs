//! End-to-end test of the socket backend column: the `caf-check` binary
//! launches real child processes over real sockets and diffs their
//! conformance digests against the sim oracle.

use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_caf-check");

#[test]
fn socket_column_matches_the_sim_oracle() {
    let out = Command::new(BIN)
        .arg("--socket-only")
        // Two cells keep the test quick while still covering both a preset
        // and a forced large-message reduction over the wire.
        .env("CAF_CHECK_SOCKET_ALGOS", "auto,reduce=Rabenseifner")
        .output()
        .expect("run caf-check");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "socket column must match the oracle\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stdout.contains("socket backend matched the sim oracle")
            && stdout.contains("2 algo configs"),
        "expected the socket-column banner, got:\n{stdout}"
    );
}
