//! Critical-path extraction: walk the happens-before chain of a traced
//! episode backwards from its last-finishing image and name the longest
//! notification chain — which flag deliveries, across which hierarchy
//! levels, actually gated completion.
//!
//! The walk uses two record families the instrumented fabrics produce:
//!
//! * [`EventKind::FlagWait`] spans on each image's ring: when an image was
//!   blocked, and on which flag;
//! * [`EventKind::FlagDeliver`] instants on the system ring: the exact
//!   (virtual) time a `flag_add` from `src` landed at `dst`, carrying its
//!   post time.
//!
//! Starting at the image whose episode span ends last, the extractor
//! repeatedly asks "what unblocked the wait that ended last?" — if the
//! satisfying delivery arrived while the image was blocked, the chain hops
//! to the sender at its post time; otherwise the image was locally bound
//! and the walk continues on the same image from the wait's start.

use crate::event::{Event, EventKind, SYSTEM_IMG};

/// One notification edge on the critical path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hop {
    /// Sending image.
    pub from: u32,
    /// Receiving image.
    pub to: u32,
    /// Flag that carried the notification.
    pub flag: u64,
    /// When the sender issued the `flag_add`.
    pub t_post: u64,
    /// When it landed at the receiver.
    pub t_deliver: u64,
    /// Whether the edge stayed within one node.
    pub intra: bool,
}

/// The longest notification chain of an episode.
#[derive(Clone, Debug)]
pub struct CriticalPath {
    /// Image and time where the chain begins.
    pub start_img: u32,
    /// Start time of the chain.
    pub start_ns: u64,
    /// Image whose completion ended the episode.
    pub end_img: u32,
    /// Episode end time.
    pub end_ns: u64,
    /// Notification edges, in causal (oldest-first) order.
    pub hops: Vec<Hop>,
}

impl CriticalPath {
    /// Edges that crossed nodes.
    pub fn inter_hops(&self) -> usize {
        self.hops.iter().filter(|h| !h.intra).count()
    }

    /// Edges that stayed within a node.
    pub fn intra_hops(&self) -> usize {
        self.hops.iter().filter(|h| h.intra).count()
    }

    /// Total chain length in nanoseconds.
    pub fn span_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Multi-line human-readable report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "critical path: image {} @ {}ns -> image {} @ {}ns ({} hops: {} inter-node, {} intra-node, {}ns)\n",
            self.start_img,
            self.start_ns,
            self.end_img,
            self.end_ns,
            self.hops.len(),
            self.inter_hops(),
            self.intra_hops(),
            self.span_ns(),
        );
        for h in &self.hops {
            out.push_str(&format!(
                "  image {} --flag{} ({})--> image {}  posted {}ns, landed {}ns (+{}ns)\n",
                h.from,
                h.flag,
                if h.intra { "intra" } else { "inter" },
                h.to,
                h.t_post,
                h.t_deliver,
                h.t_deliver.saturating_sub(h.t_post),
            ));
        }
        out
    }
}

/// The `[start, end)` window of the episode of `kind` with epoch `epoch`
/// (operand `c` of the collective span), across all images.
pub fn episode_window(events: &[Event], kind: EventKind, epoch: u64) -> Option<(u64, u64)> {
    let mut lo = u64::MAX;
    let mut hi = 0u64;
    for ev in events {
        if ev.kind == kind && ev.c == epoch {
            lo = lo.min(ev.t_ns);
            hi = hi.max(ev.end_ns());
        }
    }
    (lo < hi).then_some((lo, hi))
}

/// The window of the episode of `kind` with epoch `epoch` once *every*
/// participant has entered it: `[latest start, latest end)`. Use this
/// instead of [`episode_window`] to analyse one phase of a multi-phase
/// collective — the tighter lower bound keeps the walk from threading
/// back through a straggler's previous phase (e.g. a slow leader still
/// gathering while its peers already disseminate).
pub fn phase_window(events: &[Event], kind: EventKind, epoch: u64) -> Option<(u64, u64)> {
    let mut lo = 0u64;
    let mut hi = 0u64;
    let mut seen = false;
    for ev in events {
        if ev.kind == kind && ev.c == epoch {
            lo = lo.max(ev.t_ns);
            hi = hi.max(ev.end_ns());
            seen = true;
        }
    }
    (seen && lo < hi).then_some((lo, hi))
}

/// Extract the critical path of the episode inside `window`.
///
/// `events` is a full trace (typically `Tracer::events()`); only records
/// overlapping the window participate. Returns `None` when the window
/// contains no image activity.
pub fn extract(events: &[Event], window: (u64, u64)) -> Option<CriticalPath> {
    let (w_lo, w_hi) = window;
    let in_window = |t: u64| (w_lo..=w_hi).contains(&t);

    // Index waits per image and deliveries per destination.
    let mut waits: Vec<&Event> = Vec::new();
    let mut delivers: Vec<&Event> = Vec::new();
    let mut end: Option<(u32, u64)> = None;
    for ev in events {
        match ev.kind {
            EventKind::FlagWait if ev.img != SYSTEM_IMG && in_window(ev.end_ns()) => {
                waits.push(ev);
            }
            EventKind::FlagDeliver if in_window(ev.t_ns) => delivers.push(ev),
            _ => {}
        }
        // Episode end: the latest event end among per-image records.
        if ev.img != SYSTEM_IMG && in_window(ev.end_ns()) {
            let cand = (ev.img, ev.end_ns());
            if end.is_none_or(|(_, t)| cand.1 > t) {
                end = Some(cand);
            }
        }
    }
    let (end_img, end_ns) = end?;

    let mut cur_img = end_img;
    let mut cur_t = end_ns;
    let mut hops = Vec::new();

    // Bounded walk: each step strictly decreases cur_t or consumes a wait.
    for _ in 0..100_000 {
        // Latest blocking wait of cur_img ending at or before cur_t.
        let Some(wait) = waits
            .iter()
            .filter(|w| w.img == cur_img && w.dur_ns > 0 && w.end_ns() <= cur_t)
            .max_by_key(|w| w.end_ns())
        else {
            break;
        };
        // The delivery that satisfied it: the latest arrival on that flag
        // at this image no later than the wait's end.
        let sat = delivers
            .iter()
            .filter(|d| d.d as u32 == cur_img && d.b == wait.a && d.t_ns <= wait.end_ns())
            .max_by_key(|d| d.t_ns);
        match sat {
            Some(d) if d.t_ns > wait.t_ns => {
                // The image was blocked when the notification landed: the
                // sender is on the critical path.
                hops.push(Hop {
                    from: d.a as u32,
                    to: cur_img,
                    flag: d.b,
                    t_post: d.c,
                    t_deliver: d.t_ns,
                    intra: d.is_intra(),
                });
                cur_img = d.a as u32;
                cur_t = d.c;
            }
            _ => {
                // Flag was already satisfied at wait start (or delivery
                // untraced): locally bound; continue earlier on this image.
                cur_t = wait.t_ns;
            }
        }
        if cur_t <= w_lo {
            break;
        }
    }

    hops.reverse();
    Some(CriticalPath {
        start_img: cur_img,
        start_ns: cur_t,
        end_img,
        end_ns,
        hops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wait(img: u32, flag: u64, t: u64, dur: u64) -> Event {
        let mut e = Event::span(EventKind::FlagWait, t, dur).a(flag);
        e.img = img;
        e
    }

    fn deliver(src: u32, dst: u32, flag: u64, t_post: u64, t: u64, intra: bool) -> Event {
        let mut e = Event::instant(EventKind::FlagDeliver, t)
            .a(src as u64)
            .b(flag)
            .c(t_post)
            .d(dst as u64)
            .intra(intra);
        e.img = SYSTEM_IMG;
        e
    }

    fn barrier(img: u32, t: u64, dur: u64) -> Event {
        let mut e = Event::span(EventKind::Barrier, t, dur).c(1);
        e.img = img;
        e
    }

    /// A 3-image chain: 0 posts to 1 (inter), 1 posts to 2 (intra);
    /// image 2 finishes last.
    #[test]
    fn walks_a_simple_chain() {
        let evs = vec![
            barrier(0, 0, 100),
            barrier(1, 0, 220),
            barrier(2, 0, 300),
            wait(1, 5, 10, 190), // blocked 10..200
            deliver(0, 1, 5, 90, 200, false),
            wait(2, 6, 20, 260), // blocked 20..280
            deliver(1, 2, 6, 210, 280, true),
        ];
        let w = episode_window(&evs, EventKind::Barrier, 1).unwrap();
        assert_eq!(w, (0, 300));
        let cp = extract(&evs, w).unwrap();
        assert_eq!(cp.end_img, 2);
        assert_eq!(cp.hops.len(), 2);
        assert_eq!(cp.inter_hops(), 1);
        assert_eq!(cp.intra_hops(), 1);
        // Causal order: 0 -> 1 first, then 1 -> 2.
        assert_eq!(cp.hops[0].from, 0);
        assert_eq!(cp.hops[1].to, 2);
        assert_eq!(cp.start_img, 0);
        let report = cp.render();
        assert!(report.contains("1 inter-node"));
        assert!(report.contains("--flag5 (inter)-->"));
    }

    /// A delivery that landed before the wait started is not a hop: the
    /// waiter was never blocked on it.
    #[test]
    fn early_delivery_is_not_blocking() {
        let evs = vec![
            barrier(0, 0, 50),
            barrier(1, 0, 100),
            wait(1, 5, 60, 1), // flag already satisfied at wait start
            deliver(0, 1, 5, 10, 20, true),
        ];
        let cp = extract(&evs, (0, 100)).unwrap();
        assert_eq!(cp.end_img, 1);
        assert_eq!(cp.hops.len(), 0);
    }

    #[test]
    fn empty_window_yields_none() {
        assert!(extract(&[], (0, 10)).is_none());
        assert!(episode_window(&[], EventKind::Barrier, 1).is_none());
        assert!(phase_window(&[], EventKind::Barrier, 1).is_none());
    }

    /// `phase_window` starts at the LAST participant's entry, so a hop
    /// that unblocked an early entrant before then is excluded.
    #[test]
    fn phase_window_excludes_straggler_prehistory() {
        let evs = vec![
            barrier(0, 0, 100),
            barrier(1, 40, 260), // last to enter the phase
            wait(0, 5, 10, 20),  // blocked 10..30, before image 1 entered
            deliver(2, 0, 5, 5, 30, false),
            wait(1, 6, 50, 230), // blocked 50..280
            deliver(0, 1, 6, 60, 280, true),
        ];
        assert_eq!(episode_window(&evs, EventKind::Barrier, 1), Some((0, 300)));
        let w = phase_window(&evs, EventKind::Barrier, 1).unwrap();
        assert_eq!(w, (40, 300));
        let cp = extract(&evs, w).unwrap();
        // Only the 0 -> 1 hop survives; the pre-window 2 -> 0 hop does not.
        assert_eq!(cp.hops.len(), 1);
        assert_eq!(cp.hops[0].from, 0);
        assert_eq!(cp.inter_hops(), 0);
    }
}
