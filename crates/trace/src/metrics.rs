//! Latency aggregation: group span events by (team tag, operation,
//! hierarchy level) and report count plus p50/p95/p99/max — the numbers
//! the paper argues with (§IV-A), computed from an actual trace instead
//! of closed forms.

use crate::event::{Event, EventKind, Level};

/// Aggregation key: which team, which operation, which level.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricKey {
    /// Team tag (`first_member << 32 | size`), 0 for untagged fabric ops.
    pub team: u64,
    /// Operation kind.
    pub kind: EventKind,
    /// Hierarchy level of the span.
    pub level: Level,
}

/// Aggregated latencies for one key.
#[derive(Clone, Debug)]
pub struct MetricsRow {
    /// Grouping key.
    pub key: MetricKey,
    /// Spans aggregated.
    pub count: usize,
    /// Median duration (ns).
    pub p50_ns: u64,
    /// 95th percentile duration (ns).
    pub p95_ns: u64,
    /// 99th percentile duration (ns).
    pub p99_ns: u64,
    /// Maximum duration (ns).
    pub max_ns: u64,
    /// Mean duration (ns).
    pub mean_ns: f64,
}

impl MetricsRow {
    /// Human-readable team tag: `r<first>x<size>` or `-` for untagged.
    pub fn team_label(&self) -> String {
        if self.key.team == 0 {
            "-".into()
        } else {
            format!("r{}x{}", self.key.team >> 32, self.key.team & 0xFFFF_FFFF)
        }
    }
}

/// Span kinds worth aggregating (fabric ops and collective phases; pure
/// instants like `FlagAdd`/`FlagDeliver` carry no duration).
fn aggregatable(kind: EventKind) -> bool {
    !matches!(
        kind,
        EventKind::FlagAdd | EventKind::FlagDeliver | EventKind::EventPost
    )
}

/// Which team tag an event carries (collective spans keep it in `b`;
/// `BarrierRound` does not — its `b` is the partner image — so rounds
/// aggregate untagged).
fn team_of(ev: &Event) -> u64 {
    match ev.kind {
        EventKind::Barrier
        | EventKind::TdlbGather
        | EventKind::TdlbDissem
        | EventKind::TdlbRelease
        | EventKind::Bcast
        | EventKind::BcastStage
        | EventKind::Reduce
        | EventKind::ReduceStage => ev.b,
        EventKind::FormTeam | EventKind::ChangeTeam | EventKind::EndTeam => ev.a,
        _ => 0,
    }
}

/// Exact nearest-rank percentile over a sorted sample:
/// the ⌈p/100·n⌉-th smallest value.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Aggregate span durations from `events`, sorted by key.
pub fn aggregate(events: &[Event]) -> Vec<MetricsRow> {
    let mut groups: std::collections::BTreeMap<MetricKey, Vec<u64>> =
        std::collections::BTreeMap::new();
    for ev in events {
        if ev.dur_ns == 0 || !aggregatable(ev.kind) {
            continue;
        }
        let key = MetricKey {
            team: team_of(ev),
            kind: ev.kind,
            level: ev.hierarchy_level(),
        };
        groups.entry(key).or_default().push(ev.dur_ns);
    }
    groups
        .into_iter()
        .map(|(key, mut durs)| {
            durs.sort_unstable();
            let count = durs.len();
            let sum: u64 = durs.iter().sum();
            MetricsRow {
                key,
                count,
                p50_ns: percentile(&durs, 50.0),
                p95_ns: percentile(&durs, 95.0),
                p99_ns: percentile(&durs, 99.0),
                max_ns: *durs.last().expect("non-empty group"),
                mean_ns: sum as f64 / count as f64,
            }
        })
        .collect()
}

/// Table-shaped rendering of [`aggregate`]: `(headers, rows)` of strings,
/// ready for any text-table sink (e.g. `caf_microbench::report::Table`).
pub fn summary_rows(events: &[Event]) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let headers = vec![
        "team", "op", "level", "count", "p50(us)", "p95(us)", "p99(us)", "max(us)",
    ];
    let rows = aggregate(events)
        .into_iter()
        .map(|r| {
            vec![
                r.team_label(),
                r.key.kind.name().to_string(),
                r.key.level.label().to_string(),
                r.count.to_string(),
                format!("{:.2}", r.p50_ns as f64 / 1000.0),
                format!("{:.2}", r.p95_ns as f64 / 1000.0),
                format!("{:.2}", r.p99_ns as f64 / 1000.0),
                format!("{:.2}", r.max_ns as f64 / 1000.0),
            ]
        })
        .collect();
    (headers, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(kind: EventKind, dur: u64, team: u64, level: Level) -> Event {
        Event::span(kind, 0, dur).b(team).level(level)
    }

    #[test]
    fn groups_by_team_kind_level() {
        let mut evs = Vec::new();
        for d in [10, 20, 30] {
            evs.push(span(EventKind::Barrier, d, 7, Level::Whole));
        }
        evs.push(span(EventKind::TdlbDissem, 100, 7, Level::Inter));
        evs.push(span(EventKind::Barrier, 5, 9, Level::Whole));
        // Instants and non-aggregatable kinds are ignored.
        evs.push(Event::instant(EventKind::FlagAdd, 0));
        let rows = aggregate(&evs);
        assert_eq!(rows.len(), 3);
        let barrier7 = rows
            .iter()
            .find(|r| r.key.team == 7 && r.key.kind == EventKind::Barrier)
            .unwrap();
        assert_eq!(barrier7.count, 3);
        assert_eq!(barrier7.p50_ns, 20);
        assert_eq!(barrier7.max_ns, 30);
        assert!((barrier7.mean_ns - 20.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_on_larger_sample() {
        let evs: Vec<Event> = (1..=100)
            .map(|d| span(EventKind::FlagWait, d, 0, Level::Whole).b(0))
            .collect();
        let rows = aggregate(&evs);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.count, 100);
        assert_eq!(r.p50_ns, 50);
        assert_eq!(r.p95_ns, 95);
        assert_eq!(r.p99_ns, 99);
        assert_eq!(r.max_ns, 100);
    }

    #[test]
    fn empty_input_aggregates_to_nothing() {
        assert!(aggregate(&[]).is_empty());
        let (headers, rows) = summary_rows(&[]);
        assert_eq!(headers.len(), 8);
        assert!(rows.is_empty());
        // Zero-duration spans and pure instants alone also produce no rows.
        let evs = vec![
            span(EventKind::Put, 0, 0, Level::Whole),
            Event::instant(EventKind::FlagDeliver, 10),
            Event::instant(EventKind::EventPost, 20),
        ];
        assert!(aggregate(&evs).is_empty());
    }

    #[test]
    fn single_event_row_pins_every_percentile() {
        // n = 1: every rank ⌈p/100·1⌉ clamps to the single sample.
        let rows = aggregate(&[span(EventKind::Barrier, 42, 3, Level::Intra)]);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.count, 1);
        assert_eq!((r.p50_ns, r.p95_ns, r.p99_ns, r.max_ns), (42, 42, 42, 42));
        assert!((r.mean_ns - 42.0).abs() < 1e-9);
    }

    #[test]
    fn two_event_rank_boundaries() {
        // n = 2: p50 rank = ⌈0.5·2⌉ = 1 → the smaller sample; p95/p99
        // ranks = ⌈1.9⌉ = ⌈1.98⌉ = 2 → the larger one.
        let evs = vec![
            span(EventKind::Put, 10, 0, Level::Inter),
            span(EventKind::Put, 90, 0, Level::Inter),
        ];
        let r = &aggregate(&evs)[0];
        assert_eq!(r.count, 2);
        assert_eq!(r.p50_ns, 10);
        assert_eq!(r.p95_ns, 90);
        assert_eq!(r.p99_ns, 90);
        assert_eq!(r.max_ns, 90);
    }

    #[test]
    fn hundred_event_exact_ranks_are_order_independent() {
        // On 1..=100 the nearest-rank percentiles are exactly the rank
        // values — and shuffling the input must not change them.
        let mut durs: Vec<u64> = (1..=100).collect();
        // Deterministic shuffle (LCG index swap) — no RNG dependency.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        for i in (1..durs.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            durs.swap(i, j);
        }
        let evs: Vec<Event> = durs
            .iter()
            .map(|d| span(EventKind::Reduce, *d, 5, Level::Whole))
            .collect();
        let r = &aggregate(&evs)[0];
        assert_eq!(r.count, 100);
        assert_eq!(r.p50_ns, 50, "rank ⌈0.50·100⌉ = 50");
        assert_eq!(r.p95_ns, 95, "rank ⌈0.95·100⌉ = 95");
        assert_eq!(r.p99_ns, 99, "rank ⌈0.99·100⌉ = 99");
        assert_eq!(r.max_ns, 100);
        assert!((r.mean_ns - 50.5).abs() < 1e-9);
    }

    #[test]
    fn zero_duration_spans_are_skipped_within_a_group() {
        // A group mixing real spans with dur=0 noise aggregates only the
        // real ones — the zeros must not drag percentiles down.
        let evs = vec![
            span(EventKind::Get, 0, 0, Level::Intra),
            span(EventKind::Get, 100, 0, Level::Intra),
            span(EventKind::Get, 0, 0, Level::Intra),
            span(EventKind::Get, 200, 0, Level::Intra),
        ];
        let r = &aggregate(&evs)[0];
        assert_eq!(r.count, 2);
        assert_eq!(r.p50_ns, 100);
        assert_eq!(r.max_ns, 200);
    }

    #[test]
    fn summary_rows_shape() {
        let evs = vec![span(EventKind::Barrier, 1500, (3 << 32) | 8, Level::Whole)];
        let (headers, rows) = summary_rows(&evs);
        assert_eq!(headers.len(), 8);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], "r3x8");
        assert_eq!(rows[0][1], "barrier");
        assert_eq!(rows[0][4], "1.50");
    }
}
