//! 2-D Jacobi iteration on a P×Q image grid: the canonical PGAS stencil.
//!
//! The domain is decomposed in both dimensions; each image exchanges four
//! halos per sweep (one-sided puts + `sync images` with its grid
//! neighbors) and every `check_every` sweeps the team agrees on the global
//! update magnitude with a `co_max` — a latency-bound reduction on the
//! whole team.

use caf_runtime::{Coarray, ImageCtx};

/// Near-square process grid `P × Q` with `P ≤ Q` (same policy as the HPL
/// port's `grid_dims`).
fn grid_dims(n_images: usize) -> (usize, usize) {
    let mut p = (n_images as f64).sqrt() as usize;
    while p > 1 && !n_images.is_multiple_of(p) {
        p -= 1;
    }
    (p.max(1), n_images / p.max(1))
}

/// Problem configuration.
#[derive(Clone, Copy, Debug)]
pub struct Jacobi2dConfig {
    /// Interior cells per image, per dimension (each image owns a
    /// `tile × tile` block; the global domain is `(P·tile) × (Q·tile)`).
    pub tile: usize,
    /// Dirichlet boundary value on the whole outer boundary.
    pub boundary: f64,
    /// Stop when the largest cell update is below this.
    pub tol: f64,
    /// Residual check (and `co_max`) frequency, in sweeps.
    pub check_every: usize,
    /// Sweep cap.
    pub max_sweeps: usize,
}

/// Per-image result.
#[derive(Clone, Debug)]
pub struct Jacobi2dOutcome {
    /// Sweeps executed.
    pub sweeps: usize,
    /// Final global max update.
    pub max_update: f64,
    /// Nanoseconds between start/end barriers.
    pub time_ns: u64,
    /// Mean of my tile (sanity statistic).
    pub tile_mean: f64,
}

/// Run Jacobi until the global update drops below `tol`. Collective over
/// the current team; works for any image count (the grid is chosen with
/// an internal near-square factorization).
pub fn jacobi2d(img: &mut ImageCtx, cfg: &Jacobi2dConfig) -> Jacobi2dOutcome {
    let t = cfg.tile;
    assert!(t >= 1);
    let n_images = img.num_images();
    let (p, q) = grid_dims(n_images);
    let me0 = img.this_image() - 1;
    let (prow, pcol) = (me0 / q, me0 % q);

    // Halo coarray: 4 slots of `tile` values: 0=N in, 1=S in, 2=W in, 3=E in.
    let halo: Coarray<f64> = img.coarray(4 * t);
    let at = |r: usize, c: usize| r * (t + 2) + c; // (t+2)^2 padded tile
    let mut u = vec![0.0f64; (t + 2) * (t + 2)];
    let mut next = u.clone();

    // Outer-boundary pads hold the Dirichlet value permanently.
    let is_top = prow == 0;
    let is_bottom = prow == p - 1;
    let is_left = pcol == 0;
    let is_right = pcol == q - 1;
    let neighbor1 = |dr: isize, dc: isize| -> usize {
        let r = (prow as isize + dr) as usize;
        let c = (pcol as isize + dc) as usize;
        r * q + c + 1
    };

    img.sync_all();
    let t0 = img.now_ns();
    let mut sweeps = 0;
    let mut max_update = f64::INFINITY;

    while sweeps < cfg.max_sweeps && max_update > cfg.tol {
        // Push my four edges into neighbors' halos (or set boundary pads).
        let mut partners = Vec::new();
        if is_top {
            for c in 0..t + 2 {
                u[at(0, c)] = cfg.boundary;
            }
        } else {
            let edge: Vec<f64> = (1..=t).map(|c| u[at(1, c)]).collect();
            halo.put(neighbor1(-1, 0), t, &edge); // their S-in slot
            partners.push(neighbor1(-1, 0));
        }
        if is_bottom {
            for c in 0..t + 2 {
                u[at(t + 1, c)] = cfg.boundary;
            }
        } else {
            let edge: Vec<f64> = (1..=t).map(|c| u[at(t, c)]).collect();
            halo.put(neighbor1(1, 0), 0, &edge); // their N-in slot
            partners.push(neighbor1(1, 0));
        }
        if is_left {
            for r in 0..t + 2 {
                u[at(r, 0)] = cfg.boundary;
            }
        } else {
            let edge: Vec<f64> = (1..=t).map(|r| u[at(r, 1)]).collect();
            halo.put(neighbor1(0, -1), 3 * t, &edge); // their E-in slot
            partners.push(neighbor1(0, -1));
        }
        if is_right {
            for r in 0..t + 2 {
                u[at(r, t + 1)] = cfg.boundary;
            }
        } else {
            let edge: Vec<f64> = (1..=t).map(|r| u[at(r, t)]).collect();
            halo.put(neighbor1(0, 1), 2 * t, &edge); // their W-in slot
            partners.push(neighbor1(0, 1));
        }
        img.sync_images(&partners);

        // Pull received halos into the pads.
        let mine1 = me0 + 1;
        let mut buf = vec![0.0f64; t];
        if !is_top {
            halo.get(mine1, 0, &mut buf);
            for c in 1..=t {
                u[at(0, c)] = buf[c - 1];
            }
        }
        if !is_bottom {
            halo.get(mine1, t, &mut buf);
            for c in 1..=t {
                u[at(t + 1, c)] = buf[c - 1];
            }
        }
        if !is_left {
            halo.get(mine1, 2 * t, &mut buf);
            for r in 1..=t {
                u[at(r, 0)] = buf[r - 1];
            }
        }
        if !is_right {
            halo.get(mine1, 3 * t, &mut buf);
            for r in 1..=t {
                u[at(r, t + 1)] = buf[r - 1];
            }
        }

        // Jacobi sweep.
        let mut local_update = 0.0f64;
        for r in 1..=t {
            for c in 1..=t {
                let v =
                    0.25 * (u[at(r - 1, c)] + u[at(r + 1, c)] + u[at(r, c - 1)] + u[at(r, c + 1)]);
                local_update = local_update.max((v - u[at(r, c)]).abs());
                next[at(r, c)] = v;
            }
        }
        img.compute(img.fabric().cost().flops_to_ns((6 * t * t) as u64));
        std::mem::swap(&mut u, &mut next);
        sweeps += 1;

        // Pairwise fence so halo slots may be overwritten next sweep.
        img.sync_images(&partners);

        if sweeps % cfg.check_every == 0 {
            let mut m = [local_update];
            img.co_max(&mut m);
            max_update = m[0];
        }
    }

    img.sync_all();
    let interior: f64 = (1..=t)
        .flat_map(|r| (1..=t).map(move |c| (r, c)))
        .map(|(r, c)| u[at(r, c)])
        .sum();
    Jacobi2dOutcome {
        sweeps,
        max_update,
        time_ns: img.now_ns() - t0,
        tile_mean: interior / (t * t) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caf_runtime::{run, RunConfig};
    use caf_topology::presets;

    fn check(images: usize, nodes: usize, cores: usize, tile: usize) {
        let rc = RunConfig::sim_packed(presets::mini(nodes, cores), images);
        let cfg = Jacobi2dConfig {
            tile,
            boundary: 1.0,
            tol: 1e-6,
            check_every: 5,
            max_sweeps: 20_000,
        };
        let out = run(rc, move |img| {
            let o = jacobi2d(img, &cfg);
            (o.sweeps, o.max_update, o.tile_mean)
        });
        let (sweeps0, upd0, _) = out[0];
        assert!(upd0 <= 1e-6, "did not converge: {upd0}");
        for (sweeps, _, mean) in &out {
            assert_eq!(*sweeps, sweeps0, "images must agree on sweep count");
            // With boundary 1.0 everywhere, the interior converges to 1.
            assert!((mean - 1.0).abs() < 1e-3, "tile mean {mean}");
        }
    }

    #[test]
    fn jacobi_single_image() {
        check(1, 1, 1, 6);
    }

    #[test]
    fn jacobi_2x2_grid() {
        check(4, 2, 2, 5);
    }

    #[test]
    fn jacobi_2x3_grid() {
        check(6, 2, 3, 4);
    }

    #[test]
    fn jacobi_on_threads() {
        let rc = RunConfig::threads_packed(presets::mini(2, 2), 4);
        let cfg = Jacobi2dConfig {
            tile: 4,
            boundary: 2.5,
            tol: 1e-5,
            check_every: 4,
            max_sweeps: 10_000,
        };
        let out = run(rc, move |img| jacobi2d(img, &cfg).tile_mean);
        for mean in out {
            assert!((mean - 2.5).abs() < 1e-2, "mean {mean}");
        }
    }
}
