//! Barrier algorithms: centralized linear counter, PGAS dissemination, the
//! paper's TDLB (Algorithm 1), and the §VII multi-level extension.
//!
//! All algorithms share the team's accumulating flags and the single
//! `barrier` epoch counter, so a team must use one algorithm for its whole
//! life (enforced by resolving the algorithm at formation).

use crate::comm::{flag, TeamComm};
use crate::config::BarrierAlgo;
use crate::util::{binomial_children, binomial_parent, ceil_log2};
use caf_trace::{Event, EventKind, Level};

/// Stable trace operand for a barrier algorithm (`Barrier` event `a`).
pub(crate) fn algo_code(a: BarrierAlgo) -> u64 {
    match a {
        BarrierAlgo::CentralCounter => 1,
        BarrierAlgo::BinomialTree => 2,
        BarrierAlgo::Dissemination => 3,
        BarrierAlgo::Tdlb => 4,
        BarrierAlgo::TdlbMultilevel => 5,
        BarrierAlgo::Auto => 0,
    }
}

/// Run one barrier episode on `comm` with its resolved algorithm.
pub(crate) fn barrier(comm: &mut TeamComm) {
    comm.epochs.barrier += 1;
    let e = comm.epochs.barrier;
    if comm.size() == 1 {
        return;
    }
    let t0 = comm.trace_now();
    match comm.barrier_algo {
        BarrierAlgo::CentralCounter => central_counter(comm, e),
        BarrierAlgo::BinomialTree => binomial_tree(comm, e),
        BarrierAlgo::Dissemination => {
            let all: Vec<usize> = (0..comm.size()).collect();
            dissemination_over(comm, &all, comm.rank, e, Level::Whole);
        }
        BarrierAlgo::Tdlb => tdlb(comm, e),
        BarrierAlgo::TdlbMultilevel => tdlb_multilevel(comm, e),
        BarrierAlgo::Auto => unreachable!("Auto resolved at formation"),
    }
    comm.trace(
        Event::span(EventKind::Barrier, t0, comm.trace_now().saturating_sub(t0))
            .a(algo_code(comm.barrier_algo))
            .b(comm.trace_tag())
            .c(e),
    );
}

/// Centralized linear barrier: 2(n−1) notifications, all via team rank 0.
fn central_counter(comm: &mut TeamComm, e: u64) {
    let n = comm.size();
    if comm.rank == 0 {
        comm.wait_flag(flag::COUNTER, (n as u64 - 1) * e);
        for j in 1..n {
            comm.add_flag(j, flag::RELEASE, 1);
        }
    } else {
        comm.add_flag(0, flag::COUNTER, 1);
        comm.wait_flag(flag::RELEASE, e);
    }
}

/// Binomial-tree barrier: each rank waits for its (fixed) children on the
/// gather counter, notifies its parent, then waits for the release and
/// forwards it down — 2(n−1) notifications in 2·log n depth.
fn binomial_tree(comm: &mut TeamComm, e: u64) {
    let n = comm.size();
    let v = comm.rank;
    let children = binomial_children(v, n);
    if !children.is_empty() {
        comm.wait_flag(flag::COUNTER, children.len() as u64 * e);
    }
    if v != 0 {
        comm.add_flag(binomial_parent(v), flag::COUNTER, 1);
        comm.wait_flag(flag::RELEASE, e);
    }
    for &c in &children {
        comm.add_flag(c, flag::RELEASE, 1);
    }
}

/// PGAS dissemination barrier over an arbitrary participant list
/// (`parts[i]` = team rank of participant `i`); `my_rank` must appear in
/// `parts`. Used both flat (over all ranks) and by TDLB's leader stage.
///
/// Round `k`: notify participant `(me + 2^k) mod L`, then perform the
/// paper's **single wait**: my round-`k` flag is an accumulating counter,
/// so waiting for `≥ epoch` needs no flag reset and no second array
/// (contrast Mellor-Crummey & Scott's two-array formulation and Hensgen et
/// al.'s two waits).
pub(crate) fn dissemination_over(
    comm: &mut TeamComm,
    parts: &[usize],
    my_rank: usize,
    e: u64,
    lvl: Level,
) {
    let l = parts.len();
    if l <= 1 {
        return;
    }
    let my_pos = parts
        .iter()
        .position(|&r| r == my_rank)
        .expect("caller participates");
    let rounds = ceil_log2(l);
    for k in 0..rounds {
        let partner = parts[(my_pos + (1 << k)) % l];
        let t0 = comm.trace_now();
        comm.add_flag(partner, comm.layout.dissem(k), 1);
        comm.wait_flag(comm.layout.dissem(k), e);
        comm.trace(
            Event::span(
                EventKind::BarrierRound,
                t0,
                comm.trace_now().saturating_sub(t0),
            )
            .a(k as u64)
            .b(comm.members[partner].index() as u64)
            .c(e)
            .level(lvl),
        );
    }
}

/// The paper's Team Dissemination Linear Barrier (Algorithm 1):
///
/// ```text
/// procedure TDLB(team)
///   me       = this_image(team)
///   leader   = get_leader(team, me)
///   linear_counter_1(team, me, leader)      // slaves sync with the leader
///   if leader == me then
///       pgased_dissemination(team, leader)  // leaders sync across nodes
///       linear_counter_2(team, me, leader)  // leaders release their slaves
/// ```
fn tdlb(comm: &mut TeamComm, e: u64) {
    let hier = comm.hier.clone();
    let set = hier.set_for(comm.rank);
    let leader = set.leader;

    if comm.rank != leader {
        // Step 1 (slave side): signal the node leader's cocounter...
        comm.add_flag(leader, flag::COUNTER, 1);
        // ...and Step 3 (slave side): wait for the leader's release.
        comm.wait_flag(flag::RELEASE, e);
        return;
    }

    // Step 1 (leader side): wait for all intranode slaves.
    let slaves = set.len() as u64 - 1;
    let tag = comm.trace_tag();
    let t0 = comm.trace_now();
    if slaves > 0 {
        comm.wait_flag(flag::COUNTER, slaves * e);
    }
    comm.trace(
        Event::span(
            EventKind::TdlbGather,
            t0,
            comm.trace_now().saturating_sub(t0),
        )
        .a(slaves)
        .b(tag)
        .c(e)
        .level(Level::Intra),
    );
    // Step 2: dissemination among the node leaders.
    let leaders: Vec<usize> = hier.leaders().to_vec();
    let t1 = comm.trace_now();
    dissemination_over(comm, &leaders, comm.rank, e, Level::Inter);
    comm.trace(
        Event::span(
            EventKind::TdlbDissem,
            t1,
            comm.trace_now().saturating_sub(t1),
        )
        .a(leaders.len() as u64)
        .b(tag)
        .c(e)
        .level(Level::Inter),
    );
    // Step 3 (leader side): release the intranode set.
    let t2 = comm.trace_now();
    for &s in set.slaves() {
        comm.add_flag(s, flag::RELEASE, 1);
    }
    comm.trace(
        Event::span(
            EventKind::TdlbRelease,
            t2,
            comm.trace_now().saturating_sub(t2),
        )
        .a(slaves)
        .b(tag)
        .c(e)
        .level(Level::Intra),
    );
}

/// §VII future work: socket level below the node level. Within each
/// intranode set, images first gather at a per-socket leader, socket
/// leaders gather at the node leader, node leaders disseminate, and the
/// releases run back down the two intra-node levels.
fn tdlb_multilevel(comm: &mut TeamComm, e: u64) {
    let hier = comm.hier.clone();
    let set = hier.set_for(comm.rank);
    let node_leader = set.leader;
    let groups = hier.socket_groups(comm.rank);
    let my_group = groups
        .iter()
        .find(|g| g.contains(&comm.rank))
        .expect("every rank is in a socket group")
        .clone();
    let socket_leader = my_group[0];

    if comm.rank != socket_leader {
        comm.add_flag(socket_leader, flag::S_COUNTER, 1);
        comm.wait_flag(flag::S_RELEASE, e);
        return;
    }

    // Socket leader: gather my socket.
    let socket_slaves = my_group.len() as u64 - 1;
    if socket_slaves > 0 {
        comm.wait_flag(flag::S_COUNTER, socket_slaves * e);
    }

    if comm.rank != node_leader {
        comm.add_flag(node_leader, flag::COUNTER, 1);
        comm.wait_flag(flag::RELEASE, e);
    } else {
        // Node leader: gather the other socket leaders of this node.
        let other_sockets = groups.len() as u64 - 1;
        if other_sockets > 0 {
            comm.wait_flag(flag::COUNTER, other_sockets * e);
        }
        let leaders: Vec<usize> = hier.leaders().to_vec();
        dissemination_over(comm, &leaders, comm.rank, e, Level::Inter);
        for g in &groups {
            if g[0] != node_leader {
                comm.add_flag(g[0], flag::RELEASE, 1);
            }
        }
    }

    // Release my socket.
    for &m in &my_group[1..] {
        comm.add_flag(m, flag::S_RELEASE, 1);
    }
}
