//! All-to-all reduction (allreduce) algorithms: flat recursive doubling,
//! flat binomial reduce-then-broadcast, the paper's two-level scheme
//! (intra-node linear combine at each leader → recursive doubling among
//! leaders → intra-node release), flat Rabenseifner (recursive-halving
//! reduce-scatter + recursive-doubling allgather, bandwidth-optimal for
//! large payloads), and a chunked pipelined two-level scheme where slaves
//! stream K-byte chunks to their leader with nonblocking puts, the leader
//! folds chunk-by-chunk as they arrive, leaders run Rabenseifner on the
//! folded buffer, and the release streams back in chunks.
//!
//! # Flow control
//!
//! Data travels through per-round scratch slots, double-buffered by the
//! epoch's parity. An image can be at most one episode ahead of any image
//! it communicates with (allreduce is globally synchronizing), so parity
//! double-buffering suffices to prevent a sender's episode-`e+2` payload
//! from landing before the receiver consumed episode `e`: starting episode
//! `e+2` requires finishing `e+1`, which requires the receiver to have
//! *started* `e+1` and hence consumed all of `e`.

use crate::comm::{flag, TeamComm};
use crate::config::ReduceAlgo;
use crate::util::{ceil_log2, floor_pow2};
use crate::value::CoValue;
use caf_trace::{Event, EventKind, Level};

/// Stable trace operand for a reduction algorithm (`Reduce` event `a`).
fn algo_code(a: ReduceAlgo) -> u64 {
    match a {
        ReduceAlgo::FlatRecursiveDoubling => 1,
        ReduceAlgo::FlatBinomial => 2,
        ReduceAlgo::TwoLevel => 3,
        ReduceAlgo::TwoLevelPipelined => 4,
        ReduceAlgo::Rabenseifner => 5,
        ReduceAlgo::Auto => 0,
    }
}

/// Element-wise allreduce of `buf` across the team, picking the algorithm
/// by (hierarchy × payload size) — every member must call with the same
/// `buf.len()` and an equivalent operation, so all agree on the choice.
pub(crate) fn allreduce<T: CoValue>(comm: &mut TeamComm, buf: &mut [T], f: &impl Fn(T, T) -> T) {
    comm.epochs.reduce += 1;
    let e = comm.epochs.reduce;
    if comm.size() == 1 || buf.is_empty() {
        return;
    }
    let algo = comm.reduce_algo_for(buf.len() * T::SIZE);
    comm.ensure_scratch(buf.len() * T::SIZE);
    let t0 = comm.trace_now();
    match algo {
        ReduceAlgo::FlatRecursiveDoubling => {
            let all: Vec<usize> = (0..comm.size()).collect();
            rd_over(comm, &all, buf, f, e);
        }
        ReduceAlgo::FlatBinomial => flat_binomial(comm, buf, f, e),
        ReduceAlgo::TwoLevel => two_level(comm, buf, f, e),
        ReduceAlgo::TwoLevelPipelined => two_level_pipelined(comm, buf, f, e),
        ReduceAlgo::Rabenseifner => {
            let all: Vec<usize> = (0..comm.size()).collect();
            rabenseifner_over(comm, &all, buf, f, e);
        }
        ReduceAlgo::Auto => unreachable!("Auto resolved per call"),
    }
    comm.trace(
        Event::span(EventKind::Reduce, t0, comm.trace_now().saturating_sub(t0))
            .a(algo_code(algo))
            .b(comm.trace_tag())
            .c(e)
            .d((buf.len() * T::SIZE) as u64),
    );
}

/// Recursive-doubling allreduce over an arbitrary participant list
/// (`parts[i]` = team rank), with the standard fold-in/fold-out handling of
/// non-power-of-two sizes: the `extras` (positions ≥ 2^⌊log₂L⌋) contribute
/// to a partner up front and receive the final result afterwards.
pub(crate) fn rd_over<T: CoValue>(
    comm: &mut TeamComm,
    parts: &[usize],
    buf: &mut [T],
    f: &impl Fn(T, T) -> T,
    e: u64,
) {
    let l = parts.len();
    if l <= 1 {
        return;
    }
    let pos = parts
        .iter()
        .position(|&r| r == comm.rank)
        .expect("caller participates in the reduction");
    let par = (e % 2) as usize;
    let p2 = floor_pow2(l);
    let extras = l - p2;

    if pos >= p2 {
        // Fold in: hand my contribution to my partner, collect the result.
        let partner = parts[pos - p2];
        let off = comm.sl_pre(par);
        comm.send_values(partner, off, buf);
        comm.add_flag(partner, flag::R_PRE, 1);
        comm.epochs.r_post += 1;
        comm.wait_flag(flag::R_POST, comm.epochs.r_post);
        let off = comm.sl_post(par);
        comm.load_from_scratch(off, buf);
        return;
    }

    if pos < extras {
        comm.epochs.r_pre += 1;
        comm.wait_flag(flag::R_PRE, comm.epochs.r_pre);
        let off = comm.sl_pre(par);
        comm.combine_from_scratch(off, buf, f);
    }

    // Main phase: hypercube exchange among the first p2 participants.
    let rounds = ceil_log2(p2);
    for k in 0..rounds {
        let partner = parts[pos ^ (1 << k)];
        let off = comm.sl_rd(k, par);
        comm.send_values(partner, off, buf);
        comm.add_flag(partner, comm.layout.r_arrive(k), 1);
        let target = comm.epochs.bump_r_round(k);
        comm.wait_flag(comm.layout.r_arrive(k), target);
        comm.combine_from_scratch(off, buf, f);
    }

    if pos < extras {
        // Fold out: return the finished result to my extra.
        let extra = parts[pos + p2];
        let off = comm.sl_post(par);
        comm.send_values(extra, off, buf);
        comm.add_flag(extra, flag::R_POST, 1);
    }
}

/// Binomial-tree reduce to team rank 0, then a flat binomial broadcast of
/// the result. A classic 1-level baseline with lower bandwidth than
/// recursive doubling but a root hot-spot.
fn flat_binomial<T: CoValue>(comm: &mut TeamComm, buf: &mut [T], f: &impl Fn(T, T) -> T, e: u64) {
    let n = comm.size();
    let v = comm.rank;
    let par = (e % 2) as usize;
    let rounds = ceil_log2(n);
    for k in 0..rounds {
        if (v >> k) & 1 == 1 {
            // Send my partial to the parent and retire from the gather.
            let parent = v & !(1 << k);
            let off = comm.sl_rd(k, par);
            comm.send_values(parent, off, buf);
            comm.add_flag(parent, comm.layout.r_arrive(k), 1);
            break;
        }
        let child = v | (1 << k);
        if child < n {
            let target = comm.epochs.bump_r_round(k);
            comm.wait_flag(comm.layout.r_arrive(k), target);
            let off = comm.sl_rd(k, par);
            comm.combine_from_scratch(off, buf, f);
        }
    }
    // Everyone (root included) picks up the result through the broadcast,
    // whose full-ack flow control also fences the rd slots for reuse.
    crate::bcast::broadcast_using(comm, buf, 0, crate::config::BcastAlgo::FlatBinomial);
}

/// The paper's two-level reduction (§IV applied to all-to-all reduction):
/// slaves deposit contributions at their node leader (shared-memory
/// friendly linear gather), leaders run recursive doubling across nodes,
/// leaders release results to their intranode sets.
fn two_level<T: CoValue>(comm: &mut TeamComm, buf: &mut [T], f: &impl Fn(T, T) -> T, e: u64) {
    let hier = comm.hier.clone();
    let set = hier.set_for(comm.rank);
    let leader = set.leader;
    let par = (e % 2) as usize;

    if comm.rank != leader {
        let pos = set
            .ranks
            .iter()
            .position(|&r| r == comm.rank)
            .expect("member of own set");
        let off = comm.sl_gather(pos, par);
        comm.send_values(leader, off, buf);
        comm.add_flag(leader, flag::R_COUNTER, 1);
        comm.epochs.r_release += 1;
        comm.wait_flag(flag::R_RELEASE, comm.epochs.r_release);
        let off = comm.sl_release(par);
        comm.load_from_scratch(off, buf);
        return;
    }

    // Leader: linear gather of the intranode set.
    let tag = comm.trace_tag();
    let t0 = comm.trace_now();
    let slaves = set.len() as u64 - 1;
    if slaves > 0 {
        comm.epochs.r_counter += slaves;
        comm.wait_flag(flag::R_COUNTER, comm.epochs.r_counter);
        let positions: Vec<usize> = (1..set.len()).collect();
        for pos in positions {
            let off = comm.sl_gather(pos, par);
            comm.combine_from_scratch(off, buf, f);
        }
    }
    comm.trace(
        Event::span(
            EventKind::ReduceStage,
            t0,
            comm.trace_now().saturating_sub(t0),
        )
        .a(1)
        .b(tag)
        .c(e)
        .level(Level::Intra),
    );

    // Leaders: recursive doubling across nodes.
    let t1 = comm.trace_now();
    let leaders: Vec<usize> = hier.leaders().to_vec();
    rd_over(comm, &leaders, buf, f, e);
    comm.trace(
        Event::span(
            EventKind::ReduceStage,
            t1,
            comm.trace_now().saturating_sub(t1),
        )
        .a(2)
        .b(tag)
        .c(e)
        .level(Level::Inter),
    );

    // Release the intranode set.
    let t2 = comm.trace_now();
    let slaves: Vec<usize> = set.slaves().to_vec();
    for s in slaves {
        let off = comm.sl_release(par);
        comm.send_values(s, off, buf);
        comm.add_flag(s, flag::R_RELEASE, 1);
    }
    comm.trace(
        Event::span(
            EventKind::ReduceStage,
            t2,
            comm.trace_now().saturating_sub(t2),
        )
        .a(3)
        .b(tag)
        .c(e)
        .level(Level::Intra),
    );
}

/// Pipelined two-level reduction for large payloads: slaves *stream* their
/// contribution to the node leader in policy-sized chunks (the leader folds
/// chunk `c` while chunk `c+1` is still crossing the memory bus), leaders
/// run the bandwidth-optimal Rabenseifner exchange across nodes, and the
/// result streams back to the slaves with nonblocking puts.
///
/// Each slave's chunk stream is counted on its **own** per-set-position
/// flag (`layout.chunk(pos)`): with several slaves sending concurrently, a
/// shared counter could not tell "slave A sent two chunks" from "A and B
/// sent one each", and the leader must know *whose* chunk landed before
/// folding that position's slot range.
fn two_level_pipelined<T: CoValue>(
    comm: &mut TeamComm,
    buf: &mut [T],
    f: &impl Fn(T, T) -> T,
    e: u64,
) {
    let hier = comm.hier.clone();
    let set = hier.set_for(comm.rank);
    let leader = set.leader;
    let par = (e % 2) as usize;
    let len = buf.len();
    let ce = comm.chunk_elems(T::SIZE);
    let nchunks = len.div_ceil(ce).max(1);
    let chunk = |c: usize| (c * ce, ((c + 1) * ce).min(len));

    if comm.rank != leader {
        let pos = set
            .ranks
            .iter()
            .position(|&r| r == comm.rank)
            .expect("member of own set");
        let g_off = comm.sl_gather(pos, par);
        for c in 0..nchunks {
            let (lo, hi) = chunk(c);
            comm.send_values_nb(leader, g_off + lo * T::SIZE, &buf[lo..hi]);
            comm.add_flag(leader, comm.layout.chunk(pos), 1);
        }
        let r_off = comm.sl_release(par);
        for c in 0..nchunks {
            let (lo, hi) = chunk(c);
            comm.epochs.r_release += 1;
            comm.wait_flag(flag::R_RELEASE, comm.epochs.r_release);
            comm.load_from_scratch(r_off + lo * T::SIZE, &mut buf[lo..hi]);
        }
        return;
    }

    // Leader: fold each slave's chunk as soon as it lands.
    let tag = comm.trace_tag();
    let t0 = comm.trace_now();
    let npos = set.len();
    for c in 0..nchunks {
        let (lo, hi) = chunk(c);
        for pos in 1..npos {
            let target = comm.epochs.bump_chunk(pos);
            comm.wait_flag(comm.layout.chunk(pos), target);
            let g_off = comm.sl_gather(pos, par);
            comm.combine_from_scratch(g_off + lo * T::SIZE, &mut buf[lo..hi], f);
        }
    }
    comm.trace(
        Event::span(
            EventKind::ReduceStage,
            t0,
            comm.trace_now().saturating_sub(t0),
        )
        .a(1)
        .b(tag)
        .c(e)
        .d(nchunks as u64)
        .level(Level::Intra),
    );

    // Leaders: bandwidth-optimal exchange across nodes.
    let t1 = comm.trace_now();
    let leaders: Vec<usize> = hier.leaders().to_vec();
    rabenseifner_over(comm, &leaders, buf, f, e);
    comm.trace(
        Event::span(
            EventKind::ReduceStage,
            t1,
            comm.trace_now().saturating_sub(t1),
        )
        .a(2)
        .b(tag)
        .c(e)
        .level(Level::Inter),
    );

    // Stream the result back to the intranode set.
    let t2 = comm.trace_now();
    let slaves: Vec<usize> = set.slaves().to_vec();
    let r_off = comm.sl_release(par);
    for c in 0..nchunks {
        let (lo, hi) = chunk(c);
        for &s in &slaves {
            comm.send_values_nb(s, r_off + lo * T::SIZE, &buf[lo..hi]);
            comm.add_flag(s, flag::R_RELEASE, 1);
        }
    }
    comm.trace(
        Event::span(
            EventKind::ReduceStage,
            t2,
            comm.trace_now().saturating_sub(t2),
        )
        .a(3)
        .b(tag)
        .c(e)
        .d(nchunks as u64)
        .level(Level::Intra),
    );
}

/// Rabenseifner's allreduce over an arbitrary participant list: a
/// recursive-halving reduce-scatter followed by a recursive-doubling
/// allgather. Each participant moves ~`2·(L−1)/L` payloads instead of the
/// `log L` payloads of plain recursive doubling, which is what makes this
/// the large-message algorithm of choice; the elementwise operation is
/// applied to ever-shrinking ranges, so compute is also ~halved.
///
/// Non-power-of-two sizes use the same fold-in/fold-out scheme as
/// [`rd_over`]. Scratch reuse is safe within an episode because the
/// halving round `k` deposit (my kept half) and the allgather round `k`
/// deposit (the complementary half) land at disjoint absolute element
/// offsets of the same `sl_rd(k)` slot; across episodes parity
/// double-buffering applies as usual.
pub(crate) fn rabenseifner_over<T: CoValue>(
    comm: &mut TeamComm,
    parts: &[usize],
    buf: &mut [T],
    f: &impl Fn(T, T) -> T,
    e: u64,
) {
    let l = parts.len();
    if l <= 1 {
        return;
    }
    let pos = parts
        .iter()
        .position(|&r| r == comm.rank)
        .expect("caller participates in the reduction");
    let par = (e % 2) as usize;
    let p2 = floor_pow2(l);
    let extras = l - p2;

    if pos >= p2 {
        // Fold in: hand my contribution to my partner, collect the result.
        let partner = parts[pos - p2];
        let off = comm.sl_pre(par);
        comm.send_values(partner, off, buf);
        comm.add_flag(partner, flag::R_PRE, 1);
        comm.epochs.r_post += 1;
        comm.wait_flag(flag::R_POST, comm.epochs.r_post);
        let off = comm.sl_post(par);
        comm.load_from_scratch(off, buf);
        return;
    }

    if pos < extras {
        comm.epochs.r_pre += 1;
        comm.wait_flag(flag::R_PRE, comm.epochs.r_pre);
        let off = comm.sl_pre(par);
        comm.combine_from_scratch(off, buf, f);
    }

    // Reduce-scatter by recursive halving: at round k my partner is
    // `pos ^ (p2 >> (k+1))`; we split my current range, each side sends
    // the half the *other* keeps, and I fold the received half into mine.
    let rounds = ceil_log2(p2);
    let (mut lo, mut hi) = (0usize, buf.len());
    let mut parents: Vec<(usize, usize)> = Vec::with_capacity(rounds);
    for k in 0..rounds {
        let d = p2 >> (k + 1);
        let partner = parts[pos ^ d];
        parents.push((lo, hi));
        let mid = lo + (hi - lo) / 2;
        let (keep, send) = if pos & d == 0 {
            ((lo, mid), (mid, hi))
        } else {
            ((mid, hi), (lo, mid))
        };
        let off = comm.sl_rd(k, par);
        comm.send_values(partner, off + send.0 * T::SIZE, &buf[send.0..send.1]);
        comm.add_flag(partner, comm.layout.r_arrive(k), 1);
        let target = comm.epochs.bump_r_round(k);
        comm.wait_flag(comm.layout.r_arrive(k), target);
        comm.combine_from_scratch(off + keep.0 * T::SIZE, &mut buf[keep.0..keep.1], f);
        (lo, hi) = keep;
    }

    // Allgather by recursive doubling, unwinding the same pairings: I own
    // the reduced [lo, hi); my round-k partner owns the complement of my
    // round-k parent range, and we swap.
    for k in (0..rounds).rev() {
        let d = p2 >> (k + 1);
        let partner = parts[pos ^ d];
        let (plo, phi) = parents[k];
        let off = comm.sl_rd(k, par);
        comm.send_values(partner, off + lo * T::SIZE, &buf[lo..hi]);
        comm.add_flag(partner, comm.layout.r_arrive(k), 1);
        let target = comm.epochs.bump_r_round(k);
        comm.wait_flag(comm.layout.r_arrive(k), target);
        let (olo, ohi) = if lo == plo { (hi, phi) } else { (plo, lo) };
        comm.load_from_scratch(off + olo * T::SIZE, &mut buf[olo..ohi]);
        (lo, hi) = (plo, phi);
    }

    if pos < extras {
        // Fold out: return the finished result to my extra.
        let extra = parts[pos + p2];
        let off = comm.sl_post(par);
        comm.send_values(extra, off, buf);
        comm.add_flag(extra, flag::R_POST, 1);
    }
}
