//! The third backend column of the differential oracle: run the
//! conformance program on a real multi-process [`SocketFabric`] fleet and
//! diff its per-image digests against the deterministic simulator.
//!
//! The sim explores schedules, the thread fabric exposes OS interleavings;
//! neither exercises the wire — framing, the put-ack protocol, connection
//! lifecycle, cross-process flag delivery. This column does: the parent
//! (`caf-check --socket`) re-executes **its own binary** once per node with
//! the hidden `--socket-child` flag via the `caf-launch` supervisor, and
//! each child joins the fleet over real sockets, runs the same conformance
//! program through the full runtime stack, and reports digests back over
//! the coordinator connection.

use crate::harness::{diff, CheckReport, Failure};
use crate::scenario::{algo_by_name, conformance, Scenario};
use caf_collectives::CollectiveConfig;
use caf_fabric::socket::{shm, SocketConfig, SocketFabric};
use caf_fabric::ChaosConfig;
use caf_launch::{launch, ChildEnv, KillSpec, LaunchSpec};
use caf_runtime::{run, run_hosted, run_hosted_rejoin, FabricChoice, ImageCtx, RunConfig};
use caf_topology::{ImageMap, NodeId, Placement};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// Environment variable carrying the scenario label to `--socket-child`.
pub const ENV_SCENARIO: &str = "CAF_CHECK_SCENARIO";
/// Environment variable carrying the algorithm-cell label.
pub const ENV_ALGO: &str = "CAF_CHECK_ALGO";
/// Environment variable telling `--socket-child` to run the conformance
/// program inside [`ImageCtx::recovering`] — required by the
/// kill-and-recover drill, where survivors must ride out a peer death and
/// re-run from the top instead of aborting. Its value is the repetition
/// count: the body loops conformance that many times (every rep produces
/// the same digest, so the oracle is unchanged) purely to hold the fleet
/// in flight long enough for the scheduled kill to land mid-run.
pub const ENV_RECOVER: &str = "CAF_CHECK_RECOVER";

/// The kill-and-recover drill plan: which node the launcher kills, and
/// when. The fleet runs with `respawn` on, so the dead node is revived,
/// rejoins at the next recovery generation, and the whole team restarts
/// the conformance program — whose digests must then match the
/// undisturbed sim oracle bit-for-bit.
#[derive(Clone, Copy, Debug)]
pub struct RecoverDrill {
    /// Node rank of the victim process.
    pub kill_node: usize,
    /// Delay from supervision start to the kill.
    pub kill_after: Duration,
    /// Conformance repetitions per attempt — stretches the run so the
    /// kill reliably lands mid-collective (see [`ENV_RECOVER`]).
    pub reps: usize,
}

fn placed(scn: &Scenario) -> ImageMap {
    ImageMap::new(scn.machine.clone(), scn.images, &Placement::Packed)
}

/// 1-based image numbers per occupied node, in node order — the launcher's
/// process plan and its vocabulary for death reports.
fn node_images(map: &ImageMap) -> Vec<Vec<usize>> {
    (0..map.machine().nodes)
        .map(NodeId)
        .filter(|n| !map.images_on_node(*n).is_empty())
        .map(|n| {
            map.images_on_node(n)
                .iter()
                .map(|p| p.index() + 1)
                .collect()
        })
        .collect()
}

/// Run the conformance program on a real socket fleet (one process per
/// occupied node) and return per-image digests in image order.
///
/// Must be called from a binary that dispatches `--socket-child` to
/// [`socket_child_main`] — the fleet re-executes `current_exe()`.
pub fn socket_digests(scn: &Scenario, algo_name: &str) -> Result<Vec<u64>, String> {
    fleet_digests(scn, algo_name, None, None).map(|(digests, _)| digests)
}

/// Per-image digests plus the respawn events `(node, generation)` the
/// supervisor repaired during the run.
pub type DrilledDigests = (Vec<u64>, Vec<(usize, u64)>);

/// [`socket_digests`] plus optional fault injection and an explicit
/// transport-tier pin: with a [`RecoverDrill`], the fleet runs
/// respawn-supervised, the victim is killed on schedule, and the respawn
/// events `(node, generation)` the supervisor repaired are returned
/// alongside the digests. `shm` of `Some(true)`/`Some(false)` forces
/// `CAF_SOCKET_SHM` on/off in the children's environment (the
/// shared-memory intranode tier vs. the pure-wire path); `None` leaves
/// the inherited setting alone.
pub fn fleet_digests(
    scn: &Scenario,
    algo_name: &str,
    drill: Option<&RecoverDrill>,
    shm: Option<bool>,
) -> Result<DrilledDigests, String> {
    let map = placed(scn);
    let plan = node_images(&map);
    // Children inherit the environment: this is how the scenario and algo
    // cell reach them (argv stays fixed across the sweep).
    std::env::set_var(ENV_SCENARIO, &scn.name);
    std::env::set_var(ENV_ALGO, algo_name);
    if let Some(on) = shm {
        std::env::set_var(shm::ENV_SHM, if on { "1" } else { "0" });
    }
    match drill {
        Some(d) => std::env::set_var(ENV_RECOVER, d.reps.max(1).to_string()),
        None => std::env::remove_var(ENV_RECOVER),
    }
    let exe = std::env::current_exe()
        .map_err(|e| format!("cannot find own executable: {e}"))?
        .to_string_lossy()
        .into_owned();
    let mut spec = LaunchSpec::new(vec![exe, "--socket-child".into()], plan);
    spec.run_timeout = Duration::from_secs(120);
    if let Some(d) = drill {
        if d.kill_node >= spec.node_images.len() {
            return Err(format!(
                "drill kills node {} but the fleet has {} processes",
                d.kill_node,
                spec.node_images.len()
            ));
        }
        spec.respawn = true;
        spec.kill = Some(KillSpec {
            rank: d.kill_node,
            after: d.kill_after,
        });
    }
    let outcome = launch(&spec).map_err(|e| e.to_string())?;
    if outcome.results.len() != scn.images {
        return Err(format!(
            "fleet reported {} results for {} images",
            outcome.results.len(),
            scn.images
        ));
    }
    for (i, (img, _)) in outcome.results.iter().enumerate() {
        if *img as usize != i {
            return Err(format!("fleet results missing image {}", i + 1));
        }
    }
    Ok((
        outcome.results.into_iter().map(|(_, d)| d).collect(),
        outcome.respawns,
    ))
}

/// Differentially check one (scenario, algorithm) cell on the socket
/// backend: default-sim oracle vs. a real fleet, with the shared-memory
/// tier pinned **off** so this column keeps exercising the pure wire
/// protocol (framing, put acks, connection lifecycle) as the differential
/// oracle for the shm column. Returns run counts or a rendered-ready
/// [`Failure`] whose kind is `"socket"`.
pub fn check_socket(
    scn: &Scenario,
    algo_name: &str,
    algo: CollectiveConfig,
) -> Result<CheckReport, Box<Failure>> {
    let fail = |detail: String| {
        Box::new(Failure {
            scenario: scn.name.clone(),
            algo: algo_name.to_string(),
            kind: "socket".into(),
            seed: None,
            minimal: None,
            detail,
            trace_window: String::new(),
        })
    };
    let cfg = RunConfig {
        machine: scn.machine.clone(),
        images: scn.images,
        placement: Placement::Packed,
        fabric: FabricChoice::Sim(caf_fabric::SimConfig::default()),
        collectives: algo,
    };
    let oracle = catch_unwind(AssertUnwindSafe(|| run(cfg, conformance)))
        .map_err(|_| fail("oracle (default sim) panicked".into()))?;
    let got: Result<Vec<u64>, String> = match fleet_digests(scn, algo_name, None, Some(false)) {
        Ok((v, _)) => Ok(v),
        Err(e) => return Err(fail(format!("fleet failed: {e}"))),
    };
    if let Some(detail) = diff(&oracle, &got) {
        return Err(fail(detail));
    }
    Ok(CheckReport {
        runs: 2,
        chaos_runs: 0,
        fault_runs: 0,
    })
}

/// The shared-memory column: one (scenario, algorithm) cell run on a real
/// fleet with the zero-copy shm tier forced **on**, diffed bit-for-bit
/// against (a) the default-sim oracle, (b) the same oracle re-derived
/// under each chaos seed (proving the reference digests are
/// schedule-independent before trusting them), and (c) the identical
/// fleet with `CAF_SOCKET_SHM=0` — the pure-wire differential oracle. The
/// shm tier changes *how* intranode bytes move (memcpy + atomics instead
/// of frames + acks) but must never change *what* any image computes; a
/// divergence here is a shm ordering, visibility, or reset bug.
pub fn check_shm(
    scn: &Scenario,
    algo_name: &str,
    algo: CollectiveConfig,
    chaos_seeds: &[u64],
) -> Result<CheckReport, Box<Failure>> {
    let fail = |kind: String, seed: Option<u64>, detail: String| {
        Box::new(Failure {
            scenario: scn.name.clone(),
            algo: algo_name.to_string(),
            kind,
            seed,
            minimal: None,
            detail,
            trace_window: String::new(),
        })
    };
    let sim = |chaos: Option<ChaosConfig>| {
        let cfg = RunConfig {
            machine: scn.machine.clone(),
            images: scn.images,
            placement: Placement::Packed,
            fabric: FabricChoice::Sim(caf_fabric::SimConfig {
                chaos,
                ..caf_fabric::SimConfig::default()
            }),
            collectives: algo,
        };
        catch_unwind(AssertUnwindSafe(|| run(cfg, conformance)))
            .map_err(|_| "sim run panicked".to_string())
    };
    let mut report = CheckReport::default();
    let oracle = sim(None).map_err(|e| fail("shm oracle (default sim)".into(), None, e))?;
    report.runs += 1;
    // The oracle must be schedule-independent before a fleet is held to
    // it: re-derive it under every chaos seed and demand bit-equality.
    for &seed in chaos_seeds {
        let chaotic = sim(Some(ChaosConfig::from_seed(seed)));
        report.runs += 1;
        report.chaos_runs += 1;
        if let Some(detail) = diff(&oracle, &chaotic) {
            return Err(fail(
                format!("shm oracle under chaos seed {seed}"),
                Some(seed),
                detail,
            ));
        }
    }
    let shm_on = match fleet_digests(scn, algo_name, None, Some(true)) {
        Ok((v, _)) => v,
        Err(e) => return Err(fail("shm fleet".into(), None, format!("fleet failed: {e}"))),
    };
    report.runs += 1;
    if let Some(detail) = diff(&oracle, &Ok(shm_on.clone())) {
        return Err(fail("shm fleet vs sim oracle".into(), None, detail));
    }
    let shm_off = match fleet_digests(scn, algo_name, None, Some(false)) {
        Ok((v, _)) => v,
        Err(e) => {
            return Err(fail(
                "wire fleet".into(),
                None,
                format!("fleet failed: {e}"),
            ))
        }
    };
    report.runs += 1;
    if let Some(detail) = diff(&shm_on, &Ok(shm_off)) {
        return Err(fail("shm fleet vs wire fleet".into(), None, detail));
    }
    Ok(report)
}

/// The kill-and-recover drill: a respawn-supervised fleet loses one node
/// mid-run, repairs it, the full team restarts the conformance program —
/// and the final per-image digests must match the **undisturbed**
/// sim-oracle run bit-for-bit. The conformance program keeps no
/// checkpoints, so recovery means a clean global restart on the rejoined
/// team; any state the fabric failed to reset (a stale flag count, a
/// half-applied put, a surviving pre-death frame) shows up as a digest
/// divergence.
///
/// A fast fleet can finish before the scheduled kill lands; such a run
/// proves nothing about recovery, so the drill retries with the remaining
/// attempts and fails if the kill never landed.
pub fn check_recover(
    scn: &Scenario,
    algo_name: &str,
    algo: CollectiveConfig,
    drill: &RecoverDrill,
    attempts: usize,
) -> Result<CheckReport, Box<Failure>> {
    let fail = |detail: String| {
        Box::new(Failure {
            scenario: scn.name.clone(),
            algo: algo_name.to_string(),
            kind: "kill-and-recover".into(),
            seed: None,
            minimal: None,
            detail,
            trace_window: String::new(),
        })
    };
    let cfg = RunConfig {
        machine: scn.machine.clone(),
        images: scn.images,
        placement: Placement::Packed,
        fabric: FabricChoice::Sim(caf_fabric::SimConfig::default()),
        collectives: algo,
    };
    let oracle = catch_unwind(AssertUnwindSafe(|| run(cfg, conformance)))
        .map_err(|_| fail("oracle (default sim) panicked".into()))?;
    for attempt in 1..=attempts.max(1) {
        let (digests, respawns) = match fleet_digests(scn, algo_name, Some(drill), None) {
            Ok(pair) => pair,
            Err(e) => return Err(fail(format!("drill fleet failed: {e}"))),
        };
        if let Some(detail) = diff(&oracle, &Ok(digests)) {
            return Err(fail(format!(
                "recovered fleet diverged from the undisturbed oracle: {detail}"
            )));
        }
        if !respawns.is_empty() {
            return Ok(CheckReport {
                runs: 1 + attempt,
                chaos_runs: 0,
                fault_runs: attempt,
            });
        }
        eprintln!(
            "caf-check: kill-and-recover on {} / {algo_name}: fleet finished before \
             the kill landed (attempt {attempt}/{attempts})",
            scn.name
        );
    }
    Err(fail(format!(
        "the scheduled kill (node {} after {:?}) never landed in {attempts} attempts — \
         the drill exercised nothing; lower --kill-after-ms or raise iterations",
        drill.kill_node, drill.kill_after
    )))
}

/// Entry point for the hidden `--socket-child` mode: join the fleet
/// described by the launcher environment, run conformance on this node's
/// images, report digests. Returns a process exit code.
pub fn socket_child_main() -> i32 {
    let scn_name = match std::env::var(ENV_SCENARIO) {
        Ok(v) => v,
        Err(_) => {
            eprintln!("--socket-child: {ENV_SCENARIO} not set");
            return 2;
        }
    };
    let algo_name = match std::env::var(ENV_ALGO) {
        Ok(v) => v,
        Err(_) => {
            eprintln!("--socket-child: {ENV_ALGO} not set");
            return 2;
        }
    };
    let (scn, algo) = match (Scenario::by_name(&scn_name), algo_by_name(&algo_name)) {
        (Some(s), Some(a)) => (s, a),
        _ => {
            eprintln!("--socket-child: unknown scenario {scn_name:?} or algos {algo_name:?}");
            return 2;
        }
    };
    let env = match ChildEnv::detect() {
        Some(env) => env,
        None => {
            eprintln!("--socket-child: not running under caf-launch");
            return 2;
        }
    };
    let recover_reps: Option<usize> = std::env::var(ENV_RECOVER).ok().and_then(|v| v.parse().ok());
    let cfg = SocketConfig::from_env();
    // A respawned incarnation carries the generation it must rejoin at.
    let rejoining = cfg.rejoin_generation.is_some();
    let (fabric, mut coord) = match SocketFabric::join(placed(&scn), env.node, &env.coord, cfg) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("--socket-child node {}: join failed: {e}", env.node);
            return 1;
        }
    };
    let hosted = fabric.hosted().to_vec();
    // Recovery mode: ride out a peer death (the poison panic is caught by
    // `recovering`), re-form the team — full again once the victim
    // rejoins — and restart conformance from the top. No checkpoints, so
    // a correct recovery reproduces the undisturbed digests exactly.
    let body = move |img: &mut ImageCtx| match recover_reps {
        Some(reps) => img
            .recovering(2, |img| {
                let mut digest = 0;
                for _ in 0..reps.max(1) {
                    digest = conformance(img);
                }
                Ok(digest)
            })
            .unwrap_or_else(|e| panic!("image {} could not recover: {e}", img.this_image())),
        None => conformance(img),
    };
    let results = if rejoining {
        run_hosted_rejoin(fabric.clone(), &hosted, algo, body)
    } else {
        run_hosted(fabric.clone(), &hosted, algo, body)
    };
    let report: Vec<(u32, u64)> = results
        .iter()
        .map(|(p, digest)| (p.index() as u32, *digest))
        .collect();
    if let Err(e) = coord.send_done(&report) {
        eprintln!("--socket-child node {}: report failed: {e}", env.node);
        return 1;
    }
    fabric.shutdown();
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_images_follow_packed_placement() {
        let plan = node_images(&placed(&Scenario::tiny()));
        assert_eq!(plan, vec![vec![1, 2], vec![3, 4]]);
    }

    #[test]
    fn scenario_and_algo_lookups_roundtrip() {
        assert!(Scenario::by_name("mini-2x4").is_some());
        assert!(Scenario::by_name("no-such").is_none());
        assert!(algo_by_name("reduce=Rabenseifner").is_some());
        assert!(algo_by_name("bogus").is_none());
    }
}
