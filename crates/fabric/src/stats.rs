//! Operation counters, split by memory-hierarchy level.
//!
//! The paper's §IV-A methodology is justified by *counting notifications*:
//! dissemination performs n⌈log₂ n⌉ of them, a centralized linear barrier
//! 2(n−1), and TDLB turns most of them intra-node. [`FabricStats`] lets the
//! test-suite and the EXP-A1 ablation assert those closed forms against the
//! actual traffic the algorithms generate.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic operation counters maintained by every fabric. All counters are
/// relaxed — they are diagnostics, not synchronization.
#[derive(Debug, Default)]
pub struct FabricStats {
    /// Payload puts to a target on the same node.
    pub puts_intra: AtomicU64,
    /// Payload puts to a target on another node.
    pub puts_inter: AtomicU64,
    /// Gets from a source on the same node.
    pub gets_intra: AtomicU64,
    /// Gets from a source on another node.
    pub gets_inter: AtomicU64,
    /// Flag notifications delivered within a node.
    pub flags_intra: AtomicU64,
    /// Flag notifications crossing nodes.
    pub flags_inter: AtomicU64,
    /// Blocking flag waits executed.
    pub flag_waits: AtomicU64,
    /// Remote atomic operations.
    pub amos: AtomicU64,
    /// Payload bytes moved within nodes.
    pub bytes_intra: AtomicU64,
    /// Payload bytes moved between nodes.
    pub bytes_inter: AtomicU64,
    /// Nonblocking puts injected (descriptor posted, payload possibly still
    /// in flight).
    pub puts_nb_injected: AtomicU64,
    /// Nonblocking puts whose payload has landed at the target. Always
    /// `≤ puts_nb_injected`; the gap is the in-flight window the pipelined
    /// collectives exploit.
    pub puts_nb_completed: AtomicU64,
    /// Wire frames written to peer processes (`SocketFabric` only; zero on
    /// in-process fabrics).
    pub wire_frames_tx: AtomicU64,
    /// Wire frames read from peer processes.
    pub wire_frames_rx: AtomicU64,
    /// Wire bytes written, including frame headers.
    pub wire_bytes_tx: AtomicU64,
    /// Wire bytes read, including frame headers.
    pub wire_bytes_rx: AtomicU64,
    /// Failed connect attempts that were retried (capped exponential
    /// backoff).
    pub wire_retries: AtomicU64,
    /// Connections that were only established after at least one failed
    /// attempt.
    pub wire_reconnects: AtomicU64,
    /// Simulator events scheduled (`SimFabric` only; zero elsewhere).
    pub sim_events_pushed: AtomicU64,
    /// Simulator events drained and applied.
    pub sim_events_popped: AtomicU64,
    /// High-water mark of the simulator's pending-event queue.
    pub sim_queue_hwm: AtomicU64,
    /// Images woken from a blocked flag wait by an applied event.
    pub sim_wakeups: AtomicU64,
    /// Commit turns granted by the conservative scheduler — the
    /// numerator of the simscale bench's simulated-ops/sec.
    pub sim_commits: AtomicU64,
    /// Active-message ops injected into the batching tier.
    pub ams_injected: AtomicU64,
    /// Batches handed to the fabric by the active-message tier. The ratio
    /// `ams_injected / am_batches_flushed` is the aggregation factor.
    pub am_batches_flushed: AtomicU64,
    /// User payload bytes carried by injected active messages (pure
    /// flag/amo ops carry zero) — the bytes-per-op numerator.
    pub am_payload_bytes: AtomicU64,
    /// Adjacent put+flag pairs fused into a single `PutFlag` op.
    pub am_fused: AtomicU64,
    /// Puts serviced through a peer's mapped shared-memory segment
    /// (`SocketFabric` intranode tier; zero elsewhere). Tracked separately
    /// from `puts_intra`/`puts_inter`: shm traffic crosses processes but
    /// never the wire.
    pub shm_puts: AtomicU64,
    /// Payload bytes moved through shared-memory segments (puts + gets).
    pub shm_bytes: AtomicU64,
    /// Flag adds and AMOs applied directly in a peer's shared flag/AMO
    /// table — the notifications that skipped the wire entirely.
    pub shm_flag_ops: AtomicU64,
}

/// A plain-data copy of [`FabricStats`] at one instant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Payload puts to a target on the same node.
    pub puts_intra: u64,
    /// Payload puts to a target on another node.
    pub puts_inter: u64,
    /// Gets from a source on the same node.
    pub gets_intra: u64,
    /// Gets from a source on another node.
    pub gets_inter: u64,
    /// Flag notifications delivered within a node.
    pub flags_intra: u64,
    /// Flag notifications crossing nodes.
    pub flags_inter: u64,
    /// Blocking flag waits executed.
    pub flag_waits: u64,
    /// Remote atomic operations.
    pub amos: u64,
    /// Payload bytes moved within nodes.
    pub bytes_intra: u64,
    /// Payload bytes moved between nodes.
    pub bytes_inter: u64,
    /// Nonblocking puts injected.
    pub puts_nb_injected: u64,
    /// Nonblocking puts completed.
    pub puts_nb_completed: u64,
    /// Wire frames written to peer processes.
    pub wire_frames_tx: u64,
    /// Wire frames read from peer processes.
    pub wire_frames_rx: u64,
    /// Wire bytes written, including frame headers.
    pub wire_bytes_tx: u64,
    /// Wire bytes read, including frame headers.
    pub wire_bytes_rx: u64,
    /// Failed connect attempts that were retried.
    pub wire_retries: u64,
    /// Connections established after at least one failed attempt.
    pub wire_reconnects: u64,
    /// Simulator events scheduled.
    pub sim_events_pushed: u64,
    /// Simulator events drained and applied.
    pub sim_events_popped: u64,
    /// High-water mark of the pending-event queue. Note this is a running
    /// maximum, not a monotonic counter: a snapshot delta reports how much
    /// the mark *rose* during the window, zero if it didn't.
    pub sim_queue_hwm: u64,
    /// Images woken from a blocked flag wait.
    pub sim_wakeups: u64,
    /// Commit turns granted by the conservative scheduler.
    pub sim_commits: u64,
    /// Active-message ops injected into the batching tier.
    pub ams_injected: u64,
    /// Batches handed to the fabric by the active-message tier.
    pub am_batches_flushed: u64,
    /// User payload bytes carried by injected active messages.
    pub am_payload_bytes: u64,
    /// Adjacent put+flag pairs fused into a single `PutFlag` op.
    pub am_fused: u64,
    /// Puts serviced through a peer's mapped shared-memory segment.
    pub shm_puts: u64,
    /// Payload bytes moved through shared-memory segments (puts + gets).
    pub shm_bytes: u64,
    /// Flag adds and AMOs applied directly in a shared flag/AMO table.
    pub shm_flag_ops: u64,
}

impl FabricStats {
    /// Capture the current counter values.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            puts_intra: self.puts_intra.load(Ordering::Relaxed),
            puts_inter: self.puts_inter.load(Ordering::Relaxed),
            gets_intra: self.gets_intra.load(Ordering::Relaxed),
            gets_inter: self.gets_inter.load(Ordering::Relaxed),
            flags_intra: self.flags_intra.load(Ordering::Relaxed),
            flags_inter: self.flags_inter.load(Ordering::Relaxed),
            flag_waits: self.flag_waits.load(Ordering::Relaxed),
            amos: self.amos.load(Ordering::Relaxed),
            bytes_intra: self.bytes_intra.load(Ordering::Relaxed),
            bytes_inter: self.bytes_inter.load(Ordering::Relaxed),
            puts_nb_injected: self.puts_nb_injected.load(Ordering::Relaxed),
            puts_nb_completed: self.puts_nb_completed.load(Ordering::Relaxed),
            wire_frames_tx: self.wire_frames_tx.load(Ordering::Relaxed),
            wire_frames_rx: self.wire_frames_rx.load(Ordering::Relaxed),
            wire_bytes_tx: self.wire_bytes_tx.load(Ordering::Relaxed),
            wire_bytes_rx: self.wire_bytes_rx.load(Ordering::Relaxed),
            wire_retries: self.wire_retries.load(Ordering::Relaxed),
            wire_reconnects: self.wire_reconnects.load(Ordering::Relaxed),
            sim_events_pushed: self.sim_events_pushed.load(Ordering::Relaxed),
            sim_events_popped: self.sim_events_popped.load(Ordering::Relaxed),
            sim_queue_hwm: self.sim_queue_hwm.load(Ordering::Relaxed),
            sim_wakeups: self.sim_wakeups.load(Ordering::Relaxed),
            sim_commits: self.sim_commits.load(Ordering::Relaxed),
            ams_injected: self.ams_injected.load(Ordering::Relaxed),
            am_batches_flushed: self.am_batches_flushed.load(Ordering::Relaxed),
            am_payload_bytes: self.am_payload_bytes.load(Ordering::Relaxed),
            am_fused: self.am_fused.load(Ordering::Relaxed),
            shm_puts: self.shm_puts.load(Ordering::Relaxed),
            shm_bytes: self.shm_bytes.load(Ordering::Relaxed),
            shm_flag_ops: self.shm_flag_ops.load(Ordering::Relaxed),
        }
    }

    /// Reset every counter to zero (between benchmark phases).
    pub fn reset(&self) {
        for c in [
            &self.puts_intra,
            &self.puts_inter,
            &self.gets_intra,
            &self.gets_inter,
            &self.flags_intra,
            &self.flags_inter,
            &self.flag_waits,
            &self.amos,
            &self.bytes_intra,
            &self.bytes_inter,
            &self.puts_nb_injected,
            &self.puts_nb_completed,
            &self.wire_frames_tx,
            &self.wire_frames_rx,
            &self.wire_bytes_tx,
            &self.wire_bytes_rx,
            &self.wire_retries,
            &self.wire_reconnects,
            &self.sim_events_pushed,
            &self.sim_events_popped,
            &self.sim_queue_hwm,
            &self.sim_wakeups,
            &self.sim_commits,
            &self.ams_injected,
            &self.am_batches_flushed,
            &self.am_payload_bytes,
            &self.am_fused,
            &self.shm_puts,
            &self.shm_bytes,
            &self.shm_flag_ops,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// Record one put of `bytes` bytes; `intra` selects the hierarchy level.
    #[inline]
    pub fn record_put(&self, intra: bool, bytes: usize) {
        if intra {
            self.puts_intra.fetch_add(1, Ordering::Relaxed);
            self.bytes_intra.fetch_add(bytes as u64, Ordering::Relaxed);
        } else {
            self.puts_inter.fetch_add(1, Ordering::Relaxed);
            self.bytes_inter.fetch_add(bytes as u64, Ordering::Relaxed);
        }
    }

    /// Record one get of `bytes` bytes.
    #[inline]
    pub fn record_get(&self, intra: bool, bytes: usize) {
        if intra {
            self.gets_intra.fetch_add(1, Ordering::Relaxed);
            self.bytes_intra.fetch_add(bytes as u64, Ordering::Relaxed);
        } else {
            self.gets_inter.fetch_add(1, Ordering::Relaxed);
            self.bytes_inter.fetch_add(bytes as u64, Ordering::Relaxed);
        }
    }

    /// Record the injection of one nonblocking put of `bytes` bytes (also
    /// counted as an ordinary put at its hierarchy level).
    #[inline]
    pub fn record_put_nb(&self, intra: bool, bytes: usize) {
        self.puts_nb_injected.fetch_add(1, Ordering::Relaxed);
        self.record_put(intra, bytes);
    }

    /// Record the completion (payload landed) of one nonblocking put.
    #[inline]
    pub fn record_put_nb_complete(&self) {
        self.puts_nb_completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one wire frame of `bytes` bytes written to a peer process.
    #[inline]
    pub fn record_wire_tx(&self, bytes: usize) {
        self.wire_frames_tx.fetch_add(1, Ordering::Relaxed);
        self.wire_bytes_tx
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Record one wire frame of `bytes` bytes read from a peer process.
    #[inline]
    pub fn record_wire_rx(&self, bytes: usize) {
        self.wire_frames_rx.fetch_add(1, Ordering::Relaxed);
        self.wire_bytes_rx
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Record one flag notification.
    #[inline]
    pub fn record_flag(&self, intra: bool) {
        if intra {
            self.flags_intra.fetch_add(1, Ordering::Relaxed);
        } else {
            self.flags_inter.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one simulator event scheduled; `queue_len` is the pending
    /// count right after the push (feeds the high-water mark).
    #[inline]
    pub fn record_sim_event_push(&self, queue_len: u64) {
        self.sim_events_pushed.fetch_add(1, Ordering::Relaxed);
        self.sim_queue_hwm.fetch_max(queue_len, Ordering::Relaxed);
    }

    /// Record one simulator event drained and applied.
    #[inline]
    pub fn record_sim_event_pop(&self) {
        self.sim_events_popped.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one image woken from a blocked flag wait.
    #[inline]
    pub fn record_sim_wakeup(&self) {
        self.sim_wakeups.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one commit turn granted.
    #[inline]
    pub fn record_sim_commit(&self) {
        self.sim_commits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one active-message op injected, carrying `payload_bytes`
    /// bytes of user payload.
    #[inline]
    pub fn record_am_inject(&self, payload_bytes: u64) {
        self.ams_injected.fetch_add(1, Ordering::Relaxed);
        self.am_payload_bytes
            .fetch_add(payload_bytes, Ordering::Relaxed);
    }

    /// Record one batch handed to the fabric.
    #[inline]
    pub fn record_am_flush(&self) {
        self.am_batches_flushed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one put+flag pair fused into a `PutFlag`.
    #[inline]
    pub fn record_am_fused(&self) {
        self.am_fused.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one put of `bytes` bytes serviced through a shared-memory
    /// segment.
    #[inline]
    pub fn record_shm_put(&self, bytes: usize) {
        self.shm_puts.fetch_add(1, Ordering::Relaxed);
        self.shm_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Record one get of `bytes` bytes serviced through a shared-memory
    /// segment.
    #[inline]
    pub fn record_shm_get(&self, bytes: usize) {
        self.shm_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Record one flag add or AMO applied in a shared flag/AMO table.
    #[inline]
    pub fn record_shm_flag(&self) {
        self.shm_flag_ops.fetch_add(1, Ordering::Relaxed);
    }
}

impl StatsSnapshot {
    /// Total notifications (flag adds) at any level.
    pub fn total_flags(&self) -> u64 {
        self.flags_intra + self.flags_inter
    }

    /// Total payload operations at any level.
    pub fn total_puts(&self) -> u64 {
        self.puts_intra + self.puts_inter
    }

    /// Component-wise difference `self - earlier` (counters are monotonic).
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        self.delta(earlier)
    }

    /// Component-wise difference `self - earlier`: the traffic between two
    /// snapshots of the same fabric. Also available as the `-` operator.
    pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        *self - *earlier
    }

    /// One-line summary for failure reports and fleet tables.
    pub fn render_brief(&self) -> String {
        format!(
            "puts {}/{} gets {}/{} flags {}/{} (intra/inter), amos {}, \
             bytes {}/{} (intra/inter), wire tx {} frames/{} B, \
             rx {} frames/{} B, retries {}, reconnects {}",
            self.puts_intra,
            self.puts_inter,
            self.gets_intra,
            self.gets_inter,
            self.flags_intra,
            self.flags_inter,
            self.amos,
            self.bytes_intra,
            self.bytes_inter,
            self.wire_frames_tx,
            self.wire_bytes_tx,
            self.wire_frames_rx,
            self.wire_bytes_rx,
            self.wire_retries,
            self.wire_reconnects
        )
    }
}

impl std::ops::Sub for StatsSnapshot {
    type Output = StatsSnapshot;

    fn sub(self, rhs: StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            puts_intra: self.puts_intra - rhs.puts_intra,
            puts_inter: self.puts_inter - rhs.puts_inter,
            gets_intra: self.gets_intra - rhs.gets_intra,
            gets_inter: self.gets_inter - rhs.gets_inter,
            flags_intra: self.flags_intra - rhs.flags_intra,
            flags_inter: self.flags_inter - rhs.flags_inter,
            flag_waits: self.flag_waits - rhs.flag_waits,
            amos: self.amos - rhs.amos,
            bytes_intra: self.bytes_intra - rhs.bytes_intra,
            bytes_inter: self.bytes_inter - rhs.bytes_inter,
            puts_nb_injected: self.puts_nb_injected - rhs.puts_nb_injected,
            puts_nb_completed: self.puts_nb_completed - rhs.puts_nb_completed,
            wire_frames_tx: self.wire_frames_tx - rhs.wire_frames_tx,
            wire_frames_rx: self.wire_frames_rx - rhs.wire_frames_rx,
            wire_bytes_tx: self.wire_bytes_tx - rhs.wire_bytes_tx,
            wire_bytes_rx: self.wire_bytes_rx - rhs.wire_bytes_rx,
            wire_retries: self.wire_retries - rhs.wire_retries,
            wire_reconnects: self.wire_reconnects - rhs.wire_reconnects,
            sim_events_pushed: self.sim_events_pushed - rhs.sim_events_pushed,
            sim_events_popped: self.sim_events_popped - rhs.sim_events_popped,
            sim_queue_hwm: self.sim_queue_hwm - rhs.sim_queue_hwm,
            sim_wakeups: self.sim_wakeups - rhs.sim_wakeups,
            sim_commits: self.sim_commits - rhs.sim_commits,
            ams_injected: self.ams_injected - rhs.ams_injected,
            am_batches_flushed: self.am_batches_flushed - rhs.am_batches_flushed,
            am_payload_bytes: self.am_payload_bytes - rhs.am_payload_bytes,
            am_fused: self.am_fused - rhs.am_fused,
            shm_puts: self.shm_puts - rhs.shm_puts,
            shm_bytes: self.shm_bytes - rhs.shm_bytes,
            shm_flag_ops: self.shm_flag_ops - rhs.shm_flag_ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let s = FabricStats::default();
        s.record_put(true, 100);
        s.record_put(false, 8);
        s.record_flag(true);
        s.record_flag(false);
        s.record_get(false, 64);
        let snap = s.snapshot();
        assert_eq!(snap.puts_intra, 1);
        assert_eq!(snap.puts_inter, 1);
        assert_eq!(snap.bytes_intra, 100);
        assert_eq!(snap.bytes_inter, 8 + 64);
        assert_eq!(snap.total_flags(), 2);
        assert_eq!(snap.total_puts(), 2);
    }

    #[test]
    fn nb_counters_track_injected_vs_completed() {
        let s = FabricStats::default();
        s.record_put_nb(false, 1024);
        s.record_put_nb(false, 1024);
        s.record_put_nb_complete();
        let snap = s.snapshot();
        assert_eq!(snap.puts_nb_injected, 2);
        assert_eq!(snap.puts_nb_completed, 1);
        assert_eq!(snap.puts_inter, 2, "nb puts also count as puts");
        assert_eq!(snap.bytes_inter, 2048);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn wire_counters_track_frames_and_bytes() {
        let s = FabricStats::default();
        s.record_wire_tx(64);
        s.record_wire_tx(16);
        s.record_wire_rx(9);
        s.wire_retries.fetch_add(3, Ordering::Relaxed);
        s.wire_reconnects.fetch_add(1, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.wire_frames_tx, 2);
        assert_eq!(snap.wire_bytes_tx, 80);
        assert_eq!(snap.wire_frames_rx, 1);
        assert_eq!(snap.wire_bytes_rx, 9);
        assert_eq!(snap.wire_retries, 3);
        assert_eq!(snap.wire_reconnects, 1);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn sim_counters_track_queue_and_scheduler() {
        let s = FabricStats::default();
        s.record_sim_event_push(1);
        s.record_sim_event_push(2);
        s.record_sim_event_pop();
        s.record_sim_event_push(2); // queue shrank and regrew: hwm stays 2
        s.record_sim_wakeup();
        s.record_sim_commit();
        s.record_sim_commit();
        let a = s.snapshot();
        assert_eq!(a.sim_events_pushed, 3);
        assert_eq!(a.sim_events_popped, 1);
        assert_eq!(a.sim_queue_hwm, 2);
        assert_eq!(a.sim_wakeups, 1);
        assert_eq!(a.sim_commits, 2);
        // Deltas (and the `-` operator) cover the sim counters too.
        s.record_sim_event_push(5);
        s.record_sim_commit();
        let d = s.snapshot() - a;
        assert_eq!(d.sim_events_pushed, 1);
        assert_eq!(d.sim_queue_hwm, 3, "delta reports the rise of the mark");
        assert_eq!(d.sim_commits, 1);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn am_counters_track_ops_batches_and_fusion() {
        let s = FabricStats::default();
        s.record_am_inject(8);
        s.record_am_inject(0);
        s.record_am_inject(64);
        s.record_am_flush();
        s.record_am_fused();
        let snap = s.snapshot();
        assert_eq!(snap.ams_injected, 3);
        assert_eq!(snap.am_batches_flushed, 1);
        assert_eq!(snap.am_payload_bytes, 72);
        assert_eq!(snap.am_fused, 1);
        // Deltas cover the AM counters too.
        s.record_am_inject(8);
        s.record_am_flush();
        let d = s.snapshot() - snap;
        assert_eq!(d.ams_injected, 1);
        assert_eq!(d.am_batches_flushed, 1);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn shm_counters_track_puts_gets_and_flag_ops() {
        let s = FabricStats::default();
        s.record_shm_put(64);
        s.record_shm_put(8);
        s.record_shm_get(32);
        s.record_shm_flag();
        s.record_shm_flag();
        let snap = s.snapshot();
        assert_eq!(snap.shm_puts, 2);
        assert_eq!(snap.shm_bytes, 64 + 8 + 32, "puts and gets share shm_bytes");
        assert_eq!(snap.shm_flag_ops, 2);
        assert_eq!(snap.puts_intra, 0, "shm ops stay off the level counters");
        assert_eq!(snap.total_puts(), 0);
        // Deltas cover the shm counters too.
        s.record_shm_put(8);
        let d = s.snapshot() - snap;
        assert_eq!(d.shm_puts, 1);
        assert_eq!(d.shm_bytes, 8);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn reset_clears_everything() {
        let s = FabricStats::default();
        s.record_put(true, 100);
        s.record_flag(false);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn since_subtracts() {
        let s = FabricStats::default();
        s.record_flag(true);
        let a = s.snapshot();
        s.record_flag(true);
        s.record_flag(false);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.flags_intra, 1);
        assert_eq!(d.flags_inter, 1);
    }

    #[test]
    fn sub_operator_matches_delta() {
        let s = FabricStats::default();
        s.record_put(true, 32);
        s.record_get(false, 8);
        let a = s.snapshot();
        s.record_put(true, 32);
        s.record_flag(false);
        let b = s.snapshot();
        assert_eq!(b - a, b.delta(&a));
        assert_eq!((b - a).puts_intra, 1);
        assert_eq!((b - a).flags_inter, 1);
        assert_eq!((b - a).bytes_intra, 32);
        assert_eq!(b - b, StatsSnapshot::default());
    }
}
