//! Hosted-image stepping: run many simulated images from one driver
//! thread.
//!
//! The threaded fabric ([`crate::sim::SimFabric`] + [`crate::spmd::run_spmd`])
//! dedicates an OS thread to every image, which tops out around a few
//! thousand images per process — far short of the fleet sizes the sharded
//! event core can simulate. This module adds a *cooperative* driver:
//! programs are expressed as resumable state machines ([`StepProgram`])
//! yielding one fabric op at a time ([`StepOp`]), and [`run_stepped`]
//! executes the whole fleet on the caller's thread by always advancing the
//! image that holds the commit turn (the scheduler argmin). A million
//! hosted images is then just a million small structs, not a million
//! stacks.
//!
//! # Schedule equivalence with the threaded driver
//!
//! Both drivers commit fabric ops in ascending `(time, prio, rank)` order
//! over post-chaos-charge keys, so they produce bit-identical virtual
//! times, flag values, and traces:
//!
//! - Turn-taking ops (put / flag-add / wait entry) charge their chaos
//!   delay when they become *pending* — exactly what the threaded
//!   `lock_turn` does on call entry — and commit only when the image is
//!   the scheduler argmin with no earlier event due. In the threaded
//!   driver an image whose charge has not landed yet can hold peers back
//!   for a moment of wall-clock time, but never changes who commits next:
//!   that is always the argmin of the *charged* keys, which is what this
//!   driver computes directly.
//! - Local ops (compute, retirement) touch only the issuing image's own
//!   clock and alive-set membership. The threaded driver applies them at
//!   an arbitrary wall-clock point; applying them at the argmin turn
//!   instead is observationally equivalent because they neither read nor
//!   reserve shared resources.
//!
//! The parity tests at the bottom hold `run_stepped` to
//! [`run_program_spmd`] (the same programs on real threads) with and
//! without chaos, and the sharded event core to the legacy global heap.

use crate::seg::FlagId;
use crate::sim::{SimCore, SimFabric};
use crate::spmd::run_spmd;
use crate::Fabric;
use caf_topology::ProcId;
use parking_lot::Mutex;
use std::sync::Arc;

/// One fabric operation yielded by a hosted image program.
///
/// The op set covers what the scale kernels need: bootstrap-segment puts,
/// flag notifications, threshold waits, compute blocks, and retirement.
/// Data puts address [`crate::bootstrap::SEG`] (the bootstrap segment) —
/// hosted programs share it the way bootstrap-time runtime code does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOp {
    /// Blocking 8-byte put of `val` into `dst`'s bootstrap segment.
    Put {
        /// Destination image rank.
        dst: usize,
        /// Byte offset inside the bootstrap segment.
        offset: usize,
        /// Value written (native-endian).
        val: u64,
    },
    /// Add `delta` to `dst`'s accumulating sync flag.
    FlagAdd {
        /// Target image rank.
        dst: usize,
        /// Which bootstrap flag.
        flag: FlagId,
        /// Increment.
        delta: u64,
    },
    /// Block until the local flag reaches `at_least` (cumulative).
    WaitGe {
        /// Which bootstrap flag.
        flag: FlagId,
        /// Cumulative threshold.
        at_least: u64,
    },
    /// Spin the local clock forward by `ns` of modeled computation.
    Compute {
        /// Unscaled compute nanoseconds.
        ns: u64,
    },
    /// Retire this image; the program yields nothing further.
    Done,
}

/// A resumable hosted-image program: a state machine that yields the
/// image's next fabric op each time it is resumed. After yielding
/// [`StepOp::Done`] it is never polled again.
pub trait StepProgram {
    /// The image's next operation.
    fn next(&mut self) -> StepOp;
}

/// What [`run_stepped`] simulated, for throughput accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SteppedReport {
    /// Ops committed through the scheduler (puts, flag-adds, wait entries).
    pub committed_ops: u64,
    /// Local ops applied (compute blocks and retirements).
    pub local_ops: u64,
    /// Simulated makespan: the maximum image clock at quiescence.
    pub max_time_ns: u64,
}

impl SteppedReport {
    /// Every simulated operation, the numerator of simulated-ops/sec.
    pub fn total_ops(&self) -> u64 {
        self.committed_ops + self.local_ops
    }
}

/// Driver-side state of one hosted image.
enum Host {
    /// Next op fetched and (if turn-taking) chaos-charged; waiting for the
    /// commit turn. `my_op` is the chaos op index the charge was keyed by.
    Pending { op: StepOp, my_op: u64 },
    /// Parked in the core as Blocked on a flag wait entered at `t_entry`.
    Waiting {
        flag: FlagId,
        at_least: u64,
        t_entry: u64,
    },
    /// Retired.
    Done,
}

/// Fetch image `me`'s next op and charge its chaos delay if it is a
/// turn-taking op — the stepped twin of `lock_turn`'s call-entry charge.
fn admit<P: StepProgram>(
    fab: &SimFabric,
    core: &mut SimCore,
    nodes: &[usize],
    progs: &mut [P],
    hosts: &mut [Host],
    me: usize,
) {
    let op = progs[me].next();
    let mut my_op = 0;
    let turn_taking = matches!(
        op,
        StepOp::Put { .. } | StepOp::FlagAdd { .. } | StepOp::WaitGe { .. }
    );
    match &fab.cfg.chaos {
        Some(ch) if turn_taking => {
            let o = core.chaos_ops[me];
            my_op = o;
            core.chaos_ops[me] += 1;
            let charged = core.time[me] + ch.op_delay(me, nodes[me], o);
            core.set_time(me, charged);
        }
        _ => {}
    }
    hosts[me] = Host::Pending { op, my_op };
}

/// Run one [`StepProgram`] per image to completion on the calling thread,
/// committing ops in exact virtual-time order. Panics on simulated
/// deadlock or a chaos kill, with the same report the threaded driver
/// produces.
pub fn run_stepped<P: StepProgram>(fab: &SimFabric, mut progs: Vec<P>) -> SteppedReport {
    let n = fab.n_images();
    assert_eq!(progs.len(), n, "one program per image");
    let nodes: Vec<usize> = (0..n)
        .map(|i| fab.image_map().node_of(ProcId(i)).index())
        .collect();
    let mut hosts: Vec<Host> = (0..n).map(|_| Host::Done).collect();
    let mut live = n;
    let mut report = SteppedReport::default();
    let mut core = fab.core.lock();
    for me in 0..n {
        admit(fab, &mut core, &nodes, &mut progs, &mut hosts, me);
    }
    let mut woken = Vec::new();
    loop {
        if let Some(msg) = &core.poisoned {
            panic!("{msg}");
        }
        // Drain to a fixpoint: admitting a woken image charges its next
        // op (raising its clock, and with it the due-bound), which can
        // make further events due — exactly the re-check the threaded
        // driver's `may_commit` gate performs before every grant.
        loop {
            woken.clear();
            core.apply_due_events(&mut woken);
            if woken.is_empty() {
                break;
            }
            for &w in &woken {
                let Host::Waiting {
                    flag,
                    at_least,
                    t_entry,
                } = hosts[w]
                else {
                    unreachable!("woken image {w} was not parked on a wait");
                };
                fab.record_wait_span(&core, w, t_entry, flag, at_least);
                admit(fab, &mut core, &nodes, &mut progs, &mut hosts, w);
            }
        }
        let Some(me) = core.next_eligible() else {
            if live == 0 {
                break;
            }
            // apply_due_events drains *everything* once nobody is alive,
            // so an empty scheduler here is a true global deadlock.
            let msg = core.deadlock_report();
            core.poisoned = Some(msg.clone());
            panic!("{msg}");
        };
        let Host::Pending { op, my_op } = hosts[me] else {
            unreachable!("eligible image {me} has no pending op");
        };
        match op {
            StepOp::Put { dst, offset, val } => {
                grant(&mut core, me, my_op);
                report.committed_ops += 1;
                fab.put_body(
                    &mut core,
                    me,
                    dst,
                    crate::bootstrap::SEG,
                    offset,
                    &val.to_ne_bytes(),
                );
                admit(fab, &mut core, &nodes, &mut progs, &mut hosts, me);
            }
            StepOp::FlagAdd { dst, flag, delta } => {
                grant(&mut core, me, my_op);
                report.committed_ops += 1;
                fab.flag_add_body(&mut core, me, dst, flag, delta);
                admit(fab, &mut core, &nodes, &mut progs, &mut hosts, me);
            }
            StepOp::WaitGe { flag, at_least } => {
                grant(&mut core, me, my_op);
                report.committed_ops += 1;
                let t_entry = core.time[me];
                if fab.flag_wait_enter(&mut core, me, flag, at_least) {
                    admit(fab, &mut core, &nodes, &mut progs, &mut hosts, me);
                } else {
                    hosts[me] = Host::Waiting {
                        flag,
                        at_least,
                        t_entry,
                    };
                }
            }
            StepOp::Compute { ns } => {
                report.local_ops += 1;
                fab.compute_body(&mut core, me, ns);
                admit(fab, &mut core, &nodes, &mut progs, &mut hosts, me);
            }
            StepOp::Done => {
                report.local_ops += 1;
                core.set_done(me);
                hosts[me] = Host::Done;
                live -= 1;
            }
        }
    }
    report.max_time_ns = core.time.iter().copied().max().unwrap_or(0);
    report
}

/// Commit-turn bookkeeping; a chaos kill poisons the core and panics,
/// matching the threaded driver's behavior.
fn grant(core: &mut SimCore, me: usize, my_op: u64) {
    if let Err(msg) = core.grant_commit(me, my_op) {
        panic!("{msg}");
    }
}

/// The threaded reference for [`run_stepped`]: execute the same programs
/// with one OS thread per image through the public [`Fabric`] interface.
/// Only viable at thread-friendly fleet sizes; the parity tests use it to
/// hold the stepped driver to the threaded schedule bit-for-bit.
pub fn run_program_spmd<P>(fab: Arc<SimFabric>, progs: Vec<P>)
where
    P: StepProgram + Send + 'static,
{
    assert_eq!(progs.len(), fab.n_images(), "one program per image");
    let slots: Arc<Vec<Mutex<Option<P>>>> =
        Arc::new(progs.into_iter().map(|p| Mutex::new(Some(p))).collect());
    let f: Arc<SimFabric> = Arc::clone(&fab);
    run_spmd(fab, move |me| {
        let mut prog = slots[me.index()]
            .lock()
            .take()
            .expect("one thread per image");
        loop {
            match prog.next() {
                StepOp::Put { dst, offset, val } => f.put(
                    me,
                    ProcId(dst),
                    crate::bootstrap::SEG,
                    offset,
                    &val.to_ne_bytes(),
                ),
                StepOp::FlagAdd { dst, flag, delta } => f.flag_add(me, ProcId(dst), flag, delta),
                StepOp::WaitGe { flag, at_least } => f.flag_wait_ge(me, flag, at_least),
                StepOp::Compute { ns } => f.compute(me, ns),
                StepOp::Done => {
                    f.image_done(me);
                    return;
                }
            }
        }
    });
}

/// Collective kernels as hosted-image state machines — the workloads of
/// the `exp_s1_simscale` bench. They mirror `caf-collectives`' shapes
/// (dissemination barrier, binomial trees) over the bootstrap resources,
/// re-deriving the tree helpers locally because the fabric crate sits
/// *below* the collectives crate in the dependency order.
pub mod kernels {
    use super::{StepOp, StepProgram};
    use crate::seg::FlagId;

    /// Bootstrap flag used by [`DisseminationBarrier`].
    pub const BARRIER_FLAG: FlagId = FlagId(0);
    /// Bootstrap flag used by [`BinomialBroadcast`].
    pub const BCAST_FLAG: FlagId = FlagId(1);
    /// Bootstrap flag used by [`BinomialReduce`].
    pub const REDUCE_FLAG: FlagId = FlagId(2);

    /// ⌈log₂ n⌉ for n ≥ 1 (mirrors `caf_collectives::util::ceil_log2`).
    fn ceil_log2(n: usize) -> usize {
        assert!(n >= 1);
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }

    /// Parent of rank `v` (> 0) in the binomial tree rooted at 0: clear
    /// the highest set bit (mirrors `caf_collectives::util`).
    fn binomial_parent(v: usize) -> usize {
        debug_assert!(v > 0);
        v & !(1 << (usize::BITS as usize - 1 - v.leading_zeros() as usize))
    }

    /// Children of rank `v` in a binomial tree over `n` ranks, in send
    /// order (closest subtree first); child `v + 2^k` exists for every
    /// `2^k > v` with `v + 2^k < n` (mirrors `caf_collectives::util`).
    fn binomial_children(v: usize, n: usize) -> Vec<usize> {
        debug_assert!(v < n);
        let mut k = if v == 0 {
            0
        } else {
            usize::BITS as usize - v.leading_zeros() as usize
        };
        let mut out = Vec::new();
        while v + (1 << k) < n {
            out.push(v + (1 << k));
            k += 1;
            if 1usize << k == 0 {
                break;
            }
        }
        out
    }

    /// Dissemination barrier over [`BARRIER_FLAG`], `epochs` times. Round
    /// `k` notifies `(me + 2^k) mod n` and waits for the cumulative count
    /// `epoch * rounds + k + 1` — every image receives exactly one
    /// notification per round, so thresholds never reset.
    pub struct DisseminationBarrier {
        me: usize,
        n: usize,
        rounds: usize,
        epochs: u64,
        epoch: u64,
        round: usize,
        /// False = the round's notify is next; true = its wait is next.
        waiting: bool,
    }

    impl DisseminationBarrier {
        /// A barrier program for image `me` of `n`, run `epochs` times.
        pub fn new(me: usize, n: usize, epochs: u64) -> Self {
            Self {
                me,
                n,
                rounds: ceil_log2(n),
                epochs,
                epoch: 0,
                round: 0,
                waiting: false,
            }
        }
    }

    impl StepProgram for DisseminationBarrier {
        fn next(&mut self) -> StepOp {
            if self.epoch == self.epochs || self.rounds == 0 {
                return StepOp::Done;
            }
            if !self.waiting {
                self.waiting = true;
                let dst = (self.me + (1 << self.round)) % self.n;
                StepOp::FlagAdd {
                    dst,
                    flag: BARRIER_FLAG,
                    delta: 1,
                }
            } else {
                self.waiting = false;
                let at_least = self.epoch * self.rounds as u64 + self.round as u64 + 1;
                self.round += 1;
                if self.round == self.rounds {
                    self.round = 0;
                    self.epoch += 1;
                }
                StepOp::WaitGe {
                    flag: BARRIER_FLAG,
                    at_least,
                }
            }
        }
    }

    /// Per-epoch phase of a broadcast image: waiting for the payload from
    /// the parent, or forwarding to child `idx`.
    enum BcastPhase {
        Wait,
        /// `(child index, payload already put — flag-add is next)`.
        Child(usize, bool),
    }

    /// Binomial-tree broadcast rooted at image 0, `epochs` times: each
    /// non-root waits for [`BCAST_FLAG`] ≥ epoch+1, then every image puts
    /// the 8-byte payload to each child (offset 0) and notifies it.
    pub struct BinomialBroadcast {
        me: usize,
        children: Vec<usize>,
        epochs: u64,
        epoch: u64,
        phase: BcastPhase,
    }

    impl BinomialBroadcast {
        /// A broadcast program for image `me` of `n`, run `epochs` times.
        pub fn new(me: usize, n: usize, epochs: u64) -> Self {
            Self {
                me,
                children: binomial_children(me, n),
                epochs,
                epoch: 0,
                phase: if me == 0 {
                    BcastPhase::Child(0, false)
                } else {
                    BcastPhase::Wait
                },
            }
        }

        fn advance_epoch(&mut self) {
            self.epoch += 1;
            self.phase = if self.me == 0 {
                BcastPhase::Child(0, false)
            } else {
                BcastPhase::Wait
            };
        }
    }

    impl StepProgram for BinomialBroadcast {
        fn next(&mut self) -> StepOp {
            loop {
                if self.epoch == self.epochs {
                    return StepOp::Done;
                }
                match self.phase {
                    BcastPhase::Wait => {
                        self.phase = BcastPhase::Child(0, false);
                        return StepOp::WaitGe {
                            flag: BCAST_FLAG,
                            at_least: self.epoch + 1,
                        };
                    }
                    BcastPhase::Child(idx, sent_payload) => {
                        if idx == self.children.len() {
                            self.advance_epoch();
                            continue;
                        }
                        let dst = self.children[idx];
                        if !sent_payload {
                            self.phase = BcastPhase::Child(idx, true);
                            return StepOp::Put {
                                dst,
                                offset: 0,
                                val: self.epoch + 1,
                            };
                        }
                        self.phase = BcastPhase::Child(idx + 1, false);
                        return StepOp::FlagAdd {
                            dst,
                            flag: BCAST_FLAG,
                            delta: 1,
                        };
                    }
                }
            }
        }
    }

    /// Per-epoch phase of a reduce image: waiting for all children, putting
    /// the partial to the parent, or notifying the parent.
    enum ReducePhase {
        Wait,
        PutUp,
        NotifyUp,
    }

    /// Binomial-tree reduction to image 0, `epochs` times: each parent
    /// waits on [`REDUCE_FLAG`] for the cumulative arrival count of all
    /// its children, then each non-root puts its 8-byte partial into its
    /// per-child slot (`child_index * 8`) in the parent's bootstrap
    /// segment and notifies it. A tree node has at most ⌈log₂ n⌉
    /// children, so the slots fit any bootstrap segment of ≥ 4 slots up
    /// to astronomically large fleets.
    pub struct BinomialReduce {
        me: usize,
        parent: usize,
        /// My position among the parent's children (slot index).
        child_index: usize,
        n_children: u64,
        epochs: u64,
        epoch: u64,
        phase: ReducePhase,
    }

    impl BinomialReduce {
        /// A reduce program for image `me` of `n`, run `epochs` times.
        pub fn new(me: usize, n: usize, epochs: u64) -> Self {
            let n_children = binomial_children(me, n).len() as u64;
            let (parent, child_index) = if me == 0 {
                (0, 0)
            } else {
                let p = binomial_parent(me);
                let idx = binomial_children(p, n)
                    .iter()
                    .position(|&c| c == me)
                    .expect("me is a child of its parent");
                (p, idx)
            };
            Self {
                me,
                parent,
                child_index,
                n_children,
                epochs,
                epoch: 0,
                phase: if n_children > 0 {
                    ReducePhase::Wait
                } else {
                    ReducePhase::PutUp
                },
            }
        }

        fn advance_epoch(&mut self) {
            self.epoch += 1;
            self.phase = if self.n_children > 0 {
                ReducePhase::Wait
            } else {
                ReducePhase::PutUp
            };
        }
    }

    impl StepProgram for BinomialReduce {
        fn next(&mut self) -> StepOp {
            loop {
                if self.epoch == self.epochs {
                    return StepOp::Done;
                }
                match self.phase {
                    ReducePhase::Wait => {
                        self.phase = ReducePhase::PutUp;
                        return StepOp::WaitGe {
                            flag: REDUCE_FLAG,
                            at_least: (self.epoch + 1) * self.n_children,
                        };
                    }
                    ReducePhase::PutUp => {
                        if self.me == 0 {
                            self.advance_epoch();
                            continue;
                        }
                        self.phase = ReducePhase::NotifyUp;
                        return StepOp::Put {
                            dst: self.parent,
                            offset: self.child_index * 8,
                            val: self.epoch + 1,
                        };
                    }
                    ReducePhase::NotifyUp => {
                        self.advance_epoch();
                        return StepOp::FlagAdd {
                            dst: self.parent,
                            flag: REDUCE_FLAG,
                            delta: 1,
                        };
                    }
                }
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn tree_helpers_match_collectives_shapes() {
            assert_eq!(ceil_log2(1), 0);
            assert_eq!(ceil_log2(8), 3);
            assert_eq!(ceil_log2(9), 4);
            assert_eq!(binomial_children(0, 8), vec![1, 2, 4]);
            assert_eq!(binomial_children(1, 8), vec![3, 5]);
            assert_eq!(binomial_children(4, 8), Vec::<usize>::new());
            for n in 1..40 {
                let mut indeg = vec![0usize; n];
                for v in 0..n {
                    for c in binomial_children(v, n) {
                        assert_eq!(binomial_parent(c), v);
                        indeg[c] += 1;
                    }
                }
                for (v, d) in indeg.iter().enumerate() {
                    assert_eq!(*d, usize::from(v != 0), "rank {v} of {n}");
                }
            }
        }

        #[test]
        fn barrier_program_yields_notify_wait_pairs() {
            let mut p = DisseminationBarrier::new(1, 4, 2);
            let mut ops = Vec::new();
            loop {
                let op = p.next();
                ops.push(op);
                if op == StepOp::Done {
                    break;
                }
            }
            // 2 epochs x 2 rounds x (notify + wait) + Done.
            assert_eq!(ops.len(), 9);
            // Round 0 from rank 1 of 4 notifies (1 + 2^0) % 4 = 2.
            assert_eq!(
                ops[0],
                StepOp::FlagAdd {
                    dst: 2,
                    flag: BARRIER_FLAG,
                    delta: 1
                }
            );
            assert_eq!(
                ops[1],
                StepOp::WaitGe {
                    flag: BARRIER_FLAG,
                    at_least: 1
                }
            );
            // Second epoch's thresholds are cumulative.
            assert_eq!(
                ops[5],
                StepOp::WaitGe {
                    flag: BARRIER_FLAG,
                    at_least: 3
                }
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::kernels::{BinomialBroadcast, BinomialReduce, DisseminationBarrier};
    use super::*;
    use crate::sim::{SimConfig, SimFabric};
    use caf_topology::{presets, ImageMap, Placement, SoftwareOverheads};

    fn fabric(images: usize, chaos_seed: Option<u64>, legacy_queue: bool) -> Arc<SimFabric> {
        let map = ImageMap::new(
            presets::mini(2, 4),
            images,
            &Placement::Block { per_node: 4 },
        );
        SimFabric::new(
            map,
            SimConfig {
                cost: presets::whale_cost(),
                overheads: SoftwareOverheads::NONE,
                chaos: chaos_seed.map(crate::chaos::ChaosConfig::from_seed),
                legacy_queue,
                ..SimConfig::default()
            },
        )
    }

    /// All three kernels back to back, as one program per image.
    fn mixed_programs(n: usize, epochs: u64) -> Vec<Chained> {
        (0..n)
            .map(|me| Chained {
                stages: vec![
                    Box::new(DisseminationBarrier::new(me, n, epochs)),
                    Box::new(BinomialBroadcast::new(me, n, epochs)),
                    Box::new(BinomialReduce::new(me, n, epochs)),
                ],
                at: 0,
            })
            .collect()
    }

    /// Runs a list of programs in sequence (Done of one starts the next).
    struct Chained {
        stages: Vec<Box<dyn StepProgram + Send>>,
        at: usize,
    }

    impl StepProgram for Chained {
        fn next(&mut self) -> StepOp {
            while self.at < self.stages.len() {
                match self.stages[self.at].next() {
                    StepOp::Done => self.at += 1,
                    op => return op,
                }
            }
            StepOp::Done
        }
    }

    fn final_times(fab: &SimFabric) -> Vec<u64> {
        (0..fab.n_images()).map(|i| fab.now_ns(ProcId(i))).collect()
    }

    #[test]
    fn stepped_matches_threaded_bit_for_bit() {
        for chaos_seed in [None, Some(3), Some(11)] {
            let f_threaded = fabric(8, chaos_seed, false);
            run_program_spmd(Arc::clone(&f_threaded), mixed_programs(8, 3));
            let f_stepped = fabric(8, chaos_seed, false);
            let report = run_stepped(&f_stepped, mixed_programs(8, 3));
            {
                let lt = f_threaded.core.lock().commit_log.clone();
                let ls = f_stepped.core.lock().commit_log.clone();
                for (k, (a, b)) in lt.iter().zip(ls.iter()).enumerate() {
                    assert_eq!(
                        a,
                        b,
                        "commit #{k} diverged (chaos {chaos_seed:?}): \
                         threaded {a:?} vs stepped {b:?}\n\
                         threaded tail: {:?}\nstepped tail: {:?}",
                        &lt[k..(k + 8).min(lt.len())],
                        &ls[k..(k + 8).min(ls.len())]
                    );
                }
                assert_eq!(lt.len(), ls.len(), "commit counts (chaos {chaos_seed:?})");
            }
            assert_eq!(
                final_times(&f_stepped),
                final_times(&f_threaded),
                "stepped vs threaded virtual times diverged (chaos {chaos_seed:?})"
            );
            assert_eq!(
                report.max_time_ns,
                f_threaded.max_time_ns(),
                "makespan diverged (chaos {chaos_seed:?})"
            );
            assert!(report.committed_ops > 0 && report.local_ops > 0);
        }
    }

    #[test]
    fn stepped_legacy_and_sharded_queues_agree() {
        for chaos_seed in [None, Some(29)] {
            let f_legacy = fabric(8, chaos_seed, true);
            let r_legacy = run_stepped(&f_legacy, mixed_programs(8, 3));
            let f_sharded = fabric(8, chaos_seed, false);
            let r_sharded = run_stepped(&f_sharded, mixed_programs(8, 3));
            assert_eq!(final_times(&f_legacy), final_times(&f_sharded));
            assert_eq!(r_legacy, r_sharded);
        }
    }

    #[test]
    fn stepped_run_is_deterministic() {
        let r1 = run_stepped(&fabric(8, Some(7), false), mixed_programs(8, 2));
        let t1 = {
            let f = fabric(8, Some(7), false);
            run_stepped(&f, mixed_programs(8, 2));
            final_times(&f)
        };
        let f2 = fabric(8, Some(7), false);
        let r2 = run_stepped(&f2, mixed_programs(8, 2));
        assert_eq!(r1, r2);
        assert_eq!(t1, final_times(&f2));
    }

    #[test]
    fn stepped_deadlock_panics_with_report() {
        struct Stuck;
        impl StepProgram for Stuck {
            fn next(&mut self) -> StepOp {
                StepOp::WaitGe {
                    flag: kernels::BARRIER_FLAG,
                    at_least: 1,
                }
            }
        }
        let f = fabric(2, None, false);
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_stepped(&f, vec![Stuck, Stuck]);
        }));
        let msg = *out
            .expect_err("must deadlock")
            .downcast::<String>()
            .unwrap();
        assert!(msg.contains("deadlock"), "got: {msg}");
    }

    #[test]
    fn hosted_fleet_larger_than_sane_thread_counts() {
        // 4096 hosted images on one thread: far past what run_spmd should
        // be asked to do, trivial for the stepped driver.
        let n = 4096;
        let map = ImageMap::new(
            presets::mini(8, 512),
            n,
            &Placement::Block { per_node: 512 },
        );
        let f = SimFabric::new(
            map,
            SimConfig {
                cost: presets::whale_cost(),
                overheads: SoftwareOverheads::NONE,
                bootstrap_slots: Some(4),
                ..SimConfig::default()
            },
        );
        let progs: Vec<_> = (0..n)
            .map(|me| DisseminationBarrier::new(me, n, 2))
            .collect();
        let report = run_stepped(&f, progs);
        // 2 epochs x ceil_log2(4096)=12 rounds x (notify + wait) per image.
        assert_eq!(report.committed_ops, (n as u64) * 2 * 12 * 2);
        assert_eq!(report.local_ops, n as u64);
        assert!(report.max_time_ns > 0);
    }
}
