//! The differential-oracle runner: execute one SPMD program under the
//! default simulator (the oracle), under chaos × seeds (optionally with
//! injected faults), and under the real-thread fabric; diff the outputs;
//! shrink any failing chaos configuration to a minimal one; render a
//! replayable report.

use crate::scenario::Scenario;
use caf_collectives::CollectiveConfig;
use caf_fabric::ChaosConfig;
use caf_runtime::{run, FabricChoice, ImageCtx, RunConfig};
use caf_topology::Placement;
use caf_trace::Tracer;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// An SPMD program under test: one closure, run on every image, whose
/// per-image `u64` result (typically a digest) is what the oracle diffs.
pub type Program = Arc<dyn Fn(&mut ImageCtx) -> u64 + Send + Sync>;

/// Sweep options for [`check_program`].
#[derive(Clone, Debug)]
pub struct CheckOptions {
    /// Chaos seeds to explore (each runs once, via
    /// [`ChaosConfig::from_seed`]). Overridden by `CAF_CHECK_SEED`.
    pub seeds: Vec<u64>,
    /// Layer fault injection (stall / slow node / delayed + duplicated
    /// completions) onto every third seed.
    pub faults: bool,
    /// Also run the program on the real-thread fabric and diff it.
    pub threads: bool,
    /// Events per image in the failure report's trace window.
    pub trace_window: usize,
}

impl CheckOptions {
    /// `n` seeds starting at `base`, faults on, threads on.
    pub fn sweep(base: u64, n: usize) -> Self {
        Self {
            seeds: (0..n as u64).map(|k| base + k).collect(),
            faults: true,
            threads: true,
            trace_window: 5,
        }
    }
}

/// Everything a caller needs to reproduce and fix a divergence.
#[derive(Debug)]
pub struct Failure {
    /// Scenario label.
    pub scenario: String,
    /// Algorithm-matrix cell label.
    pub algo: String,
    /// Which run diverged ("oracle", "chaos seed N", "threads").
    pub kind: String,
    /// The replayable seed, for chaos runs.
    pub seed: Option<u64>,
    /// Greedily shrunk minimal failing chaos configuration.
    pub minimal: Option<ChaosConfig>,
    /// Output diff or panic message.
    pub detail: String,
    /// Recent per-image events of the failing run (needs `trace`).
    pub trace_window: String,
}

impl Failure {
    /// Multi-line human-readable report.
    pub fn render(&self) -> String {
        let mut s = format!(
            "caf-check FAILURE: scenario {}, algos {}, run {}\n  {}\n",
            self.scenario,
            self.algo,
            self.kind,
            self.detail.replace('\n', "\n  "),
        );
        if let Some(seed) = self.seed {
            s.push_str(&format!(
                "  replay: CAF_CHECK_SEED={seed} cargo xtask check --quick\n"
            ));
        }
        if let Some(min) = &self.minimal {
            s.push_str(&format!("  minimal failing chaos config: {min:?}\n"));
        }
        if !self.trace_window.is_empty() {
            s.push_str("  recent events of the failing run:\n");
            s.push_str(&self.trace_window);
        }
        s
    }
}

/// Counts from a clean sweep of one (scenario, algorithm) cell.
#[derive(Clone, Copy, Debug, Default)]
pub struct CheckReport {
    /// Total program executions (oracle + chaos + threads).
    pub runs: usize,
    /// How many of them ran under a chaos schedule.
    pub chaos_runs: usize,
    /// How many chaos runs carried injected faults.
    pub fault_runs: usize,
}

/// Which fabric/perturbation one execution uses.
#[derive(Clone, Debug)]
enum Spec {
    Sim(Option<ChaosConfig>),
    /// The simulator with the pre-scale O(n)-scan scheduler and global
    /// event heap ([`caf_fabric::SimConfig::legacy_queue`], also reachable
    /// via `CAF_SIM_LEGACY_QUEUE=1`) — the comparison basis for the
    /// sharded event core.
    SimLegacy(Option<ChaosConfig>),
    Threads,
}

/// Execute `prog` once under `spec`; panics (including simulator deadlock
/// reports) become `Err(message)` so every injected-fault run terminates
/// the sweep loop either way.
fn run_once(
    scn: &Scenario,
    algo: CollectiveConfig,
    spec: &Spec,
    prog: &Program,
    tracer: Tracer,
) -> Result<Vec<u64>, String> {
    let fabric = match spec {
        Spec::Sim(chaos) => FabricChoice::Sim(caf_fabric::SimConfig {
            chaos: *chaos,
            tracer,
            ..caf_fabric::SimConfig::default()
        }),
        Spec::SimLegacy(chaos) => FabricChoice::Sim(caf_fabric::SimConfig {
            chaos: *chaos,
            tracer,
            legacy_queue: true,
            ..caf_fabric::SimConfig::default()
        }),
        Spec::Threads => FabricChoice::Threads(caf_fabric::ThreadConfig {
            tracer,
            ..caf_fabric::ThreadConfig::default()
        }),
    };
    let cfg = RunConfig {
        machine: scn.machine.clone(),
        images: scn.images,
        placement: Placement::Packed,
        fabric,
        collectives: algo,
    };
    let prog = prog.clone();
    catch_unwind(AssertUnwindSafe(move || run(cfg, move |img| prog(img)))).map_err(|payload| {
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "non-string panic payload".into())
    })
}

/// `None` when `got` matches the oracle; otherwise a short description of
/// the divergence (panic message, length mismatch, or the first differing
/// images). Shared with the socket backend column.
pub(crate) fn diff(oracle: &[u64], got: &Result<Vec<u64>, String>) -> Option<String> {
    let got = match got {
        Err(msg) => return Some(format!("panicked: {msg}")),
        Ok(v) => v,
    };
    if got.len() != oracle.len() {
        return Some(format!(
            "result count mismatch: oracle {}, got {}",
            oracle.len(),
            got.len()
        ));
    }
    let bad: Vec<String> = oracle
        .iter()
        .zip(got)
        .enumerate()
        .filter(|(_, (a, b))| a != b)
        .take(4)
        .map(|(i, (a, b))| format!("image {}: oracle {a:#018x}, got {b:#018x}", i + 1))
        .collect();
    if bad.is_empty() {
        None
    } else {
        Some(format!("output mismatch\n{}", bad.join("\n")))
    }
}

/// The fault layer for seed index `idx`: deterministic from the seed, one
/// of four fault families.
fn with_faults(mut chaos: ChaosConfig, seed: u64, images: usize, nodes: usize) -> ChaosConfig {
    match seed % 4 {
        0 => {
            chaos.stalled_image = Some((seed / 4) as usize % images);
            chaos.stall_ns = 25_000;
        }
        1 => {
            chaos.slow_node = Some((seed / 4) as usize % nodes.max(1));
            chaos.slow_node_ns = 3_000;
        }
        2 => chaos.completion_delay_ns = 8_000,
        _ => chaos.duplicate_completions = true,
    }
    chaos
}

/// Greedy shrink: repeatedly try to disable or halve chaos knobs while
/// the configuration still fails against the oracle; returns the last
/// failing configuration (a local minimum).
fn shrink(
    scn: &Scenario,
    algo: CollectiveConfig,
    prog: &Program,
    oracle: &[u64],
    failing: ChaosConfig,
) -> ChaosConfig {
    type Step = fn(&mut ChaosConfig);
    let steps: &[Step] = &[
        |c| {
            c.stalled_image = None;
            c.stall_ns = 0;
        },
        |c| {
            c.slow_node = None;
            c.slow_node_ns = 0;
        },
        |c| c.duplicate_completions = false,
        |c| c.completion_delay_ns = 0,
        |c| c.pct_interval = 0,
        |c| c.reorder = false,
        |c| c.net_jitter_ns = 0,
        |c| c.cpu_jitter_ns = 0,
        |c| c.net_jitter_ns /= 2,
        |c| c.cpu_jitter_ns /= 2,
    ];
    let still_fails = |c: &ChaosConfig| {
        let got = run_once(scn, algo, &Spec::Sim(Some(*c)), prog, Tracer::off());
        diff(oracle, &got).is_some()
    };
    let mut cur = failing;
    for _pass in 0..6 {
        let mut progressed = false;
        for step in steps {
            let mut cand = cur;
            step(&mut cand);
            if cand != cur && still_fails(&cand) {
                cur = cand;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    cur
}

/// Re-run a failing configuration with an enabled tracer and render the
/// recent per-image event window (a no-op note without the `trace`
/// feature).
fn capture_window(
    scn: &Scenario,
    algo: CollectiveConfig,
    spec: &Spec,
    prog: &Program,
    per_image: usize,
) -> String {
    let tracer = Tracer::for_images(scn.images);
    let _ = run_once(scn, algo, spec, prog, tracer.clone());
    tracer.render_recent(per_image)
}

/// Differentially check `prog` on one (scenario, algorithm) cell: oracle
/// first, then chaos seeds (faults layered per [`CheckOptions::faults`]),
/// then the thread fabric. Returns run counts, or the first divergence —
/// shrunk to a minimal chaos config when chaos-induced.
///
/// `CAF_CHECK_SEED=<n>` replaces the seed list with exactly `<n>`: the
/// replay knob printed by every failure report.
pub fn check_program(
    scn: &Scenario,
    algo_name: &str,
    algo: CollectiveConfig,
    prog: &Program,
    opts: &CheckOptions,
) -> Result<CheckReport, Box<Failure>> {
    let fail = |kind: String, seed, minimal, detail, window| {
        Box::new(Failure {
            scenario: scn.name.clone(),
            algo: algo_name.to_string(),
            kind,
            seed,
            minimal,
            detail,
            trace_window: window,
        })
    };

    let mut report = CheckReport::default();
    let oracle = match run_once(scn, algo, &Spec::Sim(None), prog, Tracer::off()) {
        Ok(v) => v,
        Err(msg) => {
            let window = capture_window(scn, algo, &Spec::Sim(None), prog, opts.trace_window);
            return Err(fail(
                "oracle (default sim)".into(),
                None,
                None,
                format!("panicked: {msg}"),
                window,
            ));
        }
    };
    report.runs += 1;

    let seeds: Vec<u64> = match std::env::var("CAF_CHECK_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
    {
        Some(s) => vec![s],
        None => opts.seeds.clone(),
    };
    let nodes = scn.machine.nodes;
    for (idx, &seed) in seeds.iter().enumerate() {
        let mut chaos = ChaosConfig::from_seed(seed);
        let faulted = opts.faults && idx % 3 == 2;
        if faulted {
            chaos = with_faults(chaos, seed, scn.images, nodes);
            report.fault_runs += 1;
        }
        let spec = Spec::Sim(Some(chaos));
        let got = run_once(scn, algo, &spec, prog, Tracer::off());
        report.runs += 1;
        report.chaos_runs += 1;
        if let Some(detail) = diff(&oracle, &got) {
            let minimal = shrink(scn, algo, prog, &oracle, chaos);
            let window = capture_window(
                scn,
                algo,
                &Spec::Sim(Some(minimal)),
                prog,
                opts.trace_window,
            );
            return Err(fail(
                format!(
                    "chaos seed {seed}{}",
                    if faulted { " + faults" } else { "" }
                ),
                Some(seed),
                Some(minimal),
                detail,
                window,
            ));
        }
    }

    if opts.threads {
        let got = run_once(scn, algo, &Spec::Threads, prog, Tracer::off());
        report.runs += 1;
        if let Some(detail) = diff(&oracle, &got) {
            let window = capture_window(scn, algo, &Spec::Threads, prog, opts.trace_window);
            return Err(fail("threads".into(), None, None, detail, window));
        }
    }

    Ok(report)
}

/// The legacy-queue column: run `prog` once per chaos spec (`None` plus
/// each seed) under the sharded event core, re-run it under the pre-scale
/// O(n) core (`SimConfig::legacy_queue`, the `CAF_SIM_LEGACY_QUEUE=1`
/// escape hatch), and diff the digests. The two cores must agree
/// bit-for-bit — the sharded queue and indexed scheduler are pure
/// data-structure swaps, so any divergence is a scheduler-order bug, not a
/// modeling change. Returns the number of executions on success.
pub fn check_legacy_queue(
    scn: &Scenario,
    algo_name: &str,
    algo: CollectiveConfig,
    prog: &Program,
    chaos_seeds: &[u64],
) -> Result<usize, Box<Failure>> {
    let mut specs: Vec<(String, Option<ChaosConfig>)> = vec![("no chaos".into(), None)];
    specs.extend(
        chaos_seeds
            .iter()
            .map(|&s| (format!("chaos seed {s}"), Some(ChaosConfig::from_seed(s)))),
    );
    let mut runs = 0;
    for (label, chaos) in specs {
        let fail = |detail: String| {
            Box::new(Failure {
                scenario: scn.name.clone(),
                algo: algo_name.to_string(),
                kind: format!("legacy queue vs sharded, {label}"),
                seed: chaos.map(|c| c.seed),
                minimal: None,
                detail,
                trace_window: String::new(),
            })
        };
        let sharded = match run_once(scn, algo, &Spec::Sim(chaos), prog, Tracer::off()) {
            Ok(v) => v,
            Err(msg) => return Err(fail(format!("sharded core panicked: {msg}"))),
        };
        let legacy = run_once(scn, algo, &Spec::SimLegacy(chaos), prog, Tracer::off());
        runs += 2;
        if let Some(detail) = diff(&sharded, &legacy) {
            return Err(fail(detail));
        }
    }
    Ok(runs)
}

/// The active-message column: run `prog` with the collectives routing
/// their flag traffic through the AM tier (per-destination batching on,
/// [`CollectiveConfig::am`]) and diff the per-image digests bit-for-bit
/// against the unbatched run of the very same simulator spec — once
/// without chaos and once per chaos seed, the same chaos driving both
/// sides. Batching changes *when* flags land (a batch is one delivery
/// event) but must never change *what* any image computes; a divergence
/// here is an AM ordering or flush bug. Returns the execution count.
pub fn check_am(
    scn: &Scenario,
    algo_name: &str,
    algo: CollectiveConfig,
    prog: &Program,
    chaos_seeds: &[u64],
) -> Result<usize, Box<Failure>> {
    let mut am_algo = algo;
    am_algo.am = true;
    let mut specs: Vec<(String, Option<ChaosConfig>)> = vec![("no chaos".into(), None)];
    specs.extend(
        chaos_seeds
            .iter()
            .map(|&s| (format!("chaos seed {s}"), Some(ChaosConfig::from_seed(s)))),
    );
    let mut runs = 0;
    for (label, chaos) in specs {
        let fail = |detail: String| {
            Box::new(Failure {
                scenario: scn.name.clone(),
                algo: algo_name.to_string(),
                kind: format!("am batching vs unbatched, {label}"),
                seed: chaos.map(|c| c.seed),
                minimal: None,
                detail,
                trace_window: String::new(),
            })
        };
        let oracle = match run_once(scn, algo, &Spec::Sim(chaos), prog, Tracer::off()) {
            Ok(v) => v,
            Err(msg) => return Err(fail(format!("unbatched oracle panicked: {msg}"))),
        };
        let batched = run_once(scn, am_algo, &Spec::Sim(chaos), prog, Tracer::off());
        runs += 2;
        if let Some(detail) = diff(&oracle, &batched) {
            return Err(fail(detail));
        }
    }
    Ok(runs)
}
