//! mmap-backed shared-memory segments: the intranode zero-copy tier of
//! the socket fabric.
//!
//! Each process creates **one** segment file (in `/dev/shm` when present)
//! sized for its hosted images' coarray windows plus per-image flag/AMO
//! tables, and announces the file's path in its `Open`/`Rejoin`
//! handshake. Peers that share the host map the file and service puts,
//! gets, AMOs, and flag adds against it with plain memory operations — a
//! memcpy plus a release-store instead of a frame plus an ack.
//!
//! # Segment layout
//!
//! ```text
//! header (64 B): magic, n_hosted, max_segs, max_flags,
//!                tables_off, arena_off, arena_len
//! per hosted image (local index k), stride-aligned:
//!     flag table   max_flags × AtomicU64
//!     segment dir  max_segs × (state, offset, len)
//! arena: bump-allocated segment storage (zeroed on allocation)
//! ```
//!
//! The owner allocates segments from the arena and *publishes* each one
//! by writing its directory entry and release-storing the entry's state
//! word; peers acquire-load the state word before building a window, so
//! a published entry's offset/length are always visible. All payload
//! bytes are accessed through relaxed atomics (the same memory model as
//! [`crate::seg::SharedBytes`]); flag adds use release stores and flag
//! waits acquire loads, which give properly-synchronized programs full
//! payload visibility across processes.
//!
//! Segment files are unlinked when the owning fabric drops; `caf-launch`
//! additionally sets [`ENV_FLEET`] so it can sweep `/dev/shm` for the
//! litter of a crashed fleet (see [`file_name`] for the naming scheme).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

/// `CAF_SOCKET_SHM=0` disables the shared-memory tier (pure-socket
/// differential oracle); `1` (or unset) enables it where supported.
pub const ENV_SHM: &str = "CAF_SOCKET_SHM";
/// Arena bytes reserved per hosted image (`CAF_SOCKET_SHM_BYTES`,
/// default 16 MiB). Pages are only committed when touched.
pub const ENV_SHM_BYTES: &str = "CAF_SOCKET_SHM_BYTES";
/// Fleet tag set by `caf-launch` so segment files of one fleet share a
/// greppable prefix the supervisor can clean up after a crash.
pub const ENV_FLEET: &str = "CAF_SHM_FLEET";
/// Directory override for segment files (default `/dev/shm` when it
/// exists, the system temp dir otherwise).
pub const ENV_SHM_DIR: &str = "CAF_SHM_DIR";

/// Default arena bytes per hosted image.
pub const DEFAULT_ARENA_PER_IMAGE: usize = 16 << 20;

const MAGIC: u64 = 0xCAF5_11A6_0000_0001;
const HEADER_BYTES: usize = 64;
/// Directory capacity: segments addressable per hosted image. Segments
/// allocated past this (or once the arena runs dry) degrade gracefully
/// to owner-heap windows reached over the wire — the unpublished
/// directory entry is the shared truth peers consult, so both sides of
/// a mapping agree without coordination.
pub const MAX_SEGS: usize = 256;
/// Shared flag-table capacity per hosted image. Flags allocated past
/// this index degrade gracefully to heap cells reached over the wire —
/// the index alone decides the backing, so both sides of a mapping
/// agree without coordination.
pub const MAX_FLAGS: usize = 256;
/// Directory entry: `[state, offset, len]`.
const DIR_ENTRY_BYTES: usize = 24;
const STATE_EMPTY: u64 = 0;
const STATE_PUBLISHED: u64 = 1;

// Header word offsets (bytes).
const H_MAGIC: usize = 0;
const H_N_HOSTED: usize = 8;
const H_MAX_SEGS: usize = 16;
const H_MAX_FLAGS: usize = 24;
const H_TABLES_OFF: usize = 32;
const H_ARENA_OFF: usize = 40;
const H_ARENA_LEN: usize = 48;

/// The directory where segment files live.
pub fn segment_dir() -> PathBuf {
    if let Ok(d) = std::env::var(ENV_SHM_DIR) {
        return PathBuf::from(d);
    }
    let dev_shm = Path::new("/dev/shm");
    if dev_shm.is_dir() {
        dev_shm.to_path_buf()
    } else {
        std::env::temp_dir()
    }
}

/// The prefix shared by every segment file of fleet `tag` — what the
/// launcher's crash sweep matches on.
pub fn fleet_prefix(tag: &str) -> String {
    format!("caf-shm-{tag}-")
}

/// Segment file name for process `rank` of fleet `tag` at recovery
/// generation `generation`. A respawned incarnation creates a fresh file
/// at its target generation, so its name never collides with the dead
/// incarnation's.
pub fn file_name(tag: &str, generation: u64, rank: usize) -> String {
    format!("{}g{generation}-r{rank}", fleet_prefix(tag))
}

/// Parse `name` as a segment file of fleet `tag`, returning its
/// `(generation, rank)`. The remainder after the fleet prefix must match
/// the full `g<digits>-r<digits>` structure [`file_name`] produces: a tag
/// that is merely a *prefix* of another fleet's tag (`ab` vs `ab-1` — the
/// tag is user-settable via `CAF_SHM_FLEET`) leaves a non-digit residue
/// and is rejected, so one fleet's sweep can never claim another's files.
fn parse_fleet_file(name: &str, tag: &str) -> Option<(u64, usize)> {
    let rest = name.strip_prefix(&fleet_prefix(tag))?;
    let (generation, rank) = rest.strip_prefix('g')?.split_once("-r")?;
    Some((generation.parse().ok()?, rank.parse().ok()?))
}

/// True when `name` is a segment file of fleet `tag` owned by `rank`
/// (any generation) — the stale files the launcher removes before
/// respawning that rank.
pub fn is_rank_file(name: &str, tag: &str, rank: usize) -> bool {
    parse_fleet_file(name, tag).is_some_and(|(_, r)| r == rank)
}

fn fleet_tag() -> String {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::var(ENV_FLEET).unwrap_or_else(|_| {
        format!(
            "{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        )
    })
}

/// Remove every segment file of fleet `tag`, any rank, any generation —
/// the launcher's teardown/crash sweep, so no `/dev/shm` litter survives
/// a reaped fleet. Returns how many files were removed.
pub fn sweep_fleet(tag: &str) -> usize {
    sweep_matching(|name| parse_fleet_file(name, tag).is_some())
}

/// Remove `rank`'s segment files of fleet `tag` from *any* generation —
/// what the launcher runs before respawning that rank, so the dead
/// incarnation's segment (whose owner never ran its unlink) cannot be
/// confused with the new generation's. Returns how many files were
/// removed.
pub fn sweep_rank(tag: &str, rank: usize) -> usize {
    sweep_matching(|name| is_rank_file(name, tag, rank))
}

fn sweep_matching(matches: impl Fn(&str) -> bool) -> usize {
    let Ok(entries) = std::fs::read_dir(segment_dir()) else {
        return 0;
    };
    let mut removed = 0;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if matches(name) && std::fs::remove_file(entry.path()).is_ok() {
            removed += 1;
        }
    }
    removed
}

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const PROT_WRITE: i32 = 2;
    pub const MAP_SHARED: i32 = 1;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

#[cfg(unix)]
fn map_shared(file: &fs::File, len: usize) -> io::Result<*mut u8> {
    use std::os::fd::AsRawFd;
    let ptr = unsafe {
        sys::mmap(
            std::ptr::null_mut(),
            len,
            sys::PROT_READ | sys::PROT_WRITE,
            sys::MAP_SHARED,
            file.as_raw_fd(),
            0,
        )
    };
    if ptr as isize == -1 {
        return Err(io::Error::last_os_error());
    }
    Ok(ptr as *mut u8)
}

#[cfg(not(unix))]
fn map_shared(_file: &fs::File, _len: usize) -> io::Result<*mut u8> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "shared-memory segments need mmap (unix only)",
    ))
}

/// One mapped segment file. Dropping the owning side unlinks the file;
/// the mapping itself stays valid for every holder until its last
/// `Arc` drops.
pub struct ShmSegment {
    ptr: *mut u8,
    len: usize,
    path: PathBuf,
    owner: bool,
}

// SAFETY: all access to the mapping goes through atomic operations on
// `AtomicU8`/`AtomicU64` cells; the raw pointer is never handed out.
unsafe impl Send for ShmSegment {}
unsafe impl Sync for ShmSegment {}

impl Drop for ShmSegment {
    fn drop(&mut self) {
        #[cfg(unix)]
        unsafe {
            sys::munmap(self.ptr as *mut std::ffi::c_void, self.len);
        }
        if self.owner {
            let _ = fs::remove_file(&self.path);
        }
    }
}

impl ShmSegment {
    fn create(path: PathBuf, len: usize) -> io::Result<Arc<Self>> {
        let file = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)?;
        file.set_len(len as u64)?;
        let ptr = match map_shared(&file, len) {
            Ok(p) => p,
            Err(e) => {
                let _ = fs::remove_file(&path);
                return Err(e);
            }
        };
        Ok(Arc::new(Self {
            ptr,
            len,
            path,
            owner: true,
        }))
    }

    fn open(path: PathBuf) -> io::Result<Arc<Self>> {
        let file = fs::OpenOptions::new().read(true).write(true).open(&path)?;
        let len = file.metadata()?.len() as usize;
        if len < HEADER_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "shared segment {} is truncated ({len} bytes)",
                    path.display()
                ),
            ));
        }
        let ptr = map_shared(&file, len)?;
        Ok(Arc::new(Self {
            ptr,
            len,
            path,
            owner: false,
        }))
    }

    /// The segment file's path (what rides the `Open`/`Rejoin` frame).
    pub fn path(&self) -> &Path {
        &self.path
    }

    #[inline]
    fn u64_at(&self, offset: usize) -> &AtomicU64 {
        assert!(
            offset.is_multiple_of(8) && offset + 8 <= self.len,
            "shm u64 access at {offset} out of segment of {} bytes",
            self.len
        );
        // SAFETY: in-bounds, 8-byte aligned (the mapping is page-aligned),
        // and only ever accessed atomically.
        unsafe { &*(self.ptr.add(offset) as *const AtomicU64) }
    }

    #[inline]
    fn u8_at(&self, offset: usize) -> &AtomicU8 {
        debug_assert!(offset < self.len);
        // SAFETY: in-bounds; only ever accessed atomically.
        unsafe { &*(self.ptr.add(offset) as *const AtomicU8) }
    }

    /// Relaxed byte copy into the mapping, 8-byte-chunked where aligned
    /// (same memory model as `SharedBytes::write`, faster on big puts).
    fn write_bytes(&self, offset: usize, src: &[u8]) {
        assert!(offset + src.len() <= self.len, "shm write out of bounds");
        let mut i = 0;
        while i < src.len() && !(offset + i).is_multiple_of(8) {
            self.u8_at(offset + i).store(src[i], Ordering::Relaxed);
            i += 1;
        }
        while i + 8 <= src.len() {
            let w = u64::from_ne_bytes(src[i..i + 8].try_into().expect("8-byte chunk"));
            self.u64_at(offset + i).store(w, Ordering::Relaxed);
            i += 8;
        }
        while i < src.len() {
            self.u8_at(offset + i).store(src[i], Ordering::Relaxed);
            i += 1;
        }
    }

    /// Relaxed byte copy out of the mapping, 8-byte-chunked where aligned.
    fn read_bytes(&self, offset: usize, dst: &mut [u8]) {
        assert!(offset + dst.len() <= self.len, "shm read out of bounds");
        let mut i = 0;
        while i < dst.len() && !(offset + i).is_multiple_of(8) {
            dst[i] = self.u8_at(offset + i).load(Ordering::Relaxed);
            i += 1;
        }
        while i + 8 <= dst.len() {
            let w = self.u64_at(offset + i).load(Ordering::Relaxed);
            dst[i..i + 8].copy_from_slice(&w.to_ne_bytes());
            i += 8;
        }
        while i < dst.len() {
            dst[i] = self.u8_at(offset + i).load(Ordering::Relaxed);
            i += 1;
        }
    }
}

/// A bounds-checked view of one published segment inside a mapped file —
/// the shared-memory counterpart of [`crate::seg::SharedBytes`], with the
/// same API and panic contract.
#[derive(Clone)]
pub struct ShmWindow {
    seg: Arc<ShmSegment>,
    base: usize,
    len: usize,
}

impl ShmWindow {
    /// Window length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the window has zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Copy `src` into the window at `offset` (relaxed stores).
    pub fn write(&self, offset: usize, src: &[u8]) {
        let end = offset
            .checked_add(src.len())
            .expect("segment offset overflow");
        assert!(
            end <= self.len,
            "put of {} bytes at offset {offset} exceeds segment of {} bytes",
            src.len(),
            self.len
        );
        self.seg.write_bytes(self.base + offset, src);
    }

    /// Copy from the window at `offset` into `dst` (relaxed loads).
    pub fn read(&self, offset: usize, dst: &mut [u8]) {
        let end = offset
            .checked_add(dst.len())
            .expect("segment offset overflow");
        assert!(
            end <= self.len,
            "get of {} bytes at offset {offset} exceeds segment of {} bytes",
            dst.len(),
            self.len
        );
        self.seg.read_bytes(self.base + offset, dst);
    }

    /// View an aligned 8-byte cell as an `AtomicU64` for remote atomics.
    ///
    /// # Panics
    /// Panics if `offset` is not 8-byte aligned or out of range.
    pub fn as_atomic_u64(&self, offset: usize) -> &AtomicU64 {
        assert!(
            offset.is_multiple_of(8),
            "AMO offset {offset} not 8-byte aligned"
        );
        assert!(
            offset + 8 <= self.len,
            "AMO at offset {offset} exceeds segment of {} bytes",
            self.len
        );
        // Window bases are 64-byte aligned, so offset alignment implies
        // absolute alignment.
        self.seg.u64_at(self.base + offset)
    }
}

/// A flag cell inside a mapped segment's flag table.
#[derive(Clone)]
pub struct ShmFlag {
    seg: Arc<ShmSegment>,
    off: usize,
}

impl ShmFlag {
    /// The underlying atomic cell.
    #[inline]
    pub fn cell(&self) -> &AtomicU64 {
        self.seg.u64_at(self.off)
    }
}

/// Layout parameters read back from a mapped segment's header.
#[derive(Clone, Copy)]
struct Layout {
    n_hosted: usize,
    max_segs: usize,
    max_flags: usize,
    tables_off: usize,
    arena_off: usize,
    arena_len: usize,
}

impl Layout {
    fn read(seg: &ShmSegment) -> io::Result<Layout> {
        let magic = seg.u64_at(H_MAGIC).load(Ordering::Acquire);
        if magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "shared segment {} has magic {magic:#x}, expected {MAGIC:#x} \
                     (mixed fabric versions on one host?)",
                    seg.path().display()
                ),
            ));
        }
        Ok(Layout {
            n_hosted: seg.u64_at(H_N_HOSTED).load(Ordering::Relaxed) as usize,
            max_segs: seg.u64_at(H_MAX_SEGS).load(Ordering::Relaxed) as usize,
            max_flags: seg.u64_at(H_MAX_FLAGS).load(Ordering::Relaxed) as usize,
            tables_off: seg.u64_at(H_TABLES_OFF).load(Ordering::Relaxed) as usize,
            arena_off: seg.u64_at(H_ARENA_OFF).load(Ordering::Relaxed) as usize,
            arena_len: seg.u64_at(H_ARENA_LEN).load(Ordering::Relaxed) as usize,
        })
    }

    #[inline]
    fn table_stride(&self) -> usize {
        let raw = self.max_flags * 8 + self.max_segs * DIR_ENTRY_BYTES;
        raw.next_multiple_of(64)
    }

    #[inline]
    fn flag_off(&self, local: usize, flag: usize) -> usize {
        assert!(
            local < self.n_hosted && flag < self.max_flags,
            "shm flag table access out of range (image slot {local}, flag {flag})"
        );
        self.tables_off + local * self.table_stride() + flag * 8
    }

    #[inline]
    fn dir_off(&self, local: usize, seg: usize) -> usize {
        assert!(
            local < self.n_hosted && seg < self.max_segs,
            "shm segment directory access out of range (image slot {local}, seg {seg})"
        );
        self.tables_off + local * self.table_stride() + self.max_flags * 8 + seg * DIR_ENTRY_BYTES
    }
}

/// The segment this process owns: hosted images' flag tables plus a bump
/// arena their coarray windows are carved from.
pub struct NodeShm {
    seg: Arc<ShmSegment>,
    layout: Layout,
    /// Owner-local bump pointer into the arena (bytes from `arena_off`).
    arena_next: AtomicU64,
    /// Arena watermark right after bootstrap allocation — what a
    /// recovery-fence reset rolls back to.
    boot_mark: AtomicU64,
}

impl NodeShm {
    /// Create this process's segment: `n_hosted` per-image tables plus
    /// `arena_per_image` arena bytes each, under the fleet tag from
    /// [`ENV_FLEET`] (or a process-unique fallback).
    pub fn create(
        rank: usize,
        generation: u64,
        n_hosted: usize,
        arena_per_image: usize,
    ) -> io::Result<NodeShm> {
        let layout = Layout {
            n_hosted,
            max_segs: MAX_SEGS,
            max_flags: MAX_FLAGS,
            tables_off: HEADER_BYTES,
            arena_off: 0, // fixed up below
            arena_len: n_hosted * arena_per_image,
        };
        let arena_off = (HEADER_BYTES + n_hosted * layout.table_stride()).next_multiple_of(4096);
        let layout = Layout {
            arena_off,
            ..layout
        };
        let total = (arena_off + layout.arena_len).next_multiple_of(4096);
        let path = segment_dir().join(file_name(&fleet_tag(), generation, rank));
        let seg = ShmSegment::create(path, total)?;
        seg.u64_at(H_N_HOSTED)
            .store(n_hosted as u64, Ordering::Relaxed);
        seg.u64_at(H_MAX_SEGS)
            .store(MAX_SEGS as u64, Ordering::Relaxed);
        seg.u64_at(H_MAX_FLAGS)
            .store(MAX_FLAGS as u64, Ordering::Relaxed);
        seg.u64_at(H_TABLES_OFF)
            .store(HEADER_BYTES as u64, Ordering::Relaxed);
        seg.u64_at(H_ARENA_OFF)
            .store(arena_off as u64, Ordering::Relaxed);
        seg.u64_at(H_ARENA_LEN)
            .store(layout.arena_len as u64, Ordering::Relaxed);
        // Publish the magic last: a peer that maps a half-built header
        // (impossible through the handshake, but cheap to rule out) sees
        // a zero magic and rejects.
        seg.u64_at(H_MAGIC).store(MAGIC, Ordering::Release);
        Ok(NodeShm {
            seg,
            layout,
            arena_next: AtomicU64::new(0),
            boot_mark: AtomicU64::new(0),
        })
    }

    /// The segment file's path (announced to peers in the handshake).
    pub fn path(&self) -> &Path {
        self.seg.path()
    }

    /// Carve `bytes` from the arena for segment id `seg` of hosted image
    /// slot `local`, zero it, and publish its directory entry.
    pub fn alloc(&self, local: usize, seg: usize, bytes: usize) -> Result<ShmWindow, String> {
        if seg >= self.layout.max_segs {
            return Err(format!(
                "image slot {local} needs segment id {seg} but the shared segment \
                 directory holds {} entries",
                self.layout.max_segs
            ));
        }
        let need = bytes.next_multiple_of(64).max(64);
        let off = self.arena_next.fetch_add(need as u64, Ordering::Relaxed) as usize;
        if off + need > self.layout.arena_len {
            return Err(format!(
                "shared-memory arena exhausted allocating {bytes} bytes \
                 ({} of {} arena bytes used); raise {ENV_SHM_BYTES}",
                off, self.layout.arena_len
            ));
        }
        let base = self.layout.arena_off + off;
        // Fresh allocations hand out zeroed memory, like `SharedBytes::new`
        // — this also scrubs stale bytes after a recovery-fence rollback.
        self.seg.write_bytes(base, &vec![0u8; bytes]);
        let dir = self.layout.dir_off(local, seg);
        self.seg
            .u64_at(dir + 8)
            .store(base as u64, Ordering::Relaxed);
        self.seg
            .u64_at(dir + 16)
            .store(bytes as u64, Ordering::Relaxed);
        self.seg
            .u64_at(dir)
            .store(STATE_PUBLISHED, Ordering::Release);
        Ok(ShmWindow {
            seg: self.seg.clone(),
            base,
            len: bytes,
        })
    }

    /// Flag cell `flag` of hosted image slot `local`.
    pub fn flag(&self, local: usize, flag: usize) -> ShmFlag {
        ShmFlag {
            seg: self.seg.clone(),
            off: self.layout.flag_off(local, flag),
        }
    }

    /// Record the post-bootstrap arena watermark; [`NodeShm::reset`]
    /// rolls the arena back to it.
    pub fn seal_bootstrap(&self) {
        self.boot_mark
            .store(self.arena_next.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Recovery-fence reset: unpublish every directory entry past the
    /// first `keep_segs`, zero every flag cell, and roll the arena back
    /// to the bootstrap watermark. Runs between the two fence rounds,
    /// when no peer is issuing traffic.
    pub fn reset(&self, keep_segs: usize) {
        for local in 0..self.layout.n_hosted {
            for s in keep_segs..self.layout.max_segs {
                self.seg
                    .u64_at(self.layout.dir_off(local, s))
                    .store(STATE_EMPTY, Ordering::Release);
            }
            for f in 0..self.layout.max_flags {
                self.seg
                    .u64_at(self.layout.flag_off(local, f))
                    .store(0, Ordering::Release);
            }
        }
        self.arena_next
            .store(self.boot_mark.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// A peer's mapped segment: windows and flag cells resolved against the
/// peer's published directory.
pub struct PeerShm {
    seg: Arc<ShmSegment>,
    layout: Layout,
}

impl PeerShm {
    /// Map the segment a peer announced in its handshake.
    pub fn open(path: &Path) -> io::Result<PeerShm> {
        let seg = ShmSegment::open(path.to_path_buf())?;
        let layout = Layout::read(&seg)?;
        let need = layout.arena_off + layout.arena_len;
        if seg.len < need {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "shared segment {} is {} bytes but its header claims {need}",
                    path.display(),
                    seg.len
                ),
            ));
        }
        Ok(PeerShm { seg, layout })
    }

    /// The published window for segment id `seg` of the peer's hosted
    /// image slot `local`, or `None` when the peer has not allocated it.
    pub fn window(&self, local: usize, seg: usize) -> Option<ShmWindow> {
        if local >= self.layout.n_hosted || seg >= self.layout.max_segs {
            return None;
        }
        let dir = self.layout.dir_off(local, seg);
        if self.seg.u64_at(dir).load(Ordering::Acquire) != STATE_PUBLISHED {
            return None;
        }
        let base = self.seg.u64_at(dir + 8).load(Ordering::Relaxed) as usize;
        let len = self.seg.u64_at(dir + 16).load(Ordering::Relaxed) as usize;
        Some(ShmWindow {
            seg: self.seg.clone(),
            base,
            len,
        })
    }

    /// Flag cell `flag` of the peer's hosted image slot `local`.
    pub fn flag(&self, local: usize, flag: usize) -> ShmFlag {
        ShmFlag {
            seg: self.seg.clone(),
            off: self.layout.flag_off(local, flag),
        }
    }

    /// Number of image slots the peer's segment holds.
    pub fn n_hosted(&self) -> usize {
        self.layout.n_hosted
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    #[test]
    fn create_alloc_publish_and_peer_window_roundtrip() {
        let own = NodeShm::create(0, 0, 2, 1 << 16).expect("create");
        assert!(own.path().exists());
        let w = own.alloc(1, 0, 100).expect("alloc");
        w.write(4, &[1, 2, 3, 4]);
        let peer = PeerShm::open(own.path()).expect("open");
        assert_eq!(peer.n_hosted(), 2);
        let pw = peer.window(1, 0).expect("published window");
        assert_eq!(pw.len(), 100);
        let mut out = [0u8; 6];
        pw.read(3, &mut out);
        assert_eq!(out, [0, 1, 2, 3, 4, 0]);
        assert!(peer.window(0, 0).is_none(), "unpublished id stays hidden");
        assert!(peer.window(1, 7).is_none());
    }

    #[test]
    fn flags_and_amos_are_shared_atomics() {
        let own = NodeShm::create(0, 0, 1, 1 << 12).expect("create");
        let peer = PeerShm::open(own.path()).expect("open");
        own.flag(0, 3).cell().fetch_add(5, Ordering::Release);
        peer.flag(0, 3).cell().fetch_add(2, Ordering::Release);
        assert_eq!(own.flag(0, 3).cell().load(Ordering::Acquire), 7);
        let w = own.alloc(0, 0, 64).expect("alloc");
        let pw = peer.window(0, 0).expect("window");
        w.as_atomic_u64(8).store(40, Ordering::Release);
        assert_eq!(pw.as_atomic_u64(8).fetch_add(2, Ordering::AcqRel), 40);
        let mut out = [0u8; 8];
        w.read(8, &mut out);
        assert_eq!(u64::from_ne_bytes(out), 42);
    }

    #[test]
    fn reset_rolls_back_to_bootstrap() {
        let own = NodeShm::create(0, 0, 1, 1 << 12).expect("create");
        let boot = own.alloc(0, 0, 64).expect("bootstrap seg");
        own.seal_bootstrap();
        boot.write(0, &[9u8; 64]);
        own.alloc(0, 1, 128).expect("app seg");
        own.flag(0, 0).cell().store(77, Ordering::Release);
        own.reset(1);
        let peer = PeerShm::open(own.path()).expect("open");
        assert!(peer.window(0, 0).is_some(), "bootstrap entry survives");
        assert!(peer.window(0, 1).is_none(), "app entry unpublished");
        assert_eq!(own.flag(0, 0).cell().load(Ordering::Acquire), 0);
        // The arena rolled back: the next allocation reuses (and zeroes)
        // the old app segment's bytes.
        let w = own.alloc(0, 1, 128).expect("realloc");
        let mut out = [0u8; 128];
        w.read(0, &mut out);
        assert!(
            out.iter().all(|b| *b == 0),
            "realloc hands out zeroed bytes"
        );
    }

    #[test]
    fn arena_exhaustion_is_a_loud_error() {
        let own = NodeShm::create(0, 0, 1, 4096).expect("create");
        let err = own.alloc(0, 0, 1 << 20).map(|_| ()).unwrap_err();
        assert!(err.contains(ENV_SHM_BYTES), "error names the knob: {err}");
    }

    #[test]
    fn window_bounds_and_alignment_match_shared_bytes_contract() {
        let own = NodeShm::create(0, 0, 1, 1 << 12).expect("create");
        let w = own.alloc(0, 0, 32).expect("alloc");
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| w.write(30, &[0u8; 4])));
        let msg = *r.unwrap_err().downcast::<String>().expect("panic message");
        assert!(msg.contains("exceeds segment of 32 bytes"), "{msg}");
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| w.as_atomic_u64(4)));
        let msg = *r.unwrap_err().downcast::<String>().expect("panic message");
        assert!(msg.contains("not 8-byte aligned"), "{msg}");
    }

    #[test]
    fn drop_of_owner_unlinks_the_file() {
        let own = NodeShm::create(7, 3, 1, 4096).expect("create");
        let path = own.path().to_path_buf();
        let peer = PeerShm::open(&path).expect("open");
        drop(own);
        assert!(!path.exists(), "owner drop unlinks");
        // The peer's mapping is still valid after the unlink.
        peer.flag(0, 0).cell().store(1, Ordering::Release);
        assert_eq!(peer.flag(0, 0).cell().load(Ordering::Acquire), 1);
    }

    #[test]
    fn naming_scheme_is_greppable_per_rank() {
        assert_eq!(file_name("ab-1", 2, 3), "caf-shm-ab-1-g2-r3");
        assert!(is_rank_file("caf-shm-ab-1-g2-r3", "ab-1", 3));
        assert!(is_rank_file("caf-shm-ab-1-g0-r3", "ab-1", 3));
        assert!(!is_rank_file("caf-shm-ab-1-g2-r13", "ab-1", 3));
        assert!(!is_rank_file("caf-shm-other-g2-r3", "ab-1", 3));
    }

    #[test]
    fn fleet_match_rejects_prefix_collisions_between_tags() {
        // `CAF_SHM_FLEET` is user-settable, so one tag can be a raw prefix
        // of another (`ab` vs `ab-1`). The sweep must only claim files
        // whose post-prefix remainder has the full g<gen>-r<rank> shape.
        assert_eq!(parse_fleet_file("caf-shm-ab-g2-r3", "ab"), Some((2, 3)));
        assert_eq!(
            parse_fleet_file(&file_name("ab", 0, 11), "ab"),
            Some((0, 11))
        );
        // Fleet "ab-1"'s files are not fleet "ab"'s, despite the prefix.
        assert_eq!(parse_fleet_file("caf-shm-ab-1-g2-r3", "ab"), None);
        // ...and vice versa.
        assert_eq!(parse_fleet_file("caf-shm-ab-g2-r3", "ab-1"), None);
        // Structural garbage after a matching prefix is left alone.
        assert_eq!(parse_fleet_file("caf-shm-ab-gx-r3", "ab"), None);
        assert_eq!(parse_fleet_file("caf-shm-ab-g2", "ab"), None);
        assert_eq!(parse_fleet_file("caf-shm-ab-", "ab"), None);
        assert_eq!(parse_fleet_file("caf-shm-other-g2-r3", "ab"), None);
    }
}
