//! EXP-A1-amstorm — active-message injection throughput and wire-frame
//! amplification: many tiny puts-plus-doorbells from every image onto one
//! target, batched through the AM tier vs shipped one op at a time.
//!
//! The storm runs at 8–64 B payloads on all three fabrics. Simulator rows
//! report the *deterministic* modeled makespan (`sim_*_virt` — gated at
//! the strict 10% by `cargo xtask bench-diff`); thread and socket rows
//! report host wall-clock per AM (`*_wall` — noisy, gated loosely via
//! `--wall-tolerance`); socket runs additionally report wire frames per
//! AM from the `FabricStats` frame counters (`socket_*_frames` — a frame
//! *count*, deterministic, strict gate). The acceptance check asserts the
//! batched socket path ships at least 4x fewer frames per op than the
//! unbatched path at 8 B payloads.
//!
//! Results go to `BENCH_amstorm.json` (override with `CAF_BENCH_OUT`);
//! CI reruns the quick points and diffs against the committed baseline.

use caf_bench::{print_cost_preamble, quick_mode};
use caf_fabric::socket::testing::{fleet, run_fleet};
use caf_fabric::{
    bootstrap, run_spmd, Am, AmPolicy, ArcFabric, Fabric, FlagId, SimConfig, SimFabric,
    SocketConfig, ThreadConfig, ThreadFabric,
};
use caf_microbench::Table;
use caf_topology::{presets, ImageMap, Placement, ProcId, SoftwareOverheads};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

const SPARE_FLAG: FlagId = FlagId(2);
const PAYLOADS: [usize; 4] = [8, 16, 32, 64];

struct Rec {
    op: &'static str,
    bytes: usize,
    algo: String,
    ns: f64,
}

/// The batching policy under test: wide enough that the op budget, not
/// the byte budget, decides the batch size. Fixed explicitly (not derived
/// from the cost model) so the committed baselines don't move when the
/// cost presets do.
fn batched() -> AmPolicy {
    AmPolicy {
        batch_bytes: 1 << 16,
        batch_ops: 32,
        flush_age_ns: u64::MAX / 2,
    }
}

fn policy(batch: bool) -> AmPolicy {
    if batch {
        batched()
    } else {
        AmPolicy::unbatched()
    }
}

/// The storm itself, over any fabric: each image in `senders` fires
/// `rounds` put+flag pairs (payload `bytes`, each pair fusable into one
/// `PutFlag`) at image 0 through an `Am` sender, then fences with
/// `quiet`; image 0 waits for every doorbell. Returns the per-image
/// virtual finish times (max = modeled makespan).
fn storm(
    fabric: ArcFabric,
    senders: std::ops::Range<usize>,
    rounds: u64,
    bytes: usize,
    pol: AmPolicy,
) -> Vec<u64> {
    let images = fabric.n_images();
    let f2 = fabric.clone();
    let total = senders.len() as u64 * rounds;
    let times = Arc::new(Mutex::new(vec![0u64; images]));
    let t2 = times.clone();
    run_spmd(fabric, move |me| {
        let i = me.index();
        if senders.contains(&i) {
            let mut am = Am::new(f2.clone(), me, pol);
            let payload = vec![i as u8; bytes];
            // Each sender owns bootstrap slot `i`; payloads ≤ 64 B fit.
            let off = i * bootstrap::SLOT_BYTES;
            for _ in 0..rounds {
                am.put(ProcId(0), bootstrap::SEG, off, &payload);
                am.flag_add(ProcId(0), SPARE_FLAG, 1);
            }
            am.quiet();
        } else if i == 0 && total > 0 {
            f2.flag_wait_ge(me, SPARE_FLAG, total);
        }
        t2.lock()[i] = f2.now_ns(me);
        f2.image_done(me);
    });
    let v = times.lock().clone();
    v
}

fn sim_fabric(nodes: usize, cores: usize, images: usize) -> Arc<SimFabric> {
    let map = ImageMap::new(presets::mini(nodes, cores), images, &Placement::Packed);
    SimFabric::new(
        map,
        SimConfig {
            cost: presets::whale_cost(),
            overheads: SoftwareOverheads::NONE,
            ..SimConfig::default()
        },
    )
}

struct SocketPoint {
    wall_ns_per_am: f64,
    frames_per_am: f64,
    fused: u64,
    ams: u64,
}

/// The storm on a real two-process-worth socket fleet (two in-process
/// `SocketFabric`s over real sockets): only node 1's images send, so
/// every AM crosses the wire, and the summed `wire_frames_tx` delta is
/// exactly the storm's frame bill.
fn socket_storm(images: usize, rounds: u64, bytes: usize, pol: AmPolicy) -> SocketPoint {
    let map = ImageMap::new(presets::mini(2, images / 2), images, &Placement::Packed);
    let cfg = SocketConfig {
        io_timeout: Duration::from_secs(30),
        flag_wait_timeout: Duration::from_secs(30),
        // This experiment measures the *wire* frame bill; the shared-memory
        // tier would route the whole storm around the wire (see
        // EXP-P1-pingpong for that comparison).
        shm: false,
        ..SocketConfig::default()
    };
    let fabrics = fleet(&map, &cfg);
    let before: Vec<_> = fabrics.iter().map(|f| f.stats().snapshot()).collect();
    let senders = images / 2..images;
    let total_ams = senders.len() as u64 * rounds * 2;
    let t0 = Instant::now();
    run_fleet(&fabrics, move |f, me| {
        let i = me.index();
        if i >= f.n_images() / 2 {
            let mut am = Am::new(f.clone(), me, pol);
            let payload = vec![i as u8; bytes];
            let off = i * bootstrap::SLOT_BYTES;
            for _ in 0..rounds {
                am.put(ProcId(0), bootstrap::SEG, off, &payload);
                am.flag_add(ProcId(0), SPARE_FLAG, 1);
            }
            am.quiet();
        } else if i == 0 {
            let n = f.n_images() as u64;
            f.flag_wait_ge(me, SPARE_FLAG, n / 2 * rounds);
        }
        f.image_done(me);
    });
    let wall_s = t0.elapsed().as_secs_f64();
    let (mut frames, mut fused, mut ams) = (0u64, 0u64, 0u64);
    for (f, b) in fabrics.iter().zip(&before) {
        let d = f.stats().snapshot() - *b;
        frames += d.wire_frames_tx;
        fused += d.am_fused;
        ams += d.ams_injected;
    }
    SocketPoint {
        wall_ns_per_am: wall_s * 1e9 / total_ams as f64,
        frames_per_am: frames as f64 / total_ams as f64,
        fused,
        ams,
    }
}

fn json_escape_free(s: &str) -> &str {
    assert!(
        s.chars()
            .all(|c| c.is_ascii_alphanumeric() || "_-.".contains(c)),
        "unexpected character in JSON field: {s}"
    );
    s
}

fn write_json(path: &str, recs: &[Rec]) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"exp_a1_amstorm\",\n");
    out.push_str("  \"machine\": \"whale-cost-model\",\n");
    out.push_str(&format!("  \"quick\": {},\n", quick_mode()));
    out.push_str(
        "  \"unit\": \"virt_rows_modeled_makespan_ns_wall_rows_wall_ns_per_am_frames_rows_frames_per_am\",\n",
    );
    out.push_str("  \"results\": [\n");
    for (i, r) in recs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"op\": \"{}\", \"bytes\": {}, \"algo\": \"{}\", \"ns\": {:.4}}}{}\n",
            json_escape_free(r.op),
            r.bytes,
            json_escape_free(&r.algo),
            r.ns,
            if i + 1 < recs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("\nwrote {path} ({} results)", recs.len());
}

fn main() {
    print_cost_preamble("EXP-A1-amstorm");
    // Quick keeps the socket fleets and thread counts CI-sized; full is
    // the committed-baseline scale.
    let (images, rounds) = if quick_mode() {
        (8, 128u64)
    } else {
        (8, 512u64)
    };
    let mut recs: Vec<Rec> = Vec::new();
    let mut t = Table::new(
        "EXP-A1-amstorm: put+flag storms onto image 0, batched AM tier vs \
         one-op-per-message"
            .to_string(),
        &[
            "payload",
            "mode",
            "sim virt ms",
            "thread Mam/s",
            "socket Mam/s",
            "frames/am",
            "fused",
        ],
    );
    let mut frames_8b = [f64::NAN; 2]; // [unbatched, batched] at 8 B
    for &bytes in &PAYLOADS {
        for batch in [false, true] {
            let mode = if batch { "batched" } else { "unbatched" };
            let pol = policy(batch);
            let total_ams = (images as u64 - 1) * rounds * 2;

            // Simulator: deterministic modeled makespan.
            let f = sim_fabric(2, images / 2, images);
            let times = storm(f.clone(), 1..images, rounds, bytes, pol);
            let virt_ns = *times.iter().max().expect("nonempty fleet") as f64;
            recs.push(Rec {
                op: "amstorm",
                bytes,
                algo: format!("sim_{mode}_virt"),
                ns: virt_ns,
            });

            // Real threads: wall clock per AM.
            let map = ImageMap::new(presets::mini(2, images / 2), images, &Placement::Packed);
            let tf = ThreadFabric::new(map, ThreadConfig::default());
            let t0 = Instant::now();
            storm(tf, 1..images, rounds, bytes, pol);
            let thread_wall_ns = t0.elapsed().as_secs_f64() * 1e9 / total_ams as f64;
            recs.push(Rec {
                op: "amstorm",
                bytes,
                algo: format!("thread_{mode}_wall"),
                ns: thread_wall_ns,
            });

            // Socket fleet: wall clock per AM + the wire-frame bill.
            let sp = socket_storm(images, rounds, bytes, pol);
            recs.push(Rec {
                op: "amstorm",
                bytes,
                algo: format!("socket_{mode}_wall"),
                ns: sp.wall_ns_per_am,
            });
            recs.push(Rec {
                op: "amstorm",
                bytes,
                algo: format!("socket_{mode}_frames"),
                ns: sp.frames_per_am,
            });
            if bytes == 8 {
                frames_8b[batch as usize] = sp.frames_per_am;
            }
            t.row(&[
                format!("{bytes} B"),
                mode.to_string(),
                format!("{:.3}", virt_ns / 1e6),
                format!("{:.2}", 1e3 / thread_wall_ns),
                format!("{:.2}", 1e3 / sp.wall_ns_per_am),
                format!("{:.3}", sp.frames_per_am),
                format!("{}/{}", sp.fused, sp.ams),
            ]);
        }
    }
    let reduction = frames_8b[0] / frames_8b[1];
    t.note(format!(
        "socket frames/am at 8 B: unbatched {:.3}, batched {:.3} — {reduction:.1}x fewer frames",
        frames_8b[0], frames_8b[1]
    ));
    t.print();

    let path = std::env::var("CAF_BENCH_OUT").unwrap_or_else(|_| {
        let root = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".into());
        format!("{root}/../../BENCH_amstorm.json")
    });
    write_json(&path, &recs);

    assert!(
        reduction >= 4.0,
        "batching cut socket frames/am by only {reduction:.2}x at 8 B payloads \
         (need >= 4x)"
    );
    println!(
        "acceptance: batched socket path ships {reduction:.1}x fewer frames per AM at 8 B -- PASS"
    );
}
