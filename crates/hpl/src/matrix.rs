//! Column-major dense matrix storage and the deterministic test-matrix
//! generator.
//!
//! HPL matrices are regenerable from `(seed, i, j)` so the verifier can
//! reconstruct the original system without any image storing it.

/// A column-major `rows × cols` matrix of `f64`.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element (i, j).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i + j * self.rows]
    }

    /// Set element (i, j).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i + j * self.rows] = v;
    }

    /// The contiguous column `j`.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Mutable column `j`.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Raw column-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Leading dimension (= rows for this dense layout).
    pub fn ld(&self) -> usize {
        self.rows
    }

    /// Swap rows `a` and `b` across columns `c_lo..c_hi`.
    pub fn swap_rows(&mut self, a: usize, b: usize, c_lo: usize, c_hi: usize) {
        if a == b {
            return;
        }
        for j in c_lo..c_hi {
            let base = j * self.rows;
            self.data.swap(base + a, base + b);
        }
    }

    /// Max-absolute-value norm (‖·‖_max).
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &v| m.max(v.abs()))
    }

    /// Infinity norm (max absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        let mut best: f64 = 0.0;
        for i in 0..self.rows {
            let mut s = 0.0;
            for j in 0..self.cols {
                s += self.get(i, j).abs();
            }
            best = best.max(s);
        }
        best
    }
}

/// SplitMix64 — the deterministic element generator.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// The HPL test-matrix element `A(i, j)` for a given seed: uniform in
/// (−0.5, 0.5), exactly reproducible on any image.
#[inline]
pub fn hpl_element(seed: u64, n: usize, i: usize, j: usize) -> f64 {
    let h = splitmix64(seed ^ ((i * n + j) as u64).wrapping_mul(0x2545F4914F6CDD1D));
    // 53 random mantissa bits -> [0,1) -> (-0.5, 0.5).
    ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64) - 0.5
}

/// Materialize the full `n × n` HPL matrix (verification-scale only).
pub fn hpl_matrix(seed: u64, n: usize) -> Matrix {
    let mut m = Matrix::zeros(n, n);
    for j in 0..n {
        for i in 0..n {
            m.set(i, j, hpl_element(seed, n, i, j));
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip_column_major() {
        let mut m = Matrix::zeros(3, 2);
        m.set(2, 1, 7.5);
        assert_eq!(m.get(2, 1), 7.5);
        // Column-major: element (2,1) is the last of the flat data.
        assert_eq!(m.as_slice()[5], 7.5);
        assert_eq!(m.col(1), &[0.0, 0.0, 7.5]);
    }

    #[test]
    fn swap_rows_partial_columns() {
        let mut m = Matrix::zeros(2, 3);
        for j in 0..3 {
            m.set(0, j, j as f64);
            m.set(1, j, 10.0 + j as f64);
        }
        m.swap_rows(0, 1, 1, 3);
        assert_eq!(m.get(0, 0), 0.0); // untouched
        assert_eq!(m.get(0, 1), 11.0);
        assert_eq!(m.get(1, 2), 2.0);
    }

    #[test]
    fn swap_same_row_is_noop() {
        let mut m = hpl_matrix(1, 4);
        let before = m.clone();
        m.swap_rows(2, 2, 0, 4);
        assert_eq!(m, before);
    }

    #[test]
    fn generator_is_deterministic_and_seed_sensitive() {
        assert_eq!(hpl_element(42, 100, 3, 7), hpl_element(42, 100, 3, 7));
        assert_ne!(hpl_element(42, 100, 3, 7), hpl_element(43, 100, 3, 7));
        assert_ne!(hpl_element(42, 100, 3, 7), hpl_element(42, 100, 7, 3));
    }

    #[test]
    fn generator_range_and_spread() {
        let n = 50;
        let m = hpl_matrix(7, n);
        let mut sum = 0.0;
        for j in 0..n {
            for i in 0..n {
                let v = m.get(i, j);
                assert!(v > -0.5 && v < 0.5);
                sum += v;
            }
        }
        let mean = sum / (n * n) as f64;
        assert!(mean.abs() < 0.02, "mean {mean} should be near zero");
    }

    #[test]
    fn norms() {
        let mut m = Matrix::zeros(2, 2);
        m.set(0, 0, -3.0);
        m.set(0, 1, 1.0);
        m.set(1, 1, 2.0);
        assert_eq!(m.norm_max(), 3.0);
        assert_eq!(m.norm_inf(), 4.0);
    }
}
