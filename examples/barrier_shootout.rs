//! Compare every barrier algorithm on one simulated topology — a compact
//! rendition of the paper's §IV-A analysis: the centralized linear barrier
//! wins inside a node, dissemination wins across nodes, and TDLB takes the
//! best of both.
//!
//! Run with: `cargo run --release --example barrier_shootout`

use caf::microbench::{barrier_latency, MicroConfig, Table};
use caf::runtime::{BarrierAlgo, CollectiveConfig};
use caf::topology::{presets, MachineModel, Placement, SoftwareOverheads};

fn latency(
    machine: MachineModel,
    images: usize,
    per_node: usize,
    placement: Placement,
    algo: BarrierAlgo,
) -> f64 {
    // Zero software overhead isolates the hardware regimes of §IV-A.
    let mut mc = MicroConfig::whale(images, per_node)
        .with_stack(SoftwareOverheads::NONE)
        .with_collectives(CollectiveConfig {
            barrier: algo,
            ..CollectiveConfig::default()
        });
    mc.machine = machine;
    mc.placement = placement;
    mc.iters = 10;
    barrier_latency(&mc).us_per_op()
}

fn main() {
    let algos = [
        ("central-linear", BarrierAlgo::CentralCounter),
        ("dissemination", BarrierAlgo::Dissemination),
        ("TDLB (2-level)", BarrierAlgo::Tdlb),
        ("TDLB (3-level)", BarrierAlgo::TdlbMultilevel),
    ];
    let scenarios: [(&str, MachineModel, usize, usize, Placement); 3] = [
        (
            "1 node x 8 images (pure shared memory)",
            presets::smp(1, 8),
            8,
            8,
            Placement::Packed,
        ),
        (
            "16 nodes x 1 image (flat/distributed)",
            presets::whale(),
            16,
            1,
            Placement::Cyclic,
        ),
        (
            "8 nodes x 8 images (hierarchical)",
            presets::whale(),
            64,
            8,
            Placement::Packed,
        ),
    ];

    let mut table = Table::new(
        "barrier latency by algorithm and topology (modeled us)",
        &["scenario", "central", "dissem", "TDLB", "TDLB-3lvl"],
    );
    for (name, machine, images, per_node, placement) in scenarios {
        let row: Vec<String> = algos
            .iter()
            .map(|(_, algo)| {
                format!(
                    "{:.2}",
                    latency(machine.clone(), images, per_node, placement.clone(), *algo)
                )
            })
            .collect();
        table.row(&[
            name.to_string(),
            row[0].clone(),
            row[1].clone(),
            row[2].clone(),
            row[3].clone(),
        ]);
    }
    table.note("shared memory: central < dissemination; distributed: dissemination < central");
    table.note("hierarchical: TDLB combines both regimes (the paper's Algorithm 1)");
    table.print();

    // The paper's claims as executable assertions at this scale:
    let smp = presets::smp(1, 8);
    let smp_central = latency(
        smp.clone(),
        8,
        8,
        Placement::Packed,
        BarrierAlgo::CentralCounter,
    );
    let smp_dissem = latency(smp, 8, 8, Placement::Packed, BarrierAlgo::Dissemination);
    assert!(
        smp_central < smp_dissem,
        "on one node the linear barrier must win ({smp_central} vs {smp_dissem})"
    );
    let whale = presets::whale();
    let dist_central = latency(
        whale.clone(),
        16,
        1,
        Placement::Cyclic,
        BarrierAlgo::CentralCounter,
    );
    let dist_dissem = latency(
        whale.clone(),
        16,
        1,
        Placement::Cyclic,
        BarrierAlgo::Dissemination,
    );
    assert!(
        dist_dissem < dist_central,
        "across nodes dissemination must win ({dist_dissem} vs {dist_central})"
    );
    let hier_tdlb = latency(whale.clone(), 64, 8, Placement::Packed, BarrierAlgo::Tdlb);
    let hier_dissem = latency(whale, 64, 8, Placement::Packed, BarrierAlgo::Dissemination);
    assert!(
        hier_tdlb < hier_dissem,
        "hierarchical: TDLB must win ({hier_tdlb} vs {hier_dissem})"
    );
    println!("barrier_shootout OK — all three regime orderings hold");
}
