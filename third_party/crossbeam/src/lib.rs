//! Offline shim for the `crossbeam` API subset used by this workspace:
//! `utils::Backoff` and `utils::CachePadded`.

pub mod utils {
    use std::cell::Cell;
    use std::fmt;
    use std::ops::{Deref, DerefMut};

    const SPIN_LIMIT: u32 = 6;
    const YIELD_LIMIT: u32 = 10;

    /// Exponential backoff for spin loops: spin (with exponentially more
    /// `spin_loop` hints), then yield; `is_completed` signals that the
    /// caller should switch to a blocking wait.
    pub struct Backoff {
        step: Cell<u32>,
    }

    impl Backoff {
        pub fn new() -> Self {
            Self { step: Cell::new(0) }
        }

        pub fn reset(&self) {
            self.step.set(0);
        }

        pub fn spin(&self) {
            for _ in 0..1u32 << self.step.get().min(SPIN_LIMIT) {
                std::hint::spin_loop();
            }
            if self.step.get() <= SPIN_LIMIT {
                self.step.set(self.step.get() + 1);
            }
        }

        pub fn snooze(&self) {
            if self.step.get() <= SPIN_LIMIT {
                for _ in 0..1u32 << self.step.get() {
                    std::hint::spin_loop();
                }
            } else {
                std::thread::yield_now();
            }
            if self.step.get() <= YIELD_LIMIT {
                self.step.set(self.step.get() + 1);
            }
        }

        pub fn is_completed(&self) -> bool {
            self.step.get() > YIELD_LIMIT
        }
    }

    impl Default for Backoff {
        fn default() -> Self {
            Self::new()
        }
    }

    impl fmt::Debug for Backoff {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Backoff")
                .field("step", &self.step.get())
                .finish()
        }
    }

    /// Pads and aligns a value to 128 bytes so adjacent cells never share
    /// a cache line.
    #[derive(Clone, Copy, Default)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        pub const fn new(value: T) -> Self {
            Self { value }
        }

        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.value.fmt(f)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn cache_padded_is_aligned() {
            assert!(std::mem::align_of::<CachePadded<u8>>() >= 128);
            let c = CachePadded::new(5u64);
            assert_eq!(*c, 5);
        }

        #[test]
        fn backoff_completes() {
            let b = Backoff::new();
            while !b.is_completed() {
                b.snooze();
            }
        }
    }
}
