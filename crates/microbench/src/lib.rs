//! # caf-microbench
//!
//! A port of the paper's **Teams Microbenchmark suite** (§V-A, published by
//! the authors as the first reference test suite for CAF teams): latency
//! harnesses for barrier, all-to-all reduction, and one-to-all broadcast on
//! teams, plus team-formation cost — parameterized by machine model, image
//! placement, software stack, and collective algorithm, so one harness
//! measures every comparator configuration of the evaluation.
//!
//! All timings run over the virtual-time simulator and report **modeled
//! nanoseconds**; wall-clock measurements of the real-threads fabric live
//! in `caf-bench`'s criterion targets.

#![warn(missing_docs)]

pub mod report;

pub use report::Table;

use caf_fabric::{SimConfig, SimFabric};
use caf_runtime::{run_on_fabric, CollectiveConfig, ImageCtx};
use caf_topology::{presets, ImageMap, MachineModel, Placement, SoftwareOverheads};
use caf_trace::{summary_rows, Event, Tracer};

/// One microbenchmark configuration: a machine, a launch, a software
/// stack, and a collective configuration.
#[derive(Clone, Debug)]
pub struct MicroConfig {
    /// The simulated cluster.
    pub machine: MachineModel,
    /// Images to launch.
    pub images: usize,
    /// Placement policy (the paper's runs: `Block { per_node: 8 }` dense,
    /// `Cyclic` for 1 image/node).
    pub placement: Placement,
    /// Software stack being modeled (see `caf_topology::presets::stacks`).
    pub overheads: SoftwareOverheads,
    /// Collective algorithms under test.
    pub collectives: CollectiveConfig,
    /// Untimed warm-up iterations (flags and scratch get allocated here).
    pub warmup: usize,
    /// Timed iterations.
    pub iters: usize,
    /// Trace sink for the run ([`Tracer::off`] = no capture). The harness
    /// clones the handle into the fabric, so after a run the caller reads
    /// the recorded events from this same value.
    pub tracer: Tracer,
}

impl MicroConfig {
    /// A dense launch on the paper's 44-node cluster: `images` images at
    /// `per_node` per node, UHCAF-like stack, auto algorithms.
    pub fn whale(images: usize, per_node: usize) -> Self {
        Self {
            machine: presets::whale(),
            images,
            placement: Placement::Block { per_node },
            overheads: presets::stacks::UHCAF,
            collectives: CollectiveConfig::auto(),
            warmup: 3,
            iters: 20,
            tracer: Tracer::off(),
        }
    }

    /// Override the collective configuration.
    pub fn with_collectives(mut self, c: CollectiveConfig) -> Self {
        self.collectives = c;
        self
    }

    /// Override the software stack.
    pub fn with_stack(mut self, s: SoftwareOverheads) -> Self {
        self.overheads = s;
        self
    }

    /// Attach a trace sink: subsequent runs record into `t` (read the
    /// events back from the same handle after the run).
    pub fn with_tracer(mut self, t: Tracer) -> Self {
        self.tracer = t;
        self
    }

    fn build(&self) -> caf_fabric::ArcFabric {
        let map = ImageMap::new(self.machine.clone(), self.images, &self.placement);
        SimFabric::new(
            map,
            SimConfig {
                cost: presets::whale_cost(),
                overheads: self.overheads,
                tracer: self.tracer.clone(),
                ..SimConfig::default()
            },
        )
    }
}

/// Render a recorded trace as a per-(team, op, level) latency table —
/// the plain-text exporter of the trace pipeline (Chrome JSON being the
/// other); counts plus p50/p95/p99/max in microseconds.
pub fn trace_table(title: impl Into<String>, events: &[Event]) -> Table {
    let (headers, rows) = summary_rows(events);
    let mut t = Table::new(title, &headers);
    for row in &rows {
        t.row(row);
    }
    t
}

/// Result of one microbenchmark: modeled latency per operation.
#[derive(Clone, Copy, Debug)]
pub struct BenchStats {
    /// Makespan per operation in virtual nanoseconds (max over images).
    pub ns_per_op: f64,
    /// Images measured.
    pub images: usize,
    /// Occupied nodes.
    pub nodes: usize,
}

impl BenchStats {
    /// Latency in microseconds (the unit the paper plots).
    pub fn us_per_op(&self) -> f64 {
        self.ns_per_op / 1000.0
    }
}

/// Generic timing scaffold: run `op` `iters` times after `warmup` untimed
/// rounds, return the cross-image makespan per iteration.
fn measure<F>(mc: &MicroConfig, op: F) -> BenchStats
where
    F: Fn(&mut ImageCtx, usize) + Send + Sync + 'static,
{
    let fabric = mc.build();
    let nodes = fabric.image_map().occupied_nodes();
    let images = mc.images;
    let warmup = mc.warmup;
    let iters = mc.iters;
    let spans = run_on_fabric(fabric, mc.collectives, move |img| {
        for i in 0..warmup {
            op(img, i);
        }
        img.sync_all();
        let t0 = img.now_ns();
        for i in 0..iters {
            op(img, warmup + i);
        }
        let t1 = img.now_ns();
        (t0, t1)
    });
    let start = spans.iter().map(|s| s.0).min().expect("images");
    let end = spans.iter().map(|s| s.1).max().expect("images");
    BenchStats {
        ns_per_op: (end - start) as f64 / iters as f64,
        images,
        nodes,
    }
}

/// Barrier latency (the paper's barrier microbenchmark, EXP-B1/B2).
pub fn barrier_latency(mc: &MicroConfig) -> BenchStats {
    measure(mc, |img, _| img.sync_all())
}

/// All-to-all reduction (`co_sum`) latency over `elems` f64 elements
/// (EXP-R1).
pub fn allreduce_latency(mc: &MicroConfig, elems: usize) -> BenchStats {
    measure(mc, move |img, _| {
        let mut v = vec![1.0f64; elems];
        img.co_sum(&mut v);
        assert_eq!(v[0], img.num_images() as f64, "allreduce corrupted");
    })
}

/// One-to-all broadcast latency over `elems` f64 elements from image 1
/// (EXP-C1).
pub fn broadcast_latency(mc: &MicroConfig, elems: usize) -> BenchStats {
    measure(mc, move |img, i| {
        let mut v = vec![(i + 1) as f64; elems];
        img.co_broadcast(&mut v, 1);
        assert_eq!(v[0], (i + 1) as f64, "broadcast corrupted");
    })
}

/// Team-formation cost: split the initial team into `n_subteams`
/// round-robin subteams, measure `form_team` + one subteam barrier
/// (the suite's team benchmark, EXP-T1).
pub fn form_team_latency(mc: &MicroConfig, n_subteams: usize) -> BenchStats {
    measure(mc, move |img, _| {
        let color = ((img.this_image() - 1) % n_subteams) as i64;
        let mut team = img.form_team(color);
        img.sync_team(&mut team);
    })
}

/// Subteam-collective overlap: each half-team runs its own reductions —
/// the paper's motivating property that team collectives need no global
/// synchronization. Teams are formed once (untimed); the timed loop runs
/// concurrent per-half reductions.
pub fn overlapped_reduce_latency(mc: &MicroConfig, elems: usize) -> BenchStats {
    let fabric = mc.build();
    let nodes = fabric.image_map().occupied_nodes();
    let images = mc.images;
    let warmup = mc.warmup;
    let iters = mc.iters;
    let spans = run_on_fabric(fabric, mc.collectives, move |img| {
        let color = ((img.this_image() - 1) % 2) as i64;
        let team = img.form_team(color);
        let (_team, span) = img.change_team(team, |img| {
            for _ in 0..warmup {
                let mut v = vec![1.0f64; elems];
                img.co_sum(&mut v);
            }
            img.sync_all();
            let t0 = img.now_ns();
            for _ in 0..iters {
                let mut v = vec![1.0f64; elems];
                img.co_sum(&mut v);
            }
            (t0, img.now_ns())
        });
        span
    });
    let start = spans.iter().map(|s| s.0).min().expect("images");
    let end = spans.iter().map(|s| s.1).max().expect("images");
    BenchStats {
        ns_per_op: (end - start) as f64 / iters as f64,
        images,
        nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caf_runtime::{BarrierAlgo, BcastAlgo, ReduceAlgo};

    fn quick(images: usize, per_node: usize) -> MicroConfig {
        let mut mc = MicroConfig::whale(images, per_node);
        mc.warmup = 1;
        mc.iters = 3;
        mc
    }

    #[test]
    fn barrier_latency_positive_and_scales_with_images() {
        let small = barrier_latency(&quick(8, 8));
        let large = barrier_latency(&quick(64, 8));
        assert!(small.ns_per_op > 0.0);
        assert!(
            large.ns_per_op > small.ns_per_op,
            "64 images ({}) should cost more than 8 ({})",
            large.ns_per_op,
            small.ns_per_op
        );
        assert_eq!(small.nodes, 1);
        assert_eq!(large.nodes, 8);
    }

    #[test]
    fn tdlb_beats_dissemination_on_dense_nodes() {
        // The paper's headline effect at micro scale: 8 images/node.
        let cfg = |algo| {
            quick(32, 8).with_collectives(CollectiveConfig {
                barrier: algo,
                ..CollectiveConfig::default()
            })
        };
        let tdlb = barrier_latency(&cfg(BarrierAlgo::Tdlb));
        let dissem = barrier_latency(&cfg(BarrierAlgo::Dissemination));
        assert!(
            tdlb.ns_per_op < dissem.ns_per_op,
            "TDLB {} should beat dissemination {}",
            tdlb.ns_per_op,
            dissem.ns_per_op
        );
    }

    #[test]
    fn flat_placement_tdlb_matches_dissemination() {
        // 1 image/node: TDLB degenerates to pure dissemination (§V-A).
        let mut base = quick(16, 1);
        base.placement = caf_topology::Placement::Cyclic;
        let tdlb = barrier_latency(&base.clone().with_collectives(CollectiveConfig {
            barrier: BarrierAlgo::Tdlb,
            ..CollectiveConfig::default()
        }));
        let dissem = barrier_latency(&base.with_collectives(CollectiveConfig {
            barrier: BarrierAlgo::Dissemination,
            ..CollectiveConfig::default()
        }));
        let ratio = tdlb.ns_per_op / dissem.ns_per_op;
        assert!(
            (0.95..1.05).contains(&ratio),
            "flat TDLB/dissemination ratio {ratio} should be ~1"
        );
    }

    #[test]
    fn two_level_reduce_beats_flat_on_dense_nodes() {
        let cfg = |algo| {
            quick(32, 8).with_collectives(CollectiveConfig {
                reduce: algo,
                ..CollectiveConfig::default()
            })
        };
        let two = allreduce_latency(&cfg(ReduceAlgo::TwoLevel), 8);
        let flat = allreduce_latency(&cfg(ReduceAlgo::FlatRecursiveDoubling), 8);
        assert!(
            two.ns_per_op < flat.ns_per_op,
            "two-level {} should beat flat {}",
            two.ns_per_op,
            flat.ns_per_op
        );
    }

    #[test]
    fn two_level_bcast_beats_flat_binomial_on_dense_nodes() {
        let cfg = |algo| {
            quick(32, 8).with_collectives(CollectiveConfig {
                bcast: algo,
                ..CollectiveConfig::default()
            })
        };
        let two = broadcast_latency(&cfg(BcastAlgo::TwoLevel), 16);
        let flat = broadcast_latency(&cfg(BcastAlgo::FlatBinomial), 16);
        assert!(
            two.ns_per_op < flat.ns_per_op,
            "two-level {} should beat flat binomial {}",
            two.ns_per_op,
            flat.ns_per_op
        );
    }

    #[test]
    fn form_team_and_overlap_run() {
        let t = form_team_latency(&quick(16, 8), 4);
        assert!(t.ns_per_op > 0.0);
        let o = overlapped_reduce_latency(&quick(16, 8), 4);
        assert!(o.ns_per_op > 0.0);
    }

    #[test]
    fn thicker_stack_costs_more() {
        let thin = barrier_latency(&quick(16, 8).with_stack(presets::stacks::GASNET_IB));
        let thick = barrier_latency(&quick(16, 8).with_stack(presets::stacks::OPEN_MPI));
        assert!(thick.ns_per_op > thin.ns_per_op);
    }
}
