//! Survivable-fleet tests: chaos-killed images, shrinking team
//! re-formation, and epoch checkpoint/rollback — all on the deterministic
//! simulator, so every failure point is replayable.

use caf_fabric::ChaosConfig;
use caf_runtime::{run_surviving, CheckpointStore, ImageCtx, RunConfig};
use caf_topology::presets;
use std::sync::Arc;

fn killer(nodes: usize, cores: usize, images: usize, victim: usize, op: u64) -> RunConfig {
    RunConfig::sim_packed(presets::mini(nodes, cores), images).with_chaos(ChaosConfig {
        kill_image_at: Some((victim, op)),
        ..ChaosConfig::off(1)
    })
}

/// A restartable SPMD body: allocate state, roll back or initialize,
/// checkpoint once, grind through a long stretch of collectives (where the
/// chaos kill lands), and reduce to a final answer. Returns
/// `(total, generation, team size)`.
fn resilient_sum(img: &mut ImageCtx, store: &CheckpointStore) -> (u64, u64, usize) {
    let out = img.recovering(2, |img| {
        let co = img.coarray::<u64>(1);
        match img.restore(store)? {
            Some((_, payloads)) => co.restore_local_bytes(&payloads[0]),
            None => co.write_local(&[img.this_image() as u64 * 10]),
        }
        img.try_sync_all()?;
        if img.checkpoint_epoch() == 0 {
            img.checkpoint(store, |_| vec![co.local_bytes()])?;
        }
        // Long vulnerable stretch: ~120 collectives so any mid-run kill
        // lands here, after the epoch-1 checkpoint is globally complete.
        let mut pad = [0u64];
        for _ in 0..120 {
            img.try_co_sum(&mut pad)?;
        }
        let mut total = [co.read_local()[0]];
        img.try_co_sum(&mut total)?;
        Ok(total[0])
    });
    let total = out.expect("image is dead or recovery failed");
    (total, img.generation(), img.num_images())
}

#[test]
fn survivors_shrink_and_complete_after_mid_run_kill() {
    // 8 images on 2 nodes; image 3 (0-based 2) dies at its 400th fabric
    // call — deep inside the padded stretch of collectives.
    let cfg = killer(2, 4, 8, 2, 400);
    let collectives = cfg.collectives;
    let store = Arc::new(CheckpointStore::in_memory());
    let st = store.clone();
    let out = run_surviving(cfg.build_fabric(), collectives, move |img| {
        resilient_sum(img, &st)
    });
    let images: Vec<usize> = out.iter().map(|(i, _)| *i).collect();
    assert_eq!(
        images,
        vec![1, 2, 4, 5, 6, 7, 8],
        "exactly the survivors complete"
    );
    for (_, (total, generation, team)) in &out {
        // Epoch 1 checkpointed 10·g for g ∈ 1..=8; the rollback drops the
        // victim's 30: 360 − 30.
        assert_eq!(*total, 330, "restored sum over the survivor team");
        assert_eq!(*generation, 1, "one heal");
        assert_eq!(*team, 7, "dense renumbering over 7 survivors");
    }
}

#[test]
fn leader_death_reforms_under_a_new_leader() {
    // Image 1 (0-based 0) is the bootstrap leader of every control
    // barrier; its death forces leader re-election (members[0] moves).
    let cfg = killer(2, 4, 8, 0, 400);
    let collectives = cfg.collectives;
    let store = Arc::new(CheckpointStore::in_memory());
    let st = store.clone();
    let out = run_surviving(cfg.build_fabric(), collectives, move |img| {
        resilient_sum(img, &st)
    });
    let images: Vec<usize> = out.iter().map(|(i, _)| *i).collect();
    assert_eq!(images, vec![2, 3, 4, 5, 6, 7, 8]);
    for (_, (total, _, team)) in &out {
        assert_eq!(*total, 350, "360 − leader's 10");
        assert_eq!(*team, 7);
    }
}

#[test]
fn kill_without_checkpoints_restarts_with_dense_renumbering() {
    // No checkpoints taken: restore resolves "no complete epoch" and the
    // survivors re-initialize from scratch with their *dense* renumbered
    // indices — the same answer as an undisturbed 7-image run.
    let cfg = killer(2, 4, 8, 5, 300);
    let collectives = cfg.collectives;
    let store = Arc::new(CheckpointStore::in_memory());
    let st = store.clone();
    let out = run_surviving(cfg.build_fabric(), collectives, move |img| {
        let out = img.recovering(2, |img| {
            let co = img.coarray::<u64>(1);
            match img.restore(&st)? {
                Some((_, payloads)) => co.restore_local_bytes(&payloads[0]),
                None => co.write_local(&[img.this_image() as u64 * 10]),
            }
            img.try_sync_all()?;
            let mut pad = [0u64];
            for _ in 0..120 {
                img.try_co_sum(&mut pad)?;
            }
            let mut total = [co.read_local()[0]];
            img.try_co_sum(&mut total)?;
            Ok(total[0])
        });
        (
            out.expect("image is dead or recovery failed"),
            img.num_images(),
        )
    });
    assert_eq!(out.len(), 7);
    for (_, (total, team)) in &out {
        assert_eq!(*total, 280, "10·(1+…+7) under dense renumbering");
        assert_eq!(*team, 7);
    }
}

/// Pure per-image state recurrence used by the atomicity drill: the value
/// image `g` (1-based global) holds *after* epoch `e` is checkpointed.
fn trajectory(g: u64, e: u64) -> u64 {
    let mut s = 100 * g;
    for _ in 0..e {
        s = s.wrapping_mul(3).wrapping_add(7);
    }
    s
}

#[test]
fn kill_during_checkpoint_rolls_back_never_torn() {
    const LAST: u64 = 30;
    // Back-to-back checkpoints dominate the op stream, so op 300 lands
    // inside some checkpoint's fence/commit/complete window.
    let cfg = killer(2, 4, 8, 4, 300);
    let collectives = cfg.collectives;
    let store = Arc::new(CheckpointStore::in_memory());
    let st = store.clone();
    let out = run_surviving(cfg.build_fabric(), collectives, move |img| {
        let g = img.this_image() as u64; // global: captured before any shrink
        let ok = img.recovering(2, |img| {
            let co = img.coarray::<u64>(1);
            match img.restore(&st)? {
                Some((_, payloads)) => co.restore_local_bytes(&payloads[0]),
                None => co.write_local(&[100 * g]),
            }
            img.try_sync_all()?;
            while img.checkpoint_epoch() < LAST {
                let s = co.read_local()[0];
                co.write_local(&[s.wrapping_mul(3).wrapping_add(7)]);
                img.checkpoint(&st, |_| vec![co.local_bytes()])?;
            }
            let mut total = [co.read_local()[0]];
            img.try_co_sum(&mut total)?;
            Ok(total[0])
        });
        ok.expect("image is dead or recovery failed")
    });
    assert_eq!(out.len(), 7);
    // Every survivor re-evolved from the SAME rolled-back epoch: the final
    // sum is exactly the analytic trajectory sum over survivors. A torn
    // restore (images resuming from different epochs) cannot produce it.
    let expected: u64 = (1..=8u64)
        .filter(|&g| g != 5)
        .fold(0u64, |a, g| a.wrapping_add(trajectory(g, LAST)));
    for (_, total) in &out {
        assert_eq!(*total, expected, "rollback must be epoch-consistent");
    }
}

#[test]
fn recovery_runs_are_deterministic_and_replayable() {
    let run_once = || {
        let cfg = killer(2, 4, 8, 2, 400);
        let collectives = cfg.collectives;
        let store = Arc::new(CheckpointStore::in_memory());
        let st = store.clone();
        run_surviving(cfg.build_fabric(), collectives, move |img| {
            resilient_sum(img, &st)
        })
    };
    assert_eq!(run_once(), run_once(), "same seed, same kill, same answers");
}

#[test]
fn kill_under_seeded_chaos_jitter_still_recovers() {
    // Layer the kill on top of the canonical chaos perturbation (as the
    // caf-check drill does): recovery must hold on perturbed schedules too.
    for seed in [3u64, 11, 42] {
        let cfg = RunConfig::sim_packed(presets::mini(2, 4), 8).with_chaos(ChaosConfig {
            kill_image_at: Some((6, 350)),
            ..ChaosConfig::from_seed(seed)
        });
        let collectives = cfg.collectives;
        let store = Arc::new(CheckpointStore::in_memory());
        let st = store.clone();
        let out = run_surviving(cfg.build_fabric(), collectives, move |img| {
            resilient_sum(img, &st)
        });
        assert_eq!(out.len(), 7, "seed {seed}");
        for (_, (total, _, team)) in &out {
            assert_eq!(*total, 290, "360 − victim's 70 (seed {seed})");
            assert_eq!(*team, 7);
        }
    }
}

#[test]
fn unkilled_run_with_try_surface_matches_plain_run() {
    // The fallible surface on a healthy fabric is a no-op wrapper.
    let cfg = RunConfig::sim_packed(presets::mini(2, 4), 8);
    let collectives = cfg.collectives;
    let store = Arc::new(CheckpointStore::in_memory());
    let st = store.clone();
    let out = run_surviving(cfg.build_fabric(), collectives, move |img| {
        resilient_sum(img, &st)
    });
    assert_eq!(out.len(), 8);
    for (_, (total, generation, team)) in &out {
        assert_eq!(*total, 360);
        assert_eq!(*generation, 0, "no heal on an undisturbed run");
        assert_eq!(*team, 8);
    }
}

#[test]
fn try_collectives_report_errors_instead_of_panicking() {
    // Whole-body check of error conversion: after a kill, every try_* on a
    // survivor returns Err(Poisoned) until the team is re-formed.
    let cfg = killer(1, 4, 4, 3, 120);
    let collectives = cfg.collectives;
    let out = run_surviving(cfg.build_fabric(), collectives, move |img| {
        let r = img.recovering(1, |img| {
            let mut pad = [1u64];
            for _ in 0..200 {
                img.try_co_sum(&mut pad)?;
            }
            Ok(())
        });
        match r {
            Ok(()) => {
                // Survivor path: the first failure was caught as a
                // RecoveryError (not a panic) and the retry completed.
                assert!(matches!(img.fabric().health(), Ok(())));
                img.num_images()
            }
            Err(e) => panic!("unrecovered: {e}"),
        }
    });
    assert_eq!(out.len(), 3);
    for (_, team) in &out {
        assert_eq!(*team, 3);
    }
}

mod ckpt_props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        // Interleave one-sided puts with checkpoints and assert the stored
        // bytes equal the fenced snapshot at every epoch — the store/fence
        // contract, via the public protocol (fault interleavings are
        // covered by the kill drills above).
        #[test]
        fn checkpoint_restore_reflects_fenced_state(
            writes in proptest::collection::vec(0u64..1000, 1..5),
            elems in 1usize..4,
        ) {
            let cfg = RunConfig::sim_packed(presets::mini(2, 2), 4);
            let collectives = cfg.collectives;
            let store = Arc::new(CheckpointStore::in_memory());
            let st = store.clone();
            let writes = Arc::new(writes.clone());
            let out = run_surviving(cfg.build_fabric(), collectives, move |img| {
                let me = img.this_image();
                let n = img.num_images();
                let co = img.coarray::<u64>(elems);
                let mut expect = Vec::new();
                for (round, w) in writes.iter().enumerate() {
                    // Everyone sends a round-tagged value to its right
                    // neighbor, then checkpoints.
                    let right = me % n + 1;
                    let val = w + me as u64 + round as u64 * 7;
                    co.put(right, round % elems, &[val]);
                    let epoch = img
                        .checkpoint(&st, |_| vec![co.local_bytes()])
                        .expect("undisturbed checkpoint");
                    // The fence ran inside checkpoint: my cell now holds
                    // my LEFT neighbor's write of this round.
                    let left = if me == 1 { n } else { me - 1 };
                    let want = w + left as u64 + round as u64 * 7;
                    expect.push((epoch, round % elems, want));
                }
                // Every epoch's stored payload equals the fenced state.
                for &(epoch, idx, want) in &expect {
                    let payloads = st.load(me - 1, epoch).expect("epoch committed");
                    let bytes = &payloads[0];
                    let cell =
                        u64::from_ne_bytes(bytes[idx * 8..idx * 8 + 8].try_into().unwrap());
                    assert_eq!(cell, want, "epoch {epoch} snapshot differs from fenced state");
                }
                // And a live restore returns the last epoch's bytes.
                let (epoch, payloads) =
                    img.restore(&st).expect("restore").expect("at least one epoch");
                assert_eq!(epoch, writes.len() as u64);
                assert_eq!(payloads[0], co.local_bytes());
                0u64
            });
            prop_assert_eq!(out.len(), 4);
        }
    }
}
