//! EXP-T1 — the Teams Microbenchmark suite itself (§V-A setup): team
//! formation cost and the overlap property that motivates teams (§II):
//!
//! > "using teams, many collective operations can be overlapped; these
//! > collectives will work on just a subset of images; no global
//! > synchronizations among all the images are thus needed."
//!
//! The overlap table compares a reduction on the full team against two
//! reductions running concurrently on disjoint half-teams: with working
//! subteam isolation, the paired half-team reductions cost *less* than the
//! full-team one (smaller teams, no global sync).

use caf_bench::{print_cost_preamble, scaled};
use caf_microbench::{
    allreduce_latency, form_team_latency, overlapped_reduce_latency, report, MicroConfig, Table,
};

fn main() {
    print_cost_preamble("EXP-T1");
    let iters = scaled(10, 3);
    let sizes: Vec<usize> = if caf_bench::quick_mode() {
        vec![16, 64]
    } else {
        vec![16, 64, 128, 256]
    };

    let mut t1 = Table::new(
        "EXP-T1a: form_team + sync_team cost, 8 images/node (modeled us)",
        &["images(nodes)", "2 subteams", "4 subteams", "8 subteams"],
    );
    for &n in &sizes {
        let mut row = vec![format!("{}({})", n, n / 8)];
        for &k in &[2usize, 4, 8] {
            let mut mc = MicroConfig::whale(n, 8);
            mc.iters = iters;
            row.push(report::us(form_team_latency(&mc, k).ns_per_op));
        }
        t1.row(&row);
    }
    t1.note("includes the id-exchange allgather through the parent team");
    t1.print();

    let mut t2 = Table::new(
        "EXP-T1b: subteam overlap — full-team co_sum vs two overlapped half-team co_sums (modeled us)",
        &["images(nodes)", "full team", "2 half-teams (overlapped)"],
    );
    for &n in &sizes {
        let mut mc = MicroConfig::whale(n, 8);
        mc.iters = iters;
        let full = allreduce_latency(&mc, 8).ns_per_op;
        let mut mc = MicroConfig::whale(n, 8);
        mc.iters = iters;
        let overlapped = overlapped_reduce_latency(&mc, 8).ns_per_op;
        t2.row(&[
            format!("{}({})", n, n / 8),
            report::us(full),
            report::us(overlapped),
        ]);
    }
    t2.note("half-team reductions proceed with no global synchronization");
    t2.print();
}
