//! A minimal recursive-descent JSON reader — just enough for the bench
//! result files this repo emits (objects, arrays, strings without exotic
//! escapes, numbers, booleans, null). No external crates by design: the
//! workspace builds offline.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (kept as f64 — bench latencies and byte counts
    /// both fit exactly).
    Num(f64),
    /// A string (standard escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object field access (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    out.push(match esc {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        other => return Err(format!("unsupported escape \\{}", other as char)),
                    });
                }
                Some(_) => {
                    // Advance over one UTF-8 scalar (the input is a &str,
                    // so boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number {s:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny"}, "d": true, "e": null}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(2.5)
        );
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("e"), Some(&Value::Null));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(parse("{} extra").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Value::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Obj(BTreeMap::new()));
    }
}
