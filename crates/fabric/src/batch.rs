//! Per-destination aggregation for the active-message tier.
//!
//! [`Batcher`] is deliberately fabric-free: it owns nothing but op
//! buffers and a [`AmPolicy`], so its ordering contract — per-destination
//! program order, fences drain everything — can be property-tested
//! against a naive unbatched replay without spinning up a fabric (see the
//! proptest module at the bottom). The fabric-facing sender that feeds it
//! lives in [`crate::am`].

use crate::am::AmOp;
use caf_topology::CostParams;
use std::collections::BTreeMap;

/// Flush thresholds of the active-message batcher.
///
/// A destination buffer is flushed when it holds [`AmPolicy::batch_ops`]
/// ops or [`AmPolicy::batch_bytes`] encoded bytes, when it has aged past
/// [`AmPolicy::flush_age_ns`] at the next inject, or explicitly
/// ([`crate::am::Am::flush`] / [`crate::am::Am::quiet`], and every
/// blocking wait in the collectives).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AmPolicy {
    /// Byte budget per destination buffer (encoded op bytes).
    pub batch_bytes: usize,
    /// Op-count budget per destination buffer. `1` disables aggregation —
    /// every op ships alone, the unbatched reference behavior.
    pub batch_ops: usize,
    /// Age bound: at inject time, any *other* destination whose oldest
    /// buffered op is more than this many ns old is drained too, bounding
    /// the latency a buffered op can suffer from an idle destination.
    pub flush_age_ns: u64,
}

/// Read a `usize` environment override.
fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

impl AmPolicy {
    /// Derive thresholds from the communication cost model, then apply the
    /// `CAF_AM_BATCH_BYTES` / `CAF_AM_BATCH_OPS` / `CAF_AM_FLUSH_US`
    /// environment overrides.
    ///
    /// The defaults follow the same logic as the LogGP crossovers: keep
    /// aggregating while the per-op injection overhead (`o_inter + gap_nic`)
    /// dominates the marginal payload cost, and never delay a buffered op
    /// by more than a couple of wire latencies.
    pub fn from_cost(cost: &CostParams) -> Self {
        let per_op = (cost.o_inter_ns + cost.gap_nic_ns).max(1);
        // Ops worth coalescing: one wire latency's worth of injection
        // overheads, clamped to a sane window.
        let batch_ops = ((cost.l_inter_ns / per_op) as usize).clamp(8, 64);
        let batch_bytes = env_usize("CAF_AM_BATCH_BYTES").unwrap_or(4096);
        let batch_ops = env_usize("CAF_AM_BATCH_OPS").unwrap_or(batch_ops);
        let flush_age_ns = match env_usize("CAF_AM_FLUSH_US") {
            Some(us) => us as u64 * 1_000,
            None => 2 * cost.l_inter_ns.max(1_000),
        };
        Self {
            batch_bytes,
            batch_ops,
            flush_age_ns,
        }
    }

    /// The unbatched reference policy: every op flushes immediately. The
    /// differential oracle and the bench's unbatched rows use this.
    pub fn unbatched() -> Self {
        Self {
            batch_bytes: 0,
            batch_ops: 1,
            flush_age_ns: 0,
        }
    }
}

impl Default for AmPolicy {
    fn default() -> Self {
        Self::from_cost(&CostParams::default())
    }
}

/// One destination's pending ops.
#[derive(Debug, Default)]
struct DestBuf {
    ops: Vec<AmOp>,
    /// Encoded bytes of `ops` (tracked incrementally).
    bytes: usize,
    /// Inject time of the oldest buffered op (age-based drain key).
    first_ns: u64,
}

/// Per-destination aggregation buffers. Pure data structure — see the
/// module docs. Destinations are plain `usize` image ranks so the batcher
/// never needs a fabric or an image map.
#[derive(Debug, Default)]
pub struct Batcher {
    policy: AmPolicy,
    /// `BTreeMap` (not hash) so drain order over destinations is
    /// deterministic — a flush-all must replay identically run-to-run for
    /// the simulator's oracle guarantee.
    dests: BTreeMap<usize, DestBuf>,
    fused: u64,
}

impl Batcher {
    /// A batcher with the given flush policy.
    pub fn new(policy: AmPolicy) -> Self {
        Self {
            policy,
            dests: BTreeMap::new(),
            fused: 0,
        }
    }

    /// The policy in effect.
    pub fn policy(&self) -> &AmPolicy {
        &self.policy
    }

    /// Cumulative put+flag pairs fused into a single [`AmOp::PutFlag`].
    pub fn fused(&self) -> u64 {
        self.fused
    }

    /// Total ops currently buffered across all destinations.
    pub fn pending_ops(&self) -> usize {
        self.dests.values().map(|d| d.ops.len()).sum()
    }

    /// True when nothing is buffered anywhere.
    pub fn is_empty(&self) -> bool {
        self.dests.values().all(|d| d.ops.is_empty())
    }

    /// Buffer `op` for `dst` (injected at `now_ns`). Returns the
    /// destination's whole batch when this push tripped a threshold; the
    /// caller must deliver it immediately to preserve program order.
    ///
    /// A `FlagAdd` that directly follows a `Put` in the same buffer is
    /// fused into one [`AmOp::PutFlag`] — the "payload plus doorbell"
    /// idiom of every collective, collapsed to a single wire op.
    pub fn push(&mut self, dst: usize, op: AmOp, now_ns: u64) -> Option<Vec<AmOp>> {
        let buf = self.dests.entry(dst).or_default();
        if buf.ops.is_empty() {
            buf.first_ns = now_ns;
        }
        let fused = match (&op, buf.ops.last()) {
            (AmOp::FlagAdd { flag, delta }, Some(AmOp::Put { .. })) => {
                let (flag, delta) = (*flag, *delta);
                let Some(AmOp::Put { seg, off, data }) = buf.ops.pop() else {
                    unreachable!("matched Put above");
                };
                buf.bytes -= AmOp::Put {
                    seg,
                    off,
                    data: Vec::new(),
                }
                .wire_len();
                // The placeholder above under-counts by the data length;
                // recompute from the fused op below instead.
                buf.bytes -= data.len();
                let fused_op = AmOp::PutFlag {
                    seg,
                    off,
                    data,
                    flag,
                    delta,
                };
                buf.bytes += fused_op.wire_len();
                buf.ops.push(fused_op);
                self.fused += 1;
                true
            }
            _ => false,
        };
        if !fused {
            buf.bytes += op.wire_len();
            buf.ops.push(op);
        }
        if buf.ops.len() >= self.policy.batch_ops || buf.bytes >= self.policy.batch_bytes.max(1) {
            return self.take(dst);
        }
        None
    }

    /// Remove and return `dst`'s pending batch, if any.
    pub fn take(&mut self, dst: usize) -> Option<Vec<AmOp>> {
        let buf = self.dests.get_mut(&dst)?;
        if buf.ops.is_empty() {
            return None;
        }
        buf.bytes = 0;
        Some(std::mem::take(&mut buf.ops))
    }

    /// Destinations (ascending) whose oldest buffered op was injected more
    /// than `policy.flush_age_ns` before `now_ns`.
    pub fn stale(&self, now_ns: u64) -> Vec<usize> {
        self.dests
            .iter()
            .filter(|(_, b)| {
                !b.ops.is_empty() && now_ns.saturating_sub(b.first_ns) > self.policy.flush_age_ns
            })
            .map(|(&d, _)| d)
            .collect()
    }

    /// Drain every destination, in ascending destination order — the
    /// explicit fence ([`crate::am::Am::flush`]).
    pub fn drain_all(&mut self) -> Vec<(usize, Vec<AmOp>)> {
        let mut out = Vec::new();
        for (&dst, buf) in self.dests.iter_mut() {
            if !buf.ops.is_empty() {
                buf.bytes = 0;
                out.push((dst, std::mem::take(&mut buf.ops)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seg::{FlagId, SegmentId};

    fn put(v: u8) -> AmOp {
        AmOp::Put {
            seg: SegmentId(0),
            off: v as usize,
            data: vec![v; 8],
        }
    }

    fn flag(delta: u64) -> AmOp {
        AmOp::FlagAdd {
            flag: FlagId(2),
            delta,
        }
    }

    fn batching() -> AmPolicy {
        AmPolicy {
            batch_bytes: 1 << 20,
            batch_ops: 64,
            flush_age_ns: u64::MAX / 2,
        }
    }

    #[test]
    fn op_threshold_flushes_exactly_at_the_budget() {
        let mut b = Batcher::new(AmPolicy {
            batch_ops: 3,
            ..batching()
        });
        assert!(b.push(1, put(1), 0).is_none());
        assert!(b.push(1, put(2), 0).is_none());
        let batch = b.push(1, put(3), 0).expect("third op trips the budget");
        assert_eq!(batch.len(), 3);
        assert!(b.is_empty());
    }

    #[test]
    fn byte_threshold_flushes() {
        let small = AmOp::Put {
            seg: SegmentId(0),
            off: 0,
            data: vec![0; 8],
        }
        .wire_len();
        let mut b = Batcher::new(AmPolicy {
            batch_bytes: 2 * small,
            ..batching()
        });
        assert!(b.push(0, put(1), 0).is_none());
        assert!(b.push(0, put(2), 0).is_some(), "two ops reach the budget");
    }

    #[test]
    fn unbatched_policy_ships_every_op_alone() {
        let mut b = Batcher::new(AmPolicy::unbatched());
        for k in 0..4 {
            let batch = b.push(2, put(k), 0).expect("every push flushes");
            assert_eq!(batch.len(), 1);
        }
    }

    #[test]
    fn destinations_do_not_share_buffers() {
        let mut b = Batcher::new(batching());
        b.push(1, put(1), 0);
        b.push(2, put(2), 0);
        assert_eq!(b.take(1).unwrap().len(), 1);
        assert_eq!(b.take(2).unwrap().len(), 1);
        assert!(b.take(3).is_none());
    }

    #[test]
    fn put_then_flag_fuses() {
        let mut b = Batcher::new(batching());
        b.push(1, put(7), 0);
        b.push(1, flag(1), 0);
        assert_eq!(b.fused(), 1);
        let batch = b.take(1).unwrap();
        assert_eq!(batch.len(), 1);
        assert!(matches!(&batch[0], AmOp::PutFlag { delta: 1, .. }));
    }

    #[test]
    fn flag_without_preceding_put_does_not_fuse() {
        let mut b = Batcher::new(batching());
        b.push(1, flag(1), 0);
        b.push(1, flag(1), 0);
        assert_eq!(b.fused(), 0);
        assert_eq!(b.take(1).unwrap().len(), 2);
    }

    #[test]
    fn fused_bytes_stay_consistent() {
        // After a fuse, the tracked byte count must equal the encoded size
        // of the fused buffer (the byte budget reads it).
        let mut b = Batcher::new(batching());
        b.push(1, put(7), 0);
        b.push(1, flag(1), 0);
        let expect: usize = b.dests[&1].ops.iter().map(|o| o.wire_len()).sum();
        assert_eq!(b.dests[&1].bytes, expect);
    }

    #[test]
    fn stale_reports_aged_destinations_only() {
        let mut b = Batcher::new(AmPolicy {
            flush_age_ns: 100,
            ..batching()
        });
        b.push(1, put(1), 0);
        b.push(2, put(2), 90);
        assert_eq!(b.stale(150), vec![1]);
        assert_eq!(b.stale(50), Vec::<usize>::new());
    }

    #[test]
    fn drain_all_is_ordered_and_empties() {
        let mut b = Batcher::new(batching());
        for d in [5usize, 1, 3] {
            b.push(d, put(d as u8), 0);
        }
        let drained = b.drain_all();
        let dests: Vec<usize> = drained.iter().map(|(d, _)| *d).collect();
        assert_eq!(dests, vec![1, 3, 5], "deterministic ascending order");
        assert!(b.is_empty());
        assert!(b.drain_all().is_empty());
    }
}

/// The batcher's ordering contract, property-tested: arbitrary
/// interleavings of injects, per-destination flushes, and full fences must
/// deliver — once flattened per destination and with fusions split back
/// apart — exactly the sequence a naive unbatched sender would have
/// shipped, and every fence must leave nothing buffered.
#[cfg(test)]
mod proptests {
    use super::*;
    use crate::seg::{FlagId, SegmentId};
    use proptest::prelude::*;

    /// One step of an arbitrary sender schedule over a handful of
    /// destinations.
    #[derive(Clone, Debug)]
    enum Step {
        /// Buffer a small put for `dst` carrying `val`.
        Put { dst: usize, val: u8 },
        /// Buffer a flag bump for `dst`.
        Flag { dst: usize, delta: u64 },
        /// Explicitly flush one destination (the `Am::put_nb` ordering
        /// path flushes like this before a direct op).
        FlushDst(usize),
        /// Fence: drain every destination — `flush`/`quiet`, and what
        /// every blocking wait in the collectives does first.
        Fence,
    }

    fn step() -> impl Strategy<Value = Step> {
        // The vendored proptest shim has no `prop_oneof`; weight the
        // variants by hand through a selector range (4:4:1:1).
        (0u8..10, 0usize..4, any::<u8>()).prop_map(|(sel, dst, val)| match sel {
            0..=3 => Step::Put { dst, val },
            4..=7 => Step::Flag {
                dst,
                delta: 1 + val as u64 % 4,
            },
            8 => Step::FlushDst(dst),
            _ => Step::Fence,
        })
    }

    fn mk_op(step: &Step) -> Option<AmOp> {
        match step {
            Step::Put { val, .. } => Some(AmOp::Put {
                seg: SegmentId(0),
                off: *val as usize,
                data: vec![*val; 8],
            }),
            Step::Flag { delta, .. } => Some(AmOp::FlagAdd {
                flag: FlagId(2),
                delta: *delta,
            }),
            _ => None,
        }
    }

    /// Split fused `PutFlag` ops back into the `Put` + `FlagAdd` pair they
    /// were built from, so delivered sequences compare against the
    /// unbatched oracle op-for-op.
    fn normalize(ops: &[AmOp]) -> Vec<AmOp> {
        let mut out = Vec::with_capacity(ops.len() + 4);
        for op in ops {
            match op {
                AmOp::PutFlag {
                    seg,
                    off,
                    data,
                    flag,
                    delta,
                } => {
                    out.push(AmOp::Put {
                        seg: *seg,
                        off: *off,
                        data: data.clone(),
                    });
                    out.push(AmOp::FlagAdd {
                        flag: *flag,
                        delta: *delta,
                    });
                }
                other => out.push(other.clone()),
            }
        }
        out
    }

    /// Run `steps` through a batcher (mimicking the `Am` sender's drive
    /// loop: threshold flush on push, stale drain after, explicit flushes
    /// and fences), recording every delivered batch in order.
    fn run_model(policy: AmPolicy, steps: &[Step]) -> (Vec<(usize, Vec<AmOp>)>, Vec<AmOp>) {
        let mut b = Batcher::new(policy);
        let mut delivered: Vec<(usize, Vec<AmOp>)> = Vec::new();
        let mut injected: Vec<AmOp> = Vec::new();
        for (now, s) in steps.iter().enumerate() {
            match s {
                Step::Put { dst, .. } | Step::Flag { dst, .. } => {
                    let op = mk_op(s).unwrap();
                    injected.push(op.clone());
                    if let Some(batch) = b.push(*dst, op, now as u64) {
                        delivered.push((*dst, batch));
                    }
                    for d in b.stale(now as u64) {
                        if let Some(batch) = b.take(d) {
                            delivered.push((d, batch));
                        }
                    }
                }
                Step::FlushDst(dst) => {
                    if let Some(batch) = b.take(*dst) {
                        delivered.push((*dst, batch));
                    }
                }
                Step::Fence => {
                    delivered.extend(b.drain_all());
                    assert!(b.is_empty(), "a fence must leave nothing buffered");
                    let shipped: usize =
                        delivered.iter().map(|(_, ops)| normalize(ops).len()).sum();
                    assert_eq!(
                        shipped,
                        injected.len(),
                        "every op injected before a fence must have been delivered"
                    );
                }
            }
        }
        delivered.extend(b.drain_all());
        (delivered, injected)
    }

    /// What a naive unbatched sender ships to `dst`: the injected ops for
    /// that destination, in program order, unfused.
    fn oracle_for(steps: &[Step], dst: usize) -> Vec<AmOp> {
        steps
            .iter()
            .filter(
                |s| matches!(s, Step::Put { dst: d, .. } | Step::Flag { dst: d, .. } if *d == dst),
            )
            .filter_map(mk_op)
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn flattened_delivery_matches_the_unbatched_oracle(
            steps in proptest::collection::vec(step(), 1..80),
            batch_ops in 1usize..8,
            batch_bytes in 16usize..256,
            age_sel in 0u8..3,
        ) {
            // Age bound: always stale, stale after a few steps, never.
            let flush_age_ns = [0u64, 3, u64::MAX / 2][age_sel as usize];
            let policy = AmPolicy { batch_bytes, batch_ops, flush_age_ns };
            let (delivered, injected) = run_model(policy, &steps);
            // Nothing lost, nothing duplicated, overall.
            let shipped: usize = delivered.iter().map(|(_, ops)| normalize(ops).len()).sum();
            prop_assert_eq!(shipped, injected.len());
            // Per destination, the flattened normalized sequence is
            // exactly the program-order injection sequence.
            for dst in 0..4 {
                let got: Vec<AmOp> = delivered
                    .iter()
                    .filter(|(d, _)| *d == dst)
                    .flat_map(|(_, ops)| normalize(ops))
                    .collect();
                prop_assert_eq!(
                    got,
                    oracle_for(&steps, dst),
                    "per-destination program order broken for dst {}",
                    dst
                );
            }
        }

        #[test]
        fn unbatched_policy_is_the_identity_schedule(
            steps in proptest::collection::vec(step(), 1..40),
        ) {
            // batch_ops = 1: every delivered batch holds exactly the one
            // op just injected — the reference schedule the differential
            // oracle runs with.
            let (delivered, injected) = run_model(AmPolicy::unbatched(), &steps);
            let flat: Vec<AmOp> = delivered.into_iter().flat_map(|(_, ops)| ops).collect();
            prop_assert_eq!(flat, injected);
        }
    }
}
