//! Intranode-set and leader computation — the heart of the paper's
//! methodology (§IV-A):
//!
//! > "Our methodology will thus rely on detecting the images within a team
//! > that run locally on the same node (intranode set), assigning a leader
//! > for them and handling them with an intra-node strategy. After that, the
//! > leaders, which are on different nodes, are handled in a remote manner."
//!
//! A [`HierarchyView`] is computed once per team (at `form_team` time) from
//! the team's member list and the launch [`ImageMap`], and then consulted by
//! every two-level collective. All ranks in a view are **team-relative**
//! (0-based position in the team's member list), because that is the index
//! space collective algorithms operate in.

use crate::ids::{NodeId, ProcId, SocketId};
use crate::placement::ImageMap;
use serde::{Deserialize, Serialize};

/// The images of one team that share one node, with their elected leader.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntranodeSet {
    /// The node hosting this set.
    pub node: NodeId,
    /// Team-relative ranks of the members, in ascending rank order.
    pub ranks: Vec<usize>,
    /// Team-relative rank of the leader (always `ranks[0]`: the
    /// lowest-ranked co-located image, matching the OpenUH convention).
    pub leader: usize,
}

impl IntranodeSet {
    /// Members excluding the leader (the paper's "slaves").
    pub fn slaves(&self) -> &[usize] {
        &self.ranks[1..]
    }

    /// Number of images in the set.
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// True when the leader is the only member.
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }
}

/// The full two-level decomposition of one team.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyView {
    sets: Vec<IntranodeSet>,
    /// team rank → index into `sets`.
    set_of: Vec<usize>,
    /// Team-relative ranks of all leaders, one per occupied node, in set order.
    leaders: Vec<usize>,
    /// team rank → position of that image's leader in `leaders` (i.e. the
    /// "leader rank" used by the inter-node dissemination stage).
    leader_index_of: Vec<usize>,
    /// team rank → (node, socket) for the multi-level extension.
    sockets: Vec<(NodeId, SocketId)>,
}

impl HierarchyView {
    /// Decompose a team given its member list (`members[r]` = process of
    /// team rank `r`) and the launch map.
    ///
    /// # Panics
    /// Panics if `members` is empty or contains a process outside the map.
    pub fn build(map: &ImageMap, members: &[ProcId]) -> Self {
        assert!(!members.is_empty(), "a team needs at least one image");
        // Group team ranks by node, preserving rank order within each node.
        // Sets are ordered by first-appearing rank so that set order (and
        // hence leader order) is deterministic and independent of NodeId
        // numbering.
        let mut sets: Vec<IntranodeSet> = Vec::new();
        let mut set_of = vec![usize::MAX; members.len()];
        let mut sockets = Vec::with_capacity(members.len());
        for (rank, &p) in members.iter().enumerate() {
            assert!(
                p.index() < map.n_images(),
                "team member {p:?} outside launch of {} images",
                map.n_images()
            );
            let loc = map.location(p);
            sockets.push((loc.node, loc.socket));
            match sets.iter().position(|s| s.node == loc.node) {
                Some(idx) => {
                    set_of[rank] = idx;
                    sets[idx].ranks.push(rank);
                }
                None => {
                    set_of[rank] = sets.len();
                    sets.push(IntranodeSet {
                        node: loc.node,
                        ranks: vec![rank],
                        leader: rank,
                    });
                }
            }
        }
        let leaders: Vec<usize> = sets.iter().map(|s| s.leader).collect();
        let mut leader_index_of = vec![usize::MAX; members.len()];
        for (rank, &set_idx) in set_of.iter().enumerate() {
            leader_index_of[rank] = set_idx; // sets and leaders share indices
        }
        Self {
            sets,
            set_of,
            leaders,
            leader_index_of,
            sockets,
        }
    }

    /// All intranode sets, one per node that hosts at least one team member.
    pub fn sets(&self) -> &[IntranodeSet] {
        &self.sets
    }

    /// The intranode set containing team rank `rank`.
    pub fn set_for(&self, rank: usize) -> &IntranodeSet {
        &self.sets[self.set_of[rank]]
    }

    /// Team-relative rank of the leader for team rank `rank` — the paper's
    /// `get_leader(team, me)`.
    pub fn leader_of(&self, rank: usize) -> usize {
        self.sets[self.set_of[rank]].leader
    }

    /// True when `rank` is its node's leader.
    pub fn is_leader(&self, rank: usize) -> bool {
        self.leader_of(rank) == rank
    }

    /// Team ranks of all node leaders, in deterministic set order.
    pub fn leaders(&self) -> &[usize] {
        &self.leaders
    }

    /// Position of `rank`'s leader within [`Self::leaders`] — the rank used
    /// in the inter-node dissemination stage. For a leader this is its own
    /// dissemination rank.
    pub fn leader_index_of(&self, rank: usize) -> usize {
        self.leader_index_of[rank]
    }

    /// Number of occupied nodes.
    pub fn n_nodes(&self) -> usize {
        self.sets.len()
    }

    /// Total team size.
    pub fn n_ranks(&self) -> usize {
        self.set_of.len()
    }

    /// True when no two team members share a node — the "flat hierarchy"
    /// case of §V-A, where the two-level algorithm must gracefully degrade
    /// to pure dissemination.
    pub fn is_flat(&self) -> bool {
        self.sets.iter().all(|s| s.ranks.len() == 1)
    }

    /// True when the whole team lives on one node (pure shared memory).
    pub fn is_single_node(&self) -> bool {
        self.sets.len() == 1
    }

    /// Group the members of each intranode set by socket, for the paper's
    /// future-work multi-level hierarchy (§VII). Returns, for the set
    /// containing `rank`, the socket groups as lists of team ranks; each
    /// group's first element acts as the socket leader.
    pub fn socket_groups(&self, rank: usize) -> Vec<Vec<usize>> {
        let set = self.set_for(rank);
        let mut groups: Vec<(SocketId, Vec<usize>)> = Vec::new();
        for &r in &set.ranks {
            let (_, socket) = self.sockets[r];
            match groups.iter_mut().find(|(s, _)| *s == socket) {
                Some((_, g)) => g.push(r),
                None => groups.push((socket, vec![r])),
            }
        }
        groups.into_iter().map(|(_, g)| g).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineModel;
    use crate::placement::Placement;

    fn map(images: usize, per_node: usize) -> ImageMap {
        ImageMap::new(
            MachineModel::new("whale", 44, 2, 4),
            images,
            &Placement::Block { per_node },
        )
    }

    fn full_team(n: usize) -> Vec<ProcId> {
        (0..n).map(ProcId).collect()
    }

    #[test]
    fn initial_team_16_images_2_nodes() {
        let m = map(16, 8);
        let h = HierarchyView::build(&m, &full_team(16));
        assert_eq!(h.n_nodes(), 2);
        assert_eq!(h.leaders(), &[0, 8]);
        assert!(h.is_leader(0));
        assert!(h.is_leader(8));
        assert!(!h.is_leader(1));
        assert_eq!(h.leader_of(5), 0);
        assert_eq!(h.leader_of(13), 8);
        assert_eq!(h.set_for(13).slaves(), &[9, 10, 11, 12, 13, 14, 15]);
        assert!(!h.is_flat());
        assert!(!h.is_single_node());
    }

    #[test]
    fn flat_team_one_image_per_node() {
        let m = ImageMap::new(MachineModel::new("whale", 44, 2, 4), 8, &Placement::Cyclic);
        let h = HierarchyView::build(&m, &full_team(8));
        assert!(h.is_flat());
        assert_eq!(h.n_nodes(), 8);
        for r in 0..8 {
            assert!(h.is_leader(r));
            assert_eq!(h.leader_index_of(r), r);
        }
    }

    #[test]
    fn single_node_team() {
        let m = map(8, 8);
        let h = HierarchyView::build(&m, &full_team(8));
        assert!(h.is_single_node());
        assert_eq!(h.leaders(), &[0]);
        assert_eq!(h.set_for(7).len(), 8);
    }

    #[test]
    fn subteam_ranks_are_team_relative() {
        // Team of the odd processes of a 16-image launch on 2 nodes:
        // procs 1,3,5,7 on node 0, procs 9,11,13,15 on node 1.
        let m = map(16, 8);
        let members: Vec<ProcId> = (0..16).filter(|i| i % 2 == 1).map(ProcId).collect();
        let h = HierarchyView::build(&m, &members);
        assert_eq!(h.n_ranks(), 8);
        assert_eq!(h.n_nodes(), 2);
        // Team ranks 0..4 (procs 1,3,5,7) on node 0; leader = team rank 0.
        assert_eq!(h.leader_of(3), 0);
        // Team ranks 4..8 on node 1; leader = team rank 4.
        assert_eq!(h.leader_of(6), 4);
        assert_eq!(h.leaders(), &[0, 4]);
        assert_eq!(h.leader_index_of(6), 1);
    }

    #[test]
    fn scrambled_member_order_leader_is_lowest_rank_not_lowest_proc() {
        // Members listed out of proc order: leader is the first *team rank*
        // on each node.
        let m = map(16, 8);
        let members = vec![ProcId(9), ProcId(1), ProcId(8), ProcId(0)];
        let h = HierarchyView::build(&m, &members);
        // node 1 appears first (rank 0 = proc 9), node 0 second (rank 1 = proc 1).
        assert_eq!(h.leaders(), &[0, 1]);
        assert_eq!(h.leader_of(2), 0); // proc 8 is on node 1, led by rank 0
        assert_eq!(h.leader_of(3), 1); // proc 0 on node 0, led by rank 1
    }

    #[test]
    fn set_order_deterministic_by_first_appearance() {
        let m = map(16, 8);
        let members = vec![ProcId(15), ProcId(0), ProcId(14), ProcId(1)];
        let h = HierarchyView::build(&m, &members);
        assert_eq!(h.sets()[0].node, NodeId(1));
        assert_eq!(h.sets()[1].node, NodeId(0));
        assert_eq!(h.sets()[0].ranks, vec![0, 2]);
        assert_eq!(h.sets()[1].ranks, vec![1, 3]);
    }

    #[test]
    fn socket_groups_split_a_node() {
        // 8 images packed on one node: cores 0..4 = socket 0, 4..8 = socket 1.
        let m = map(8, 8);
        let h = HierarchyView::build(&m, &full_team(8));
        let groups = h.socket_groups(0);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0], vec![0, 1, 2, 3]);
        assert_eq!(groups[1], vec![4, 5, 6, 7]);
    }

    #[test]
    fn singleton_team() {
        let m = map(16, 8);
        let h = HierarchyView::build(&m, &[ProcId(5)]);
        assert_eq!(h.n_nodes(), 1);
        assert!(h.is_flat());
        assert!(h.is_single_node());
        assert!(h.is_leader(0));
        assert!(h.set_for(0).slaves().is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one image")]
    fn empty_team_rejected() {
        let m = map(8, 8);
        HierarchyView::build(&m, &[]);
    }

    #[test]
    #[should_panic(expected = "outside launch")]
    fn member_outside_launch_rejected() {
        let m = map(8, 8);
        HierarchyView::build(&m, &[ProcId(8)]);
    }

    #[test]
    fn leaders_count_matches_occupied_nodes_352() {
        // Paper-scale: 352 images, 8 per node on 44 nodes.
        let m = map(352, 8);
        let h = HierarchyView::build(&m, &full_team(352));
        assert_eq!(h.n_nodes(), 44);
        assert_eq!(h.leaders().len(), 44);
        for s in h.sets() {
            assert_eq!(s.len(), 8);
            assert_eq!(s.leader, s.ranks[0]);
        }
    }
}
