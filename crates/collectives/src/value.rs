//! Plain-data element types that can travel through coarrays and
//! collectives, and the reduction operations defined on them.
//!
//! Everything crossing the fabric is explicit little-endian-free native
//! bytes produced by [`CoValue::store`] — no `unsafe` transmutes, no padding
//! leaks. The per-element copy is irrelevant next to modeled network time,
//! and in the real-threads fabric the byte loop compiles to a memcpy-like
//! loop for primitive types.

/// A value that can be shipped through segments: fixed size, plain data.
///
/// Implementations must be involutive: `load(store(x)) == x` (bitwise; NaN
/// payloads included).
pub trait CoValue: Copy + Send + Sync + 'static {
    /// Serialized size in bytes.
    const SIZE: usize;

    /// Serialize into `out` (exactly `SIZE` bytes).
    fn store(&self, out: &mut [u8]);

    /// Deserialize from `bytes` (exactly `SIZE` bytes).
    fn load(bytes: &[u8]) -> Self;
}

macro_rules! covalue_prim {
    ($($t:ty),*) => {$(
        impl CoValue for $t {
            const SIZE: usize = std::mem::size_of::<$t>();

            #[inline]
            fn store(&self, out: &mut [u8]) {
                out[..Self::SIZE].copy_from_slice(&self.to_ne_bytes());
            }

            #[inline]
            fn load(bytes: &[u8]) -> Self {
                <$t>::from_ne_bytes(bytes[..Self::SIZE].try_into().expect("size"))
            }
        }
    )*};
}

covalue_prim!(u8, i8, u16, i16, u32, i32, u64, i64, u128, i128, f32, f64);

impl<A: CoValue, B: CoValue> CoValue for (A, B) {
    const SIZE: usize = A::SIZE + B::SIZE;

    #[inline]
    fn store(&self, out: &mut [u8]) {
        self.0.store(&mut out[..A::SIZE]);
        self.1.store(&mut out[A::SIZE..A::SIZE + B::SIZE]);
    }

    #[inline]
    fn load(bytes: &[u8]) -> Self {
        (A::load(&bytes[..A::SIZE]), B::load(&bytes[A::SIZE..]))
    }
}

/// Serialize a slice of values into a byte vector, reusing its capacity.
/// Every byte of the result is overwritten by `store`, so the length is
/// adjusted without a zero-refill — on the collectives' hot paths the same
/// buffer is reused call after call and this allocates (and memsets)
/// nothing in steady state.
pub fn slice_to_bytes<T: CoValue>(src: &[T], out: &mut Vec<u8>) {
    let n = src.len() * T::SIZE;
    if out.len() < n {
        out.resize(n, 0);
    } else {
        out.truncate(n);
    }
    for (i, v) in src.iter().enumerate() {
        v.store(&mut out[i * T::SIZE..(i + 1) * T::SIZE]);
    }
}

/// Deserialize bytes into an existing slice (lengths must match).
pub fn bytes_to_slice<T: CoValue>(bytes: &[u8], dst: &mut [T]) {
    assert_eq!(
        bytes.len(),
        dst.len() * T::SIZE,
        "byte/slice length mismatch"
    );
    for (i, v) in dst.iter_mut().enumerate() {
        *v = T::load(&bytes[i * T::SIZE..(i + 1) * T::SIZE]);
    }
}

/// Numeric element types supporting the CAF intrinsic reductions
/// (`co_sum`, `co_min`, `co_max`) plus product.
///
/// All operations must be commutative and associative up to the usual
/// floating-point caveats; the collectives are free to apply them in any
/// order (and the hierarchical algorithms genuinely do reorder).
pub trait CoNumeric: CoValue + PartialOrd {
    /// Addition (`co_sum`).
    fn co_add(a: Self, b: Self) -> Self;
    /// Multiplication.
    fn co_mul(a: Self, b: Self) -> Self;
    /// Minimum (`co_min`).
    fn co_min(a: Self, b: Self) -> Self;
    /// Maximum (`co_max`).
    fn co_max(a: Self, b: Self) -> Self;
}

macro_rules! conumeric_int {
    ($($t:ty),*) => {$(
        impl CoNumeric for $t {
            #[inline]
            fn co_add(a: Self, b: Self) -> Self { a.wrapping_add(b) }
            #[inline]
            fn co_mul(a: Self, b: Self) -> Self { a.wrapping_mul(b) }
            #[inline]
            fn co_min(a: Self, b: Self) -> Self { a.min(b) }
            #[inline]
            fn co_max(a: Self, b: Self) -> Self { a.max(b) }
        }
    )*};
}

conumeric_int!(u8, i8, u16, i16, u32, i32, u64, i64, u128, i128);

macro_rules! conumeric_float {
    ($($t:ty),*) => {$(
        impl CoNumeric for $t {
            #[inline]
            fn co_add(a: Self, b: Self) -> Self { a + b }
            #[inline]
            fn co_mul(a: Self, b: Self) -> Self { a * b }
            #[inline]
            fn co_min(a: Self, b: Self) -> Self { a.min(b) }
            #[inline]
            fn co_max(a: Self, b: Self) -> Self { a.max(b) }
        }
    )*};
}

conumeric_float!(f32, f64);

/// The intrinsic reduction operations, for the enum-driven API (the
/// closure-based `co_reduce_with` covers user-defined operations).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CoOp {
    /// `co_sum`.
    Sum,
    /// Product.
    Prod,
    /// `co_min`.
    Min,
    /// `co_max`.
    Max,
}

impl CoOp {
    /// Apply the operation.
    #[inline]
    pub fn apply<T: CoNumeric>(self, a: T, b: T) -> T {
        match self {
            CoOp::Sum => T::co_add(a, b),
            CoOp::Prod => T::co_mul(a, b),
            CoOp::Min => T::co_min(a, b),
            CoOp::Max => T::co_max(a, b),
        }
    }

    /// The identity element for integer-like folds is not needed by the
    /// algorithms (they fold pairwise over actual contributions), but the
    /// name of the op is useful in reports.
    pub fn name(self) -> &'static str {
        match self {
            CoOp::Sum => "sum",
            CoOp::Prod => "prod",
            CoOp::Min => "min",
            CoOp::Max => "max",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrip() {
        let mut buf = [0u8; 8];
        42.5f64.store(&mut buf);
        assert_eq!(f64::load(&buf), 42.5);
        let mut buf4 = [0u8; 4];
        (-7i32).store(&mut buf4);
        assert_eq!(i32::load(&buf4), -7);
    }

    #[test]
    fn nan_payload_preserved() {
        let x = f64::from_bits(0x7ff8_dead_beef_0001);
        let mut buf = [0u8; 8];
        x.store(&mut buf);
        assert_eq!(f64::load(&buf).to_bits(), x.to_bits());
    }

    #[test]
    fn tuple_roundtrip() {
        let v: (f64, u64) = (3.25, 17);
        let mut buf = [0u8; 16];
        v.store(&mut buf);
        assert_eq!(<(f64, u64)>::load(&buf), v);
        assert_eq!(<(f64, u64)>::SIZE, 16);
    }

    #[test]
    fn slice_roundtrip() {
        let src = [1u32, 2, 3, 4000];
        let mut bytes = Vec::new();
        slice_to_bytes(&src, &mut bytes);
        assert_eq!(bytes.len(), 16);
        let mut dst = [0u32; 4];
        bytes_to_slice(&bytes, &mut dst);
        assert_eq!(src, dst);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn slice_length_checked() {
        let mut dst = [0u32; 2];
        bytes_to_slice(&[0u8; 9], &mut dst);
    }

    #[test]
    fn ops_behave() {
        assert_eq!(CoOp::Sum.apply(2i64, 3), 5);
        assert_eq!(CoOp::Prod.apply(2i64, 3), 6);
        assert_eq!(CoOp::Min.apply(2.5f64, 3.0), 2.5);
        assert_eq!(CoOp::Max.apply(2.5f64, 3.0), 3.0);
        assert_eq!(CoOp::Sum.apply(u8::MAX, 1), 0, "integer sum wraps");
    }

    #[test]
    fn op_names() {
        assert_eq!(CoOp::Sum.name(), "sum");
        assert_eq!(CoOp::Max.name(), "max");
    }
}
