//! Algorithm selection — the knob distinguishing the paper's "1-level"
//! baseline runtime from the hierarchy-aware "2-level" runtime, extended
//! with a (hierarchy × message size) policy: below the pipeline crossover
//! the latency-optimal trees win; above it the chunked pipelined data path
//! does.

use caf_topology::{CostParams, HierarchyView};

/// Barrier algorithm choice.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BarrierAlgo {
    /// Centralized linear counter barrier: 2(n−1) notifications, all
    /// through one image — good on shared memory, terrible across nodes.
    CentralCounter,
    /// Pure dissemination (Hensgen/Finkel/Manber; Mellor-Crummey & Scott),
    /// implemented PGAS-style with a single accumulating `sync_flags`
    /// counter per round — one wait, no sense reversal. This is the paper's
    /// "1-level" UHCAF baseline.
    Dissemination,
    /// Binomial-tree barrier (gather up a tree rooted at rank 0, release
    /// back down): 2(n−1) notifications like the central counter, but
    /// log-depth — the MCS tree barrier's message pattern.
    BinomialTree,
    /// The paper's Team Dissemination Linear Barrier (Algorithm 1):
    /// intra-node linear gather to a per-node leader, dissemination among
    /// leaders, intra-node linear release. The "2-level" algorithm.
    Tdlb,
    /// §VII future work: a three-level TDLB with a socket level below the
    /// node level (socket gather → node gather → leader dissemination →
    /// releases back down).
    TdlbMultilevel,
    /// Hierarchy-aware choice at team-formation time: dissemination for
    /// flat teams, TDLB otherwise.
    #[default]
    Auto,
}

/// Reduction (allreduce) algorithm choice.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ReduceAlgo {
    /// Flat recursive doubling over all images (with the standard
    /// fold-in/fold-out pre/post phases for non-power-of-two sizes) —
    /// the "1-level" baseline.
    FlatRecursiveDoubling,
    /// Flat binomial-tree reduce to rank 0 followed by a binomial broadcast.
    FlatBinomial,
    /// The paper's two-level reduction: intra-node linear combine at each
    /// node leader, recursive doubling among leaders, intra-node release.
    TwoLevel,
    /// Chunked pipelined two-level reduction for large payloads: slaves
    /// stream chunks at their leader (per-chunk combine), leaders run a
    /// Rabenseifner reduce-scatter + allgather across nodes, results stream
    /// back — every stage overlaps the next chunk's communication.
    TwoLevelPipelined,
    /// Rabenseifner's allreduce (recursive-halving reduce-scatter followed
    /// by recursive-doubling allgather): the bandwidth-optimal flat
    /// algorithm for large buffers.
    Rabenseifner,
    /// Hierarchy- and size-aware choice: recursive doubling for flat teams,
    /// two-level otherwise; above the pipeline crossover, Rabenseifner
    /// (flat) or the pipelined two-level scheme.
    #[default]
    Auto,
}

/// Broadcast algorithm choice.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BcastAlgo {
    /// Root puts to every image directly (n−1 serialized sends).
    FlatLinear,
    /// Binomial tree over all images — the "1-level" baseline.
    FlatBinomial,
    /// The paper's two-level broadcast: binomial tree over node leaders
    /// (with the root acting as its node's leader), then an intra-node
    /// linear fan-out.
    TwoLevel,
    /// Chunked pipelined two-level broadcast for large payloads: the root
    /// streams K-byte chunks down a *chain* of node leaders (the root's NIC
    /// injects the payload exactly once, vs. once per tree child in the
    /// store-and-forward tree), and each leader forwards a chunk inter-node
    /// while fanning the previous one out over its node bus.
    TwoLevelPipelined,
    /// Hierarchy- and size-aware choice: binomial for flat teams, two-level
    /// otherwise; above the pipeline crossover, the pipelined scheme.
    #[default]
    Auto,
}

/// Gather/scatter algorithm choice (extension collectives; the paper's
/// methodology applied beyond its three operations).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum GatherAlgo {
    /// Every member exchanges directly with the root.
    FlatLinear,
    /// Members exchange with their node leader over shared memory; one
    /// message per node crosses the network.
    TwoLevel,
    /// Hierarchy-aware choice: flat for flat teams, two-level otherwise.
    #[default]
    Auto,
}

impl GatherAlgo {
    /// Resolve `Auto` against a team's hierarchy.
    pub fn resolve(self, hier: &HierarchyView) -> GatherAlgo {
        match self {
            GatherAlgo::Auto => {
                if hier.is_flat() {
                    GatherAlgo::FlatLinear
                } else {
                    GatherAlgo::TwoLevel
                }
            }
            fixed => fixed,
        }
    }
}

/// The size-aware half of `Auto` resolution, computed from the machine's
/// [`CostParams`] at team-formation time (with env-var overrides for the
/// bench harness). Every team member derives the identical policy from the
/// shared cost model, so per-call algorithm selection by payload size stays
/// collectively consistent.
///
/// Overrides (parsed as plain byte counts): `CAF_CHUNK_BYTES`,
/// `CAF_BCAST_CROSSOVER`, `CAF_REDUCE_CROSSOVER`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SizePolicy {
    /// Pipeline chunk size for the chunked collectives, bytes.
    pub chunk_bytes: usize,
    /// Payload size at which `Auto` switches broadcast to the pipelined
    /// path, bytes.
    pub bcast_crossover_bytes: usize,
    /// Payload size at which `Auto` switches reduction to the pipelined /
    /// Rabenseifner path, bytes.
    pub reduce_crossover_bytes: usize,
}

fn env_bytes(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok())
}

impl SizePolicy {
    /// Derive the policy from a machine's cost parameters, honoring the
    /// env-var overrides.
    pub fn from_cost(cost: &CostParams) -> Self {
        let chunk = env_bytes("CAF_CHUNK_BYTES")
            .unwrap_or_else(|| cost.pipeline_chunk_bytes())
            .max(1);
        let crossover = cost.pipeline_crossover_bytes();
        Self {
            chunk_bytes: chunk,
            bcast_crossover_bytes: env_bytes("CAF_BCAST_CROSSOVER").unwrap_or(crossover),
            reduce_crossover_bytes: env_bytes("CAF_REDUCE_CROSSOVER").unwrap_or(crossover),
        }
    }
}

impl Default for SizePolicy {
    fn default() -> Self {
        Self::from_cost(&CostParams::default())
    }
}

/// Per-team collective configuration, fixed at team-formation time.
///
/// Fixing algorithms per team keeps the accumulating `sync_flags` counters
/// coherent: every algorithm's waits count episodes against the same flag
/// history, so switching algorithms mid-team would desynchronize epochs.
/// (The broadcast/reduce paths use *cumulative* per-flag counters rather
/// than `episode × expected` thresholds precisely so that the size-aware
/// `Auto` may pick a different algorithm per call without desynchronizing —
/// see `TeamComm::bcast_algo_for`/`reduce_algo_for`.)
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct CollectiveConfig {
    /// Barrier algorithm.
    pub barrier: BarrierAlgo,
    /// Reduction algorithm.
    pub reduce: ReduceAlgo,
    /// Broadcast algorithm.
    pub bcast: BcastAlgo,
    /// Gather/scatter algorithm.
    pub gather: GatherAlgo,
    /// Route the collectives' small-message flag traffic through the
    /// active-message tier ([`caf_fabric::Am`]), coalescing per-destination
    /// storms into batched deliveries. Off by default; `CAF_AM=1` at
    /// team-formation time also enables it.
    pub am: bool,
}

impl CollectiveConfig {
    /// The paper's hierarchy-aware "2-level" runtime (also the default).
    pub fn two_level() -> Self {
        Self {
            barrier: BarrierAlgo::Tdlb,
            reduce: ReduceAlgo::TwoLevel,
            bcast: BcastAlgo::TwoLevel,
            gather: GatherAlgo::TwoLevel,
            am: false,
        }
    }

    /// The paper's "1-level" baseline runtime: pure dissemination barrier,
    /// flat recursive-doubling reduction, flat binomial broadcast.
    pub fn one_level() -> Self {
        Self {
            barrier: BarrierAlgo::Dissemination,
            reduce: ReduceAlgo::FlatRecursiveDoubling,
            bcast: BcastAlgo::FlatBinomial,
            gather: GatherAlgo::FlatLinear,
            am: false,
        }
    }

    /// Hierarchy-aware automatic selection (the default).
    pub fn auto() -> Self {
        Self::default()
    }
}

impl BarrierAlgo {
    /// Resolve `Auto` against a team's hierarchy.
    pub fn resolve(self, hier: &HierarchyView) -> BarrierAlgo {
        match self {
            BarrierAlgo::Auto => {
                if hier.is_flat() {
                    BarrierAlgo::Dissemination
                } else {
                    BarrierAlgo::Tdlb
                }
            }
            fixed => fixed,
        }
    }
}

impl ReduceAlgo {
    /// Resolve `Auto` against a team's hierarchy.
    pub fn resolve(self, hier: &HierarchyView) -> ReduceAlgo {
        match self {
            ReduceAlgo::Auto => {
                if hier.is_flat() {
                    ReduceAlgo::FlatRecursiveDoubling
                } else {
                    ReduceAlgo::TwoLevel
                }
            }
            fixed => fixed,
        }
    }

    /// Resolve `Auto` against (hierarchy × payload size): latency-optimal
    /// below the crossover, bandwidth-optimal above it.
    pub fn resolve_sized(
        self,
        hier: &HierarchyView,
        bytes: usize,
        policy: &SizePolicy,
    ) -> ReduceAlgo {
        match self {
            ReduceAlgo::Auto if bytes >= policy.reduce_crossover_bytes => {
                if hier.is_flat() {
                    ReduceAlgo::Rabenseifner
                } else {
                    ReduceAlgo::TwoLevelPipelined
                }
            }
            other => other.resolve(hier),
        }
    }
}

impl BcastAlgo {
    /// Resolve `Auto` against a team's hierarchy.
    pub fn resolve(self, hier: &HierarchyView) -> BcastAlgo {
        match self {
            BcastAlgo::Auto => {
                if hier.is_flat() {
                    BcastAlgo::FlatBinomial
                } else {
                    BcastAlgo::TwoLevel
                }
            }
            fixed => fixed,
        }
    }

    /// Resolve `Auto` against (hierarchy × payload size): latency-optimal
    /// below the crossover, pipelined above it.
    pub fn resolve_sized(
        self,
        hier: &HierarchyView,
        bytes: usize,
        policy: &SizePolicy,
    ) -> BcastAlgo {
        match self {
            BcastAlgo::Auto if bytes >= policy.bcast_crossover_bytes => {
                BcastAlgo::TwoLevelPipelined
            }
            other => other.resolve(hier),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caf_topology::{presets, HierarchyView, ImageMap, Placement, ProcId};

    fn hier(nodes: usize, per_node: usize, images: usize) -> HierarchyView {
        let map = ImageMap::new(
            presets::mini(nodes, per_node.max(1)),
            images,
            &Placement::Block { per_node },
        );
        let members: Vec<ProcId> = (0..images).map(ProcId).collect();
        HierarchyView::build(&map, &members)
    }

    #[test]
    fn auto_resolves_flat_to_dissemination() {
        let h = hier(8, 1, 8);
        assert_eq!(BarrierAlgo::Auto.resolve(&h), BarrierAlgo::Dissemination);
        assert_eq!(
            ReduceAlgo::Auto.resolve(&h),
            ReduceAlgo::FlatRecursiveDoubling
        );
        assert_eq!(BcastAlgo::Auto.resolve(&h), BcastAlgo::FlatBinomial);
    }

    #[test]
    fn auto_resolves_hierarchical_to_two_level() {
        let h = hier(2, 4, 8);
        assert_eq!(BarrierAlgo::Auto.resolve(&h), BarrierAlgo::Tdlb);
        assert_eq!(ReduceAlgo::Auto.resolve(&h), ReduceAlgo::TwoLevel);
        assert_eq!(BcastAlgo::Auto.resolve(&h), BcastAlgo::TwoLevel);
    }

    #[test]
    fn fixed_choices_pass_through() {
        let h = hier(2, 4, 8);
        assert_eq!(
            BarrierAlgo::CentralCounter.resolve(&h),
            BarrierAlgo::CentralCounter
        );
        assert_eq!(
            ReduceAlgo::FlatBinomial.resolve(&h),
            ReduceAlgo::FlatBinomial
        );
    }

    #[test]
    fn presets_are_distinct() {
        assert_ne!(CollectiveConfig::one_level(), CollectiveConfig::two_level());
        assert_eq!(CollectiveConfig::auto(), CollectiveConfig::default());
    }

    #[test]
    fn sized_auto_switches_at_the_crossover() {
        let policy = SizePolicy {
            chunk_bytes: 16 * 1024,
            bcast_crossover_bytes: 32 * 1024,
            reduce_crossover_bytes: 32 * 1024,
        };
        let h2 = hier(2, 4, 8);
        let hf = hier(8, 1, 8);
        // Small payloads: the hierarchy-only choice.
        assert_eq!(
            BcastAlgo::Auto.resolve_sized(&h2, 8, &policy),
            BcastAlgo::TwoLevel
        );
        assert_eq!(
            BcastAlgo::Auto.resolve_sized(&hf, 8, &policy),
            BcastAlgo::FlatBinomial
        );
        assert_eq!(
            ReduceAlgo::Auto.resolve_sized(&h2, 8, &policy),
            ReduceAlgo::TwoLevel
        );
        // Large payloads: the pipelined/bandwidth-optimal choice.
        assert_eq!(
            BcastAlgo::Auto.resolve_sized(&h2, 1 << 20, &policy),
            BcastAlgo::TwoLevelPipelined
        );
        assert_eq!(
            ReduceAlgo::Auto.resolve_sized(&h2, 1 << 20, &policy),
            ReduceAlgo::TwoLevelPipelined
        );
        assert_eq!(
            ReduceAlgo::Auto.resolve_sized(&hf, 1 << 20, &policy),
            ReduceAlgo::Rabenseifner
        );
        // Fixed choices ignore size.
        assert_eq!(
            BcastAlgo::TwoLevel.resolve_sized(&h2, 1 << 20, &policy),
            BcastAlgo::TwoLevel
        );
    }

    #[test]
    fn size_policy_derives_from_cost() {
        let p = SizePolicy::from_cost(&CostParams::default());
        assert_eq!(p.chunk_bytes, 16 * 1024);
        assert_eq!(p.bcast_crossover_bytes, 2 * p.chunk_bytes);
        assert_eq!(p.reduce_crossover_bytes, 2 * p.chunk_bytes);
    }
}
