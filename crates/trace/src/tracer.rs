//! The recording handle threaded through fabrics, collectives, and the
//! runtime.
//!
//! With the `capture` feature **off** (the default), [`Tracer`] is a
//! zero-sized type whose methods are inlined no-ops: instrumentation
//! sites compile down to nothing and the runtime is bit-for-bit the
//! un-instrumented one. With `capture` on, an *enabled* tracer holds one
//! [`EventRing`](crate::ring::EventRing) per image plus a system ring for
//! simulator-side records; a *disabled* (`off`) tracer still records
//! nothing, so capture-enabled builds pay only an `Option` check per
//! instrumentation site unless a tracer was explicitly installed.

use crate::event::Event;

#[cfg(feature = "capture")]
mod imp {
    use super::*;
    use crate::event::SYSTEM_IMG;
    use crate::ring::EventRing;
    use std::sync::Arc;

    /// Default per-image ring capacity (events retained per image).
    pub const DEFAULT_RING_CAPACITY: usize = 1 << 14;

    struct Shared {
        /// One ring per image, plus the system ring at index `n_images`.
        rings: Vec<EventRing>,
    }

    /// Cloneable recording handle; clones share the same rings.
    #[derive(Clone, Default)]
    pub struct Tracer {
        inner: Option<Arc<Shared>>,
    }

    impl Tracer {
        /// The inert tracer: records nothing, returns nothing.
        pub const fn off() -> Self {
            Self { inner: None }
        }

        /// An enabled tracer with default ring capacity.
        pub fn for_images(n_images: usize) -> Self {
            Self::with_capacity(n_images, DEFAULT_RING_CAPACITY)
        }

        /// An enabled tracer retaining `capacity` events per image.
        pub fn with_capacity(n_images: usize, capacity: usize) -> Self {
            let rings = (0..=n_images).map(|_| EventRing::new(capacity)).collect();
            Self {
                inner: Some(Arc::new(Shared { rings })),
            }
        }

        /// Whether records are being kept.
        #[inline]
        pub fn enabled(&self) -> bool {
            self.inner.is_some()
        }

        /// Record an event on image `img`'s ring. Must be called from the
        /// single thread driving that image (or while it is blocked).
        #[inline]
        pub fn record(&self, img: usize, mut ev: Event) {
            if let Some(s) = &self.inner {
                ev.img = img as u32;
                s.rings[img].push(&ev);
            }
        }

        /// Record a simulator-side event (delivery instants etc.) on the
        /// system ring. Callers serialize via the simulator core lock.
        #[inline]
        pub fn record_system(&self, mut ev: Event) {
            if let Some(s) = &self.inner {
                ev.img = SYSTEM_IMG;
                let n = s.rings.len() - 1;
                s.rings[n].push(&ev);
            }
        }

        /// Images this tracer was sized for.
        pub fn n_images(&self) -> usize {
            self.inner.as_ref().map_or(0, |s| s.rings.len() - 1)
        }

        /// All retained events from every ring, sorted by start time
        /// (stable, so same-time events keep per-image order).
        pub fn events(&self) -> Vec<Event> {
            let Some(s) = &self.inner else {
                return Vec::new();
            };
            let mut out: Vec<Event> = s.rings.iter().flat_map(|r| r.snapshot()).collect();
            out.sort_by_key(|e| e.t_ns);
            out
        }

        /// Retained events of one image, oldest first.
        pub fn events_of(&self, img: usize) -> Vec<Event> {
            self.inner
                .as_ref()
                .map_or_else(Vec::new, |s| s.rings[img].snapshot())
        }

        /// The last `n` events of one image, oldest first.
        pub fn last_events(&self, img: usize, n: usize) -> Vec<Event> {
            self.inner
                .as_ref()
                .map_or_else(Vec::new, |s| s.rings[img].last(n))
        }

        /// Total events ever recorded across all rings (including any
        /// that have been overwritten).
        pub fn total_recorded(&self) -> u64 {
            self.inner
                .as_ref()
                .map_or(0, |s| s.rings.iter().map(|r| r.total()).sum())
        }
    }
}

#[cfg(not(feature = "capture"))]
mod imp {
    use super::*;

    /// Zero-sized no-op tracer (build without the `capture` feature).
    #[derive(Clone, Copy, Default)]
    pub struct Tracer;

    impl Tracer {
        /// The inert tracer.
        pub const fn off() -> Self {
            Self
        }

        /// Without `capture`, "enabled" tracers are still inert.
        pub fn for_images(_n_images: usize) -> Self {
            Self
        }

        /// Without `capture`, capacity is ignored.
        pub fn with_capacity(_n_images: usize, _capacity: usize) -> Self {
            Self
        }

        /// Always false: instrumentation sites fold away.
        #[inline(always)]
        pub fn enabled(&self) -> bool {
            false
        }

        /// No-op.
        #[inline(always)]
        pub fn record(&self, _img: usize, _ev: Event) {}

        /// No-op.
        #[inline(always)]
        pub fn record_system(&self, _ev: Event) {}

        /// Always 0.
        pub fn n_images(&self) -> usize {
            0
        }

        /// Always empty.
        pub fn events(&self) -> Vec<Event> {
            Vec::new()
        }

        /// Always empty.
        pub fn events_of(&self, _img: usize) -> Vec<Event> {
            Vec::new()
        }

        /// Always empty.
        pub fn last_events(&self, _img: usize, _n: usize) -> Vec<Event> {
            Vec::new()
        }

        /// Always 0.
        pub fn total_recorded(&self) -> u64 {
            0
        }
    }
}

pub use imp::Tracer;

#[cfg(feature = "capture")]
pub use imp::DEFAULT_RING_CAPACITY;

impl Tracer {
    /// Render the last `per_image` retained events of every image as an
    /// indented multi-line block — the "recent window" that failure
    /// reports (deadlock diagnostics, `caf-check` mismatch reports) embed
    /// so a failing schedule can be read without re-running under a
    /// debugger. Returns a pointer at the `trace` feature when no records
    /// are being kept.
    pub fn render_recent(&self, per_image: usize) -> String {
        if !self.enabled() {
            return "  (build with the `trace` feature and install a Tracer \
                    for per-image operation history)\n"
                .to_string();
        }
        let mut out = String::new();
        for img in 0..self.n_images() {
            let evs = self.last_events(img, per_image);
            if evs.is_empty() {
                continue;
            }
            out.push_str(&format!("  image {img} recent events:\n"));
            for ev in evs {
                out.push_str(&format!("    {}\n", ev.render()));
            }
        }
        out
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.enabled() {
            write!(f, "Tracer(on, {} images)", self.n_images())
        } else {
            f.write_str("Tracer(off)")
        }
    }
}

static OFF_TRACER: Tracer = Tracer::off();

/// A `'static` inert tracer, for default trait implementations.
pub fn off_ref() -> &'static Tracer {
    &OFF_TRACER
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn off_tracer_is_inert() {
        let t = Tracer::off();
        assert!(!t.enabled());
        t.record(0, Event::instant(EventKind::Put, 1));
        t.record_system(Event::instant(EventKind::FlagDeliver, 2));
        assert!(t.events().is_empty());
        assert_eq!(t.total_recorded(), 0);
    }

    #[cfg(feature = "capture")]
    #[test]
    fn enabled_tracer_collects_and_sorts() {
        let t = Tracer::for_images(2);
        assert!(t.enabled());
        assert_eq!(t.n_images(), 2);
        t.record(1, Event::instant(EventKind::FlagAdd, 30).a(0));
        t.record(0, Event::instant(EventKind::FlagAdd, 10).a(1));
        t.record_system(Event::instant(EventKind::FlagDeliver, 20));
        let evs = t.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(
            evs.iter().map(|e| e.t_ns).collect::<Vec<_>>(),
            vec![10, 20, 30]
        );
        assert_eq!(evs[0].img, 0);
        assert_eq!(evs[1].img, crate::event::SYSTEM_IMG);
        assert_eq!(t.events_of(1).len(), 1);
        assert_eq!(t.last_events(0, 5).len(), 1);
        assert_eq!(t.total_recorded(), 3);
    }

    #[cfg(feature = "capture")]
    #[test]
    fn clones_share_rings() {
        let t = Tracer::for_images(1);
        let t2 = t.clone();
        t2.record(0, Event::instant(EventKind::Quiet, 5));
        assert_eq!(t.events().len(), 1);
    }
}
