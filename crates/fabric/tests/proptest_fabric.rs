//! Property tests of the simulation fabric: determinism, virtual-time
//! monotonicity, flag-accumulation arithmetic, and payload integrity under
//! arbitrary operation schedules.

use caf_fabric::{bootstrap, Fabric, SimConfig, SimFabric, ThreadConfig, ThreadFabric};
use caf_fabric::{run_spmd, Am, AmPolicy, ChaosConfig, FlagId};
use caf_topology::{presets, ImageMap, Placement, ProcId, SoftwareOverheads};
use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;

/// A tiny random SPMD program over the bootstrap resources: each image
/// sends `sends[i]` notifications to image `(i+1) % n` then waits for its
/// own expected count (ring traffic — always deadlock-free).
fn ring_program(nodes: usize, cores: usize, images: usize, sends: Vec<u8>) -> Vec<u64> {
    let map = ImageMap::new(presets::mini(nodes, cores), images, &Placement::Packed);
    let fabric = SimFabric::new(
        map,
        SimConfig {
            cost: presets::whale_cost(),
            overheads: SoftwareOverheads::NONE,
            ..SimConfig::default()
        },
    );
    let f2 = fabric.clone();
    let times = Arc::new(Mutex::new(vec![0u64; images]));
    let t2 = times.clone();
    let sends = Arc::new(sends);
    run_spmd(fabric, move |me| {
        let i = me.index();
        let right = ProcId((i + 1) % images);
        let flag = FlagId(2); // bootstrap spare
        let mut last = 0;
        for _ in 0..sends[i % sends.len()] {
            f2.flag_add(me, right, flag, 1);
            let t = f2.now_ns(me);
            assert!(t >= last, "virtual time went backwards");
            last = t;
        }
        let left = (i + images - 1) % images;
        let expect = sends[left % sends.len()] as u64;
        if expect > 0 {
            f2.flag_wait_ge(me, flag, expect);
        }
        t2.lock()[i] = f2.now_ns(me);
        f2.image_done(me);
    });
    let v = times.lock().clone();
    v
}

/// An AM flag-and-payload storm onto image 0 with the given flush policy,
/// under an optional chaos seed: images 1..n each send `rounds[i]`
/// put+flag pairs into their own 64-byte bootstrap slot, then `quiet`;
/// image 0 waits for the total flag count and reads everything back.
/// Returns (payload bytes, flag total, per-image virtual finish times).
fn am_storm(rounds: &[u8], policy: AmPolicy, chaos_seed: Option<u64>) -> (Vec<u8>, u64, Vec<u64>) {
    let images = rounds.len() + 1;
    let map = ImageMap::new(
        presets::mini(2, images.div_ceil(2)),
        images,
        &Placement::Packed,
    );
    let fabric = SimFabric::new(
        map,
        SimConfig {
            cost: presets::whale_cost(),
            overheads: SoftwareOverheads::NONE,
            chaos: chaos_seed.map(ChaosConfig::from_seed),
            ..SimConfig::default()
        },
    );
    let f2 = fabric.clone();
    let total: u64 = rounds.iter().map(|&r| r as u64).sum();
    let rounds = Arc::new(rounds.to_vec());
    let out = Arc::new(Mutex::new((Vec::new(), 0u64, vec![0u64; images])));
    let o2 = out.clone();
    run_spmd(fabric, move |me| {
        let i = me.index();
        let flag = FlagId(2);
        if i == 0 {
            if total > 0 {
                f2.flag_wait_ge(me, flag, total);
            }
            let mut data = vec![0u8; images * bootstrap::SLOT_BYTES];
            f2.get(me, me, bootstrap::SEG, 0, &mut data);
            let mut g = o2.lock();
            g.0 = data;
            g.1 = f2.flag_read(me, flag);
        } else {
            let mut am = Am::new(f2.clone(), me, policy);
            for r in 0..rounds[i - 1] {
                let val = ((i as u64) << 8 | r as u64).to_le_bytes();
                am.put(
                    ProcId(0),
                    bootstrap::SEG,
                    i * bootstrap::SLOT_BYTES + r as usize * 8,
                    &val,
                );
                am.flag_add(ProcId(0), flag, 1);
            }
            am.quiet();
        }
        o2.lock().2[me.index()] = f2.now_ns(me);
        f2.image_done(me);
    });
    let g = out.lock();
    (g.0.clone(), g.1, g.2.clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under arbitrary chaos seeds — latency jitter and equal-time tie
    /// reordering included — a batched AM storm must land byte-for-byte
    /// where the unbatched oracle lands it, and stay deterministic for
    /// the same seed.
    #[test]
    fn am_batched_matches_unbatched_under_chaos(
        seed in 0u64..10_000,
        rounds in proptest::collection::vec(0u8..8, 1..7),
    ) {
        let wide = AmPolicy {
            batch_bytes: 1 << 20,
            batch_ops: 64,
            flush_age_ns: u64::MAX / 2,
        };
        let batched = am_storm(&rounds, wide, Some(seed));
        let oracle = am_storm(&rounds, AmPolicy::unbatched(), Some(seed));
        prop_assert_eq!(&batched.0, &oracle.0, "payload bytes diverged under chaos");
        prop_assert_eq!(batched.1, oracle.1, "flag totals diverged under chaos");
        let again = am_storm(&rounds, wide, Some(seed));
        prop_assert_eq!(batched, again, "batched chaos run must be deterministic");
    }

    #[test]
    fn sim_is_deterministic_for_arbitrary_ring_traffic(
        nodes in 1usize..4,
        cores in 2usize..4,
        sends in proptest::collection::vec(0u8..6, 1..12),
    ) {
        let images = (nodes * cores).min(8);
        let a = ring_program(nodes, cores, images, sends.clone());
        let b = ring_program(nodes, cores, images, sends);
        prop_assert_eq!(a, b, "same program must give same virtual times");
    }

    #[test]
    fn flag_accumulation_exact_for_arbitrary_deltas(
        deltas in proptest::collection::vec(1u64..1000, 1..20),
    ) {
        let map = ImageMap::new(presets::mini(1, 2), 2, &Placement::Packed);
        let fabric = SimFabric::with_defaults(map);
        let f2 = fabric.clone();
        let total: u64 = deltas.iter().sum();
        let deltas = Arc::new(deltas);
        run_spmd(fabric, move |me| {
            let flag = FlagId(2);
            if me == ProcId(0) {
                for &d in deltas.iter() {
                    f2.flag_add(me, ProcId(1), flag, d);
                }
            } else {
                f2.flag_wait_ge(me, flag, total);
                assert_eq!(f2.flag_read(me, flag), total);
            }
            f2.image_done(me);
        });
    }

    #[test]
    fn payload_roundtrip_any_bytes_any_offset(
        payload in proptest::collection::vec(any::<u8>(), 1..64),
        offset in 0usize..32,
    ) {
        let map = ImageMap::new(presets::mini(2, 1), 2, &Placement::Packed);
        let fabric = SimFabric::with_defaults(map);
        let f2 = fabric.clone();
        let payload = Arc::new(payload);
        let p2 = payload.clone();
        run_spmd(fabric, move |me| {
            let flag = FlagId(2);
            if me == ProcId(0) {
                f2.put(me, ProcId(1), bootstrap::SEG, offset, &p2);
                f2.flag_add(me, ProcId(1), flag, 1);
            } else {
                f2.flag_wait_ge(me, flag, 1);
                let mut out = vec![0u8; p2.len()];
                f2.get(me, me, bootstrap::SEG, offset, &mut out);
                assert_eq!(&out, &*p2);
            }
            f2.image_done(me);
        });
    }

    #[test]
    fn thread_fabric_amo_sums_exactly(
        per_image in proptest::collection::vec(1u16..200, 2..5),
    ) {
        let n = per_image.len();
        let map = ImageMap::new(presets::mini(1, n), n, &Placement::Packed);
        let fabric = ThreadFabric::new(map, ThreadConfig::default());
        let f2 = fabric.clone();
        let per = Arc::new(per_image.clone());
        run_spmd(fabric.clone(), move |me| {
            for _ in 0..per[me.index()] {
                f2.amo_fetch_add_u64(me, ProcId(0), bootstrap::SEG, 8, 1);
            }
            f2.image_done(me);
        });
        let expect: u64 = per_image.iter().map(|&v| v as u64).sum();
        let got = fabric.amo_cas_u64(ProcId(0), ProcId(0), bootstrap::SEG, 8, u64::MAX, u64::MAX);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn makespan_reflects_compute(
        ns in 1_000u64..1_000_000,
    ) {
        let map = ImageMap::new(presets::mini(1, 1), 1, &Placement::Packed);
        let fabric = SimFabric::with_defaults(map);
        fabric.compute(ProcId(0), ns);
        prop_assert_eq!(fabric.now_ns(ProcId(0)), ns);
        fabric.image_done(ProcId(0));
    }
}
