//! EXP-A1 — notification-count accounting (ablation of §IV-A's analysis).
//!
//! The paper's methodology is justified arithmetically: dissemination costs
//! n·⌈log₂ n⌉ notifications (all serialized in the worst shared-memory
//! case), a centralized linear barrier 2(n−1), and TDLB moves all but
//! L·⌈log₂ L⌉ of them (L = nodes) onto intra-node paths. This harness
//! counts the actual fabric traffic per barrier episode and checks it
//! against those closed forms.

use caf_bench::print_cost_preamble;
use caf_fabric::{Fabric, SimConfig, SimFabric, StatsSnapshot};
use caf_microbench::Table;
use caf_runtime::{run_on_fabric, BarrierAlgo, CollectiveConfig};
use caf_topology::{presets, ImageMap, Placement};

/// Traffic snapshot of a fresh run with `episodes` barriers.
fn total(images: usize, per_node: usize, algo: BarrierAlgo, episodes: usize) -> StatsSnapshot {
    let map = ImageMap::new(presets::whale(), images, &Placement::Block { per_node });
    let fabric = SimFabric::new(map, SimConfig::default());
    let cfg = CollectiveConfig {
        barrier: algo,
        ..CollectiveConfig::default()
    };
    run_on_fabric(fabric.clone(), cfg, move |img| {
        for _ in 0..episodes {
            img.sync_all();
        }
    });
    fabric.stats().snapshot()
}

/// Notifications per barrier episode, split (intra, inter). The simulator
/// is deterministic, so two runs differing by exactly `d` episodes differ
/// by exactly `d` episodes of traffic — an exact per-episode count with no
/// windowing error. The snapshot difference is one `-` thanks to
/// `StatsSnapshot`'s `Sub` impl.
fn count(images: usize, per_node: usize, algo: BarrierAlgo) -> (u64, u64) {
    let d = 4u64;
    let per_episode =
        total(images, per_node, algo, 2 + d as usize) - total(images, per_node, algo, 2);
    (per_episode.flags_intra / d, per_episode.flags_inter / d)
}

fn ceil_log2(n: usize) -> u64 {
    caf_collectives::util::ceil_log2(n) as u64
}

fn main() {
    print_cost_preamble("EXP-A1");
    let configs: &[(usize, usize)] = &[(16, 8), (64, 8), (256, 8), (16, 1), (44, 1)];

    let mut table = Table::new(
        "EXP-A1: notifications per barrier episode (measured vs closed form)",
        &[
            "images(per-node)",
            "algo",
            "intra",
            "inter",
            "total",
            "closed-form",
        ],
    );
    for &(n, per_node) in configs {
        let nodes = n / per_node;
        for (algo, name, expect) in [
            (
                BarrierAlgo::Dissemination,
                "dissemination",
                (n as u64) * ceil_log2(n),
            ),
            (
                BarrierAlgo::CentralCounter,
                "central-linear",
                2 * (n as u64 - 1),
            ),
            (
                BarrierAlgo::Tdlb,
                "TDLB",
                2 * (n as u64 - nodes as u64) + (nodes as u64) * ceil_log2(nodes),
            ),
        ] {
            let (intra, inter) = count(n, per_node, algo);
            let total = intra + inter;
            assert_eq!(
                total, expect,
                "{name} on {n} images ({per_node}/node): measured {total}, closed form {expect}"
            );
            table.row(&[
                format!("{n}({per_node})"),
                name.to_string(),
                intra.to_string(),
                inter.to_string(),
                total.to_string(),
                expect.to_string(),
            ]);
        }
    }
    table.note("TDLB closed form: 2(n - L) intra + L*ceil(log2 L) inter, L = nodes");
    table.note("all measured counts matched their closed forms (asserted)");
    table.print();
}
