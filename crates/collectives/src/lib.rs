//! # caf-collectives
//!
//! Team collectives for the `caf-rs` PGAS runtime — the core contribution
//! of Khaldi et al., *"A Team-Based Methodology of Memory Hierarchy-Aware
//! Runtime Support in Coarray Fortran"*.
//!
//! The paper's methodology (§IV-A) decomposes every collective along the
//! machine's memory hierarchy: detect each team's per-node *intranode
//! sets*, elect a *leader* per node, use a shared-memory-friendly algorithm
//! inside nodes and a distributed-memory-friendly algorithm among leaders.
//! This crate implements:
//!
//! * **Barriers** ([`config::BarrierAlgo`]): centralized linear counter,
//!   PGAS dissemination with the paper's one-wait accumulating
//!   `sync_flags`, the paper's **TDLB** (Team Dissemination Linear Barrier,
//!   Algorithm 1), and the §VII multi-level (socket-aware) extension.
//! * **All-to-all reductions** ([`config::ReduceAlgo`]): flat recursive
//!   doubling, flat binomial reduce+broadcast, the two-level scheme, a
//!   chunked **pipelined two-level** scheme for large payloads (intranode
//!   streaming fold overlapped with a Rabenseifner stage across leaders),
//!   and flat **Rabenseifner** (reduce-scatter + allgather).
//! * **Broadcasts** ([`config::BcastAlgo`]): linear, flat binomial, the
//!   two-level scheme, and a chunked **pipelined two-level** scheme that
//!   streams K-byte chunks down a pipelined binary tree of node leaders
//!   with nonblocking puts while each leader fans received chunks out
//!   through shared memory.
//!
//! `Auto` resolves per call by (hierarchy shape × message size): the
//! latency-optimal tree below the crossover, the pipelined/bandwidth
//! algorithms at or above it ([`config::SizePolicy`], derived from the
//! machine's cost model, overridable via `CAF_CHUNK_BYTES` /
//! `CAF_BCAST_CROSSOVER` / `CAF_REDUCE_CROSSOVER`).
//!
//! All algorithms run over any [`caf_fabric::Fabric`] and operate on
//! [`TeamComm`] — the runtime structure behind the paper's `team_type`,
//! holding the team's image-index→process mapping, its hierarchy
//! decomposition, and its accumulating synchronization flags. They work on
//! arbitrary (sub)teams, which is the engineering point of the paper: team
//! collectives must respect hierarchy even when the team is an arbitrary
//! slice of the machine.

#![warn(missing_docs)]

mod barrier;
mod bcast;
pub mod comm;
pub mod config;
mod gather;
mod reduce;
pub mod util;
pub mod value;

pub use comm::TeamComm;
pub use config::{BarrierAlgo, BcastAlgo, CollectiveConfig, GatherAlgo, ReduceAlgo, SizePolicy};
pub use value::{CoNumeric, CoOp, CoValue};

#[cfg(test)]
mod tests {
    use super::*;
    use caf_fabric::{run_spmd, ArcFabric, SimConfig, SimFabric, ThreadConfig, ThreadFabric};
    use caf_topology::{presets, ImageMap, Placement, ProcId};
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn sim_fabric(nodes: usize, cores: usize, images: usize, per_node: usize) -> ArcFabric {
        let map = ImageMap::new(
            presets::mini(nodes, cores),
            images,
            &Placement::Block { per_node },
        );
        SimFabric::new(map, SimConfig::default())
    }

    fn thread_fabric(nodes: usize, cores: usize, images: usize, per_node: usize) -> ArcFabric {
        let map = ImageMap::new(
            presets::mini(nodes, cores),
            images,
            &Placement::Block { per_node },
        );
        ThreadFabric::new(map, ThreadConfig::default())
    }

    /// Run `body(comm, me)` on every image with a fresh initial team.
    fn with_team(
        fabric: ArcFabric,
        cfg: CollectiveConfig,
        body: impl Fn(&mut TeamComm, ProcId) + Send + Sync + 'static,
    ) {
        let fabric2 = fabric.clone();
        run_spmd(fabric, move |me| {
            let mut boot = 0u64;
            let mut comm = TeamComm::create_initial(fabric2.clone(), me, cfg, &mut boot);
            body(&mut comm, me);
            fabric2.image_done(me);
        });
    }

    fn all_barrier_algos() -> Vec<BarrierAlgo> {
        vec![
            BarrierAlgo::CentralCounter,
            BarrierAlgo::BinomialTree,
            BarrierAlgo::Dissemination,
            BarrierAlgo::Tdlb,
            BarrierAlgo::TdlbMultilevel,
            BarrierAlgo::Auto,
        ]
    }

    /// A barrier is correct when no image exits episode `e` before every
    /// image entered episode `e`. We check with a shared counter: each
    /// image bumps it before the barrier and asserts it reads ≥ `n * e`
    /// afterwards (the classic barrier litmus test).
    fn check_barrier(fabric: ArcFabric, algo: BarrierAlgo, episodes: u64) {
        let n = fabric.n_images() as u64;
        let entered = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let cfg = CollectiveConfig {
            barrier: algo,
            ..CollectiveConfig::default()
        };
        let entered2 = entered.clone();
        with_team(fabric, cfg, move |comm, _me| {
            for e in 1..=episodes {
                entered2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                comm.barrier();
                let seen = entered2.load(std::sync::atomic::Ordering::SeqCst);
                assert!(
                    seen >= n * e,
                    "{algo:?}: exited episode {e} having seen only {seen}/{} entries",
                    n * e
                );
            }
        });
    }

    #[test]
    fn barriers_synchronize_on_sim_hierarchical() {
        for algo in all_barrier_algos() {
            check_barrier(sim_fabric(3, 4, 12, 4), algo, 5);
        }
    }

    #[test]
    fn barriers_synchronize_on_sim_flat() {
        for algo in all_barrier_algos() {
            check_barrier(sim_fabric(5, 1, 5, 1), algo, 4);
        }
    }

    #[test]
    fn barriers_synchronize_on_sim_single_node() {
        for algo in all_barrier_algos() {
            check_barrier(sim_fabric(1, 8, 8, 8), algo, 4);
        }
    }

    #[test]
    fn barriers_synchronize_on_sim_uneven_nodes() {
        // 7 images, 3 per node: nodes carry 3/3/1 — exercises degenerate
        // intranode sets inside TDLB.
        for algo in all_barrier_algos() {
            check_barrier(sim_fabric(3, 3, 7, 3), algo, 4);
        }
    }

    #[test]
    fn barriers_synchronize_on_threads() {
        for algo in all_barrier_algos() {
            check_barrier(thread_fabric(2, 4, 8, 4), algo, 50);
        }
    }

    #[test]
    fn barrier_two_images() {
        for algo in all_barrier_algos() {
            check_barrier(sim_fabric(2, 1, 2, 1), algo, 3);
        }
    }

    #[test]
    fn barrier_singleton_team_is_noop() {
        check_barrier(sim_fabric(1, 1, 1, 1), BarrierAlgo::Auto, 3);
    }

    fn all_reduce_algos() -> Vec<ReduceAlgo> {
        vec![
            ReduceAlgo::FlatRecursiveDoubling,
            ReduceAlgo::FlatBinomial,
            ReduceAlgo::TwoLevel,
            ReduceAlgo::TwoLevelPipelined,
            ReduceAlgo::Rabenseifner,
            ReduceAlgo::Auto,
        ]
    }

    fn check_allreduce_sum(fabric: ArcFabric, algo: ReduceAlgo, episodes: u64) {
        let n = fabric.n_images() as u64;
        let cfg = CollectiveConfig {
            reduce: algo,
            ..CollectiveConfig::default()
        };
        with_team(fabric, cfg, move |comm, me| {
            for e in 1..=episodes {
                // Distinct per-image vectors so wrong routing is caught.
                let mut v = vec![
                    (me.index() as u64 + 1) * e,
                    me.index() as u64 * me.index() as u64,
                    1u64,
                ];
                let expect0: u64 = (1..=n).map(|i| i * e).sum();
                let expect1: u64 = (0..n).map(|i| i * i).sum();
                comm.co_sum(&mut v);
                assert_eq!(v, vec![expect0, expect1, n], "{algo:?} episode {e}");
            }
        });
    }

    #[test]
    fn allreduce_sum_sim_hierarchical() {
        for algo in all_reduce_algos() {
            check_allreduce_sum(sim_fabric(3, 4, 12, 4), algo, 4);
        }
    }

    #[test]
    fn allreduce_sum_sim_nonpow2_flat() {
        // 6 nodes, 1 image each: exercises the fold-in/fold-out path.
        for algo in all_reduce_algos() {
            check_allreduce_sum(sim_fabric(6, 1, 6, 1), algo, 4);
        }
    }

    #[test]
    fn allreduce_sum_sim_nonpow2_leaders() {
        // 5 nodes × 3 images: 5 leaders (non-power-of-two) in stage 2.
        for algo in all_reduce_algos() {
            check_allreduce_sum(sim_fabric(5, 3, 15, 3), algo, 3);
        }
    }

    #[test]
    fn allreduce_sum_threads() {
        for algo in all_reduce_algos() {
            check_allreduce_sum(thread_fabric(2, 4, 8, 4), algo, 25);
        }
    }

    #[test]
    fn allreduce_min_max_float() {
        with_team(
            sim_fabric(2, 4, 8, 4),
            CollectiveConfig::two_level(),
            |comm, me| {
                let mut v = vec![me.index() as f64 - 3.5];
                comm.co_max(&mut v);
                assert_eq!(v[0], 3.5);
                let mut v = vec![me.index() as f64 - 3.5];
                comm.co_min(&mut v);
                assert_eq!(v[0], -3.5);
            },
        );
    }

    #[test]
    fn co_reduce_with_maxloc() {
        // The HPL pivot pattern: (|value|, index) with max-by-value —
        // a user-defined commutative op over a tuple element.
        with_team(
            sim_fabric(2, 4, 8, 4),
            CollectiveConfig::two_level(),
            |comm, me| {
                let val = ((me.index() * 7 + 3) % 11) as f64; // max 10.0 at image 1
                let mut v = vec![(val, me.index() as u64)];
                comm.co_reduce_with(&mut v, |a, b| if a.0 >= b.0 { a } else { b });
                assert_eq!(v[0], (10.0, 1));
            },
        );
    }

    #[test]
    fn reduce_growing_buffers_reuse_team() {
        // Scratch must grow collectively when element counts increase.
        with_team(
            sim_fabric(2, 2, 4, 2),
            CollectiveConfig::two_level(),
            |comm, me| {
                for len in [1usize, 8, 64, 256] {
                    let mut v = vec![1u64; len];
                    comm.co_sum(&mut v);
                    assert!(v.iter().all(|&x| x == 4), "len {len}");
                    let _ = me;
                }
            },
        );
    }

    fn all_bcast_algos() -> Vec<BcastAlgo> {
        vec![
            BcastAlgo::FlatLinear,
            BcastAlgo::FlatBinomial,
            BcastAlgo::TwoLevel,
            BcastAlgo::TwoLevelPipelined,
            BcastAlgo::Auto,
        ]
    }

    fn check_broadcast(fabric: ArcFabric, algo: BcastAlgo, episodes: usize) {
        let n = fabric.n_images();
        let cfg = CollectiveConfig {
            bcast: algo,
            ..CollectiveConfig::default()
        };
        with_team(fabric, cfg, move |comm, me| {
            for e in 0..episodes {
                let root = (e * 3 + 1) % n; // rotate roots
                let payload = ((e as u64) << 32) | root as u64;
                let mut v = if comm.rank() == root {
                    vec![payload, payload + 1]
                } else {
                    vec![0, 0]
                };
                comm.co_broadcast(&mut v, root);
                assert_eq!(
                    v,
                    vec![payload, payload + 1],
                    "{algo:?} episode {e} root {root} at image {me:?}"
                );
            }
        });
    }

    #[test]
    fn broadcast_sim_hierarchical() {
        for algo in all_bcast_algos() {
            check_broadcast(sim_fabric(3, 4, 12, 4), algo, 6);
        }
    }

    #[test]
    fn broadcast_sim_flat() {
        for algo in all_bcast_algos() {
            check_broadcast(sim_fabric(7, 1, 7, 1), algo, 5);
        }
    }

    #[test]
    fn broadcast_threads_rotating_roots() {
        for algo in all_bcast_algos() {
            check_broadcast(thread_fabric(2, 4, 8, 4), algo, 24);
        }
    }

    #[test]
    fn subteams_split_and_collect_independently() {
        // 12 images on 3 nodes split into even/odd teams; each subteam
        // reduces independently; then the parent team still works.
        let fabric = sim_fabric(3, 4, 12, 4);
        with_team(fabric, CollectiveConfig::auto(), |comm, me| {
            let color = (me.index() % 2) as i64;
            let mut sub = comm.create_sub(color, None, None);
            assert_eq!(sub.size(), 6);
            let mut v = vec![me.index() as u64];
            sub.co_sum(&mut v);
            let expect: u64 = (0..12u64).filter(|i| i % 2 == color as u64).sum();
            assert_eq!(v[0], expect);
            sub.barrier();
            // Parent still functional after subteam traffic.
            let mut w = vec![1u64];
            comm.co_sum(&mut w);
            assert_eq!(w[0], 12);
        });
    }

    #[test]
    fn nested_subteams_two_levels_deep() {
        let fabric = sim_fabric(2, 4, 8, 4);
        with_team(fabric, CollectiveConfig::auto(), |comm, me| {
            let half = (me.index() / 4) as i64;
            let mut sub = comm.create_sub(half, None, None);
            assert_eq!(sub.size(), 4);
            let quarter = ((me.index() % 4) / 2) as i64;
            let mut subsub = sub.create_sub(quarter, None, None);
            assert_eq!(subsub.size(), 2);
            let mut v = vec![1u64];
            subsub.co_sum(&mut v);
            assert_eq!(v[0], 2);
            subsub.barrier();
            sub.barrier();
            comm.barrier();
        });
    }

    #[test]
    fn form_team_with_new_index_reorders() {
        let fabric = sim_fabric(2, 2, 4, 2);
        with_team(fabric, CollectiveConfig::auto(), |comm, me| {
            // Single team, ranks reversed via new_index.
            let idx = comm.size() - comm.rank(); // 4,3,2,1 for ranks 0..3
            let sub = comm.create_sub(1, Some(idx), None);
            assert_eq!(sub.rank(), comm.size() - 1 - comm.rank());
            assert_eq!(sub.proc_of(sub.rank()), me);
        });
    }

    #[test]
    fn row_and_column_teams_like_hpl() {
        // 2x2 grid on 4 images: row teams {0,1},{2,3}; col teams {0,2},{1,3}.
        let fabric = sim_fabric(2, 2, 4, 2);
        with_team(fabric, CollectiveConfig::auto(), |comm, me| {
            let row = (me.index() / 2) as i64;
            let col = (me.index() % 2) as i64;
            let mut row_team = comm.create_sub(row, None, None);
            let mut col_team = comm.create_sub(col, None, None);
            let mut v = vec![me.index() as u64 + 1];
            row_team.co_sum(&mut v);
            let row_expect = if me.index() < 2 { 1 + 2 } else { 3 + 4 };
            assert_eq!(v[0], row_expect);
            let mut w = vec![me.index() as u64 + 1];
            col_team.co_max(&mut w);
            let col_expect = if me.index() % 2 == 0 { 3 } else { 4 };
            assert_eq!(w[0], col_expect);
        });
    }

    #[test]
    fn allgather4_exchanges_ranked_values() {
        let fabric = sim_fabric(2, 2, 4, 2);
        with_team(fabric, CollectiveConfig::auto(), |comm, _me| {
            let r = comm.rank() as u64;
            let got = comm.allgather4([r, r * 10, 0, 7]);
            for (j, v) in got.iter().enumerate() {
                assert_eq!(v[0], j as u64);
                assert_eq!(v[1], j as u64 * 10);
                assert_eq!(v[3], 7);
            }
        });
    }

    /// Total notifications of a fresh deterministic run with `episodes`
    /// barriers: the per-episode count is the difference of two runs —
    /// exact, because the simulator is deterministic (no wall-clock
    /// snapshot windows).
    fn barrier_traffic(
        nodes: usize,
        cores: usize,
        images: usize,
        per_node: usize,
        algo: BarrierAlgo,
        episodes: usize,
    ) -> (u64, u64) {
        let fabric = sim_fabric(nodes, cores, images, per_node);
        let cfg = CollectiveConfig {
            barrier: algo,
            ..CollectiveConfig::default()
        };
        let f2 = fabric.clone();
        with_team(fabric, cfg, move |comm, _me| {
            for _ in 0..episodes {
                comm.barrier();
            }
        });
        let snap = f2.stats().snapshot();
        (snap.flags_intra, snap.flags_inter)
    }

    fn per_episode(
        nodes: usize,
        cores: usize,
        images: usize,
        per_node: usize,
        algo: BarrierAlgo,
    ) -> (u64, u64) {
        let (i1, e1) = barrier_traffic(nodes, cores, images, per_node, algo, 2);
        let (i2, e2) = barrier_traffic(nodes, cores, images, per_node, algo, 6);
        ((i2 - i1) / 4, (e2 - e1) / 4)
    }

    #[test]
    fn dissemination_message_count_matches_closed_form() {
        // Pure dissemination must generate exactly n * ceil(log2 n)
        // notifications per episode — the §IV-A accounting.
        let (intra, inter) = per_episode(8, 1, 8, 1, BarrierAlgo::Dissemination);
        assert_eq!(intra + inter, 8 * 3, "n log n notifications");
        assert_eq!(intra, 0, "one image per node: all traffic crosses nodes");
    }

    #[test]
    fn tdlb_sends_fewer_internode_messages_than_dissemination() {
        let (_, dissem) = per_episode(4, 8, 32, 8, BarrierAlgo::Dissemination);
        let (tdlb_intra, tdlb_inter) = per_episode(4, 8, 32, 8, BarrierAlgo::Tdlb);
        // TDLB: only the 4 leaders disseminate across nodes: 4*2 = 8;
        // the 2(n-L) gather/release notifications stay on-node.
        assert_eq!(tdlb_inter, 8);
        assert_eq!(tdlb_intra, 2 * (32 - 4));
        assert!(
            dissem >= 3 * tdlb_inter,
            "dissemination {dissem} should dwarf TDLB {tdlb_inter}"
        );
    }

    /// A size policy with a tiny chunk so small test payloads still split
    /// into many pipeline chunks.
    fn tiny_chunks() -> SizePolicy {
        SizePolicy {
            chunk_bytes: 16, // 2 u64 elements per chunk
            bcast_crossover_bytes: 0,
            reduce_crossover_bytes: 0,
        }
    }

    #[test]
    fn pipelined_broadcast_multi_chunk_rotating_roots() {
        // 37 elements over 2-element chunks: 19 chunks, the last one short.
        for fabric in [sim_fabric(3, 4, 12, 4), thread_fabric(2, 4, 8, 4)] {
            let n = fabric.n_images();
            let cfg = CollectiveConfig {
                bcast: BcastAlgo::TwoLevelPipelined,
                ..CollectiveConfig::default()
            };
            with_team(fabric, cfg, move |comm, me| {
                comm.set_size_policy(tiny_chunks());
                for e in 0..6usize {
                    let root = (e * 5 + 2) % n;
                    let len = [37, 1, 2, 40][e % 4];
                    let make = |i: usize| ((e as u64) << 32) | ((i as u64) << 8) | root as u64;
                    let mut v: Vec<u64> = if comm.rank() == root {
                        (0..len).map(make).collect()
                    } else {
                        vec![0; len]
                    };
                    comm.co_broadcast(&mut v, root);
                    let expect: Vec<u64> = (0..len).map(make).collect();
                    assert_eq!(v, expect, "episode {e} root {root} at image {me:?}");
                }
            });
        }
    }

    #[test]
    fn pipelined_reduce_multi_chunk() {
        for fabric in [sim_fabric(3, 4, 12, 4), thread_fabric(2, 4, 8, 4)] {
            let n = fabric.n_images() as u64;
            let cfg = CollectiveConfig {
                reduce: ReduceAlgo::TwoLevelPipelined,
                ..CollectiveConfig::default()
            };
            with_team(fabric, cfg, move |comm, me| {
                comm.set_size_policy(tiny_chunks());
                for len in [1usize, 5, 37, 64] {
                    let mut v: Vec<u64> = (0..len).map(|i| me.index() as u64 + i as u64).collect();
                    comm.co_sum(&mut v);
                    for (i, &x) in v.iter().enumerate() {
                        let expect: u64 = (0..n).map(|r| r + i as u64).sum();
                        assert_eq!(x, expect, "len {len} elem {i}");
                    }
                }
            });
        }
    }

    #[test]
    fn mixed_algorithms_across_calls_stay_in_sync() {
        // The cumulative-counter discipline must survive interleaving every
        // algorithm on the same team (same accumulating flags).
        with_team(
            sim_fabric(3, 4, 12, 4),
            CollectiveConfig::default(),
            |comm, me| {
                comm.set_size_policy(SizePolicy {
                    chunk_bytes: 16,
                    bcast_crossover_bytes: 64,
                    reduce_crossover_bytes: 64,
                });
                let n = comm.size() as u64;
                for e in 0..4usize {
                    // Small payload (latency path), then large (pipelined).
                    for len in [2usize, 33] {
                        let mut v = vec![1u64; len];
                        comm.co_sum(&mut v);
                        assert!(v.iter().all(|&x| x == n), "episode {e} len {len}");
                        let root = (e + len) % comm.size();
                        let mut w = if comm.rank() == root {
                            vec![7u64; len]
                        } else {
                            vec![0u64; len]
                        };
                        comm.co_broadcast(&mut w, root);
                        assert!(w.iter().all(|&x| x == 7), "episode {e} len {len}");
                    }
                }
                let _ = me;
            },
        );
    }

    /// Per-level chunk accounting for the pipelined two-level broadcast on
    /// 3 nodes × 4 images: whatever the leader topology, each chunk must
    /// cross the network exactly `l−1` times (once per non-root leader),
    /// and each of the 3 effective leaders fans each chunk out to its 3
    /// local members over the node bus.
    #[test]
    fn pipelined_bcast_chunk_counts_per_level() {
        let traffic = |episodes: usize| -> (u64, u64, u64, u64) {
            let fabric = sim_fabric(3, 4, 12, 4);
            let cfg = CollectiveConfig {
                bcast: BcastAlgo::TwoLevelPipelined,
                ..CollectiveConfig::default()
            };
            let f2 = fabric.clone();
            with_team(fabric, cfg, move |comm, _me| {
                comm.set_size_policy(tiny_chunks());
                for e in 0..episodes {
                    let root = e % comm.size();
                    let mut v = vec![1u64; 8]; // 4 chunks of 2 elements
                    comm.co_broadcast(&mut v, root);
                }
            });
            let s = f2.stats().snapshot();
            (
                s.puts_intra,
                s.puts_inter,
                s.puts_nb_injected,
                s.puts_nb_completed,
            )
        };
        let (i1, x1, nb1, _) = traffic(1);
        let (i3, x3, nb3, done3) = traffic(3);
        let per_ep_intra = (i3 - i1) / 2;
        let per_ep_inter = (x3 - x1) / 2;
        let per_ep_nb = (nb3 - nb1) / 2;
        // 4 chunks × (3−1) non-root leaders cross the network.
        assert_eq!(per_ep_inter, 4 * 2, "inter-node chunk hops per episode");
        // 4 chunks × 9 local members ride the node buses.
        assert_eq!(per_ep_intra, 4 * 9, "intranode fan-out per episode");
        // Every data move of the episode was a nonblocking put...
        assert_eq!(per_ep_nb, per_ep_intra + per_ep_inter);
        // ...and none is still in flight once the run drained.
        assert_eq!(nb3, done3, "all injected puts completed");
    }

    #[test]
    fn sim_pipelined_collective_times_deterministic() {
        let run = || {
            let fabric = sim_fabric(3, 4, 12, 4);
            let f2 = fabric.clone();
            let times = Arc::new(Mutex::new(vec![0u64; 12]));
            let t2 = times.clone();
            let cfg = CollectiveConfig {
                bcast: BcastAlgo::TwoLevelPipelined,
                reduce: ReduceAlgo::TwoLevelPipelined,
                ..CollectiveConfig::default()
            };
            with_team(fabric, cfg, move |comm, me| {
                comm.set_size_policy(tiny_chunks());
                for e in 0..3usize {
                    let mut v = vec![me.index() as u64; 21];
                    comm.co_sum(&mut v);
                    let mut w = vec![e as u64; 13];
                    comm.co_broadcast(&mut w, e % comm.size());
                }
                t2.lock()[me.index()] = f2.now_ns(me);
            });
            let v = times.lock().clone();
            v
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sim_barrier_virtual_times_deterministic() {
        let run = || {
            let fabric = sim_fabric(4, 8, 32, 8);
            let f2 = fabric.clone();
            let times = Arc::new(Mutex::new(vec![0u64; 32]));
            let t2 = times.clone();
            with_team(fabric, CollectiveConfig::two_level(), move |comm, me| {
                for _ in 0..3 {
                    comm.barrier();
                }
                t2.lock()[me.index()] = f2.now_ns(me);
            });
            let v = times.lock().clone();
            v
        };
        assert_eq!(run(), run());
    }
}
