//! Litmus tests for the `put_nb` fencing edge cases: the small programs
//! whose orderings the nonblocking data path must get right, each pinned
//! down on both fabrics where meaningful, plus the
//! injected == completed stats invariants — including under chaos fault
//! injection (delayed/duplicated completions).

use caf_fabric::socket::testing::{fleet, fleet_with, run_fleet};
use caf_fabric::{
    bootstrap, ChaosConfig, Fabric, PutToken, SimConfig, SimFabric, SocketConfig, ThreadConfig,
    ThreadFabric,
};
use caf_fabric::{run_spmd, FlagId};
use caf_topology::{presets, ImageMap, Placement, ProcId, SoftwareOverheads};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const SPARE_FLAG: FlagId = FlagId(2);
const BSEG: caf_fabric::SegmentId = bootstrap::SEG;

fn sim(nodes: usize, cores: usize, images: usize, chaos: Option<ChaosConfig>) -> Arc<SimFabric> {
    let map = ImageMap::new(presets::mini(nodes, cores), images, &Placement::Packed);
    SimFabric::new(
        map,
        SimConfig {
            cost: presets::whale_cost(),
            overheads: SoftwareOverheads::NONE,
            chaos,
            ..SimConfig::default()
        },
    )
}

#[test]
fn quiet_with_zero_outstanding_puts_is_a_no_op() {
    let f = sim(2, 1, 2, None);
    let me = ProcId(0);
    let t = f.now_ns(me);
    f.quiet(me); // nothing in flight: must not advance time
    assert_eq!(f.now_ns(me), t);
    // ...and must still be a no-op after a put has been fully drained.
    f.put(me, ProcId(1), BSEG, 0, &[1u8; 8]);
    f.quiet(me);
    let after_drain = f.now_ns(me);
    f.quiet(me);
    assert_eq!(f.now_ns(me), after_drain);
    f.image_done(me);
    f.image_done(ProcId(1));
}

#[test]
fn put_test_polled_before_completion_spins_then_succeeds() {
    let f = sim(2, 1, 2, None);
    let f2 = f.clone();
    run_spmd(f.clone(), move |me| {
        if me == ProcId(0) {
            let tok = f2.put_nb(me, ProcId(1), BSEG, 0, &[5u8; 8]);
            // Poll to completion: each failed test costs one poll, so the
            // loop terminates in bounded virtual time and the number of
            // polls is itself deterministic.
            let mut polls = 0u64;
            while !f2.put_test(me, tok) {
                polls += 1;
                assert!(polls < 1_000_000, "put_test never completed");
            }
            assert!(polls > 0, "an inter-node put cannot complete instantly");
            assert!(f2.now_ns(me) >= tok.arrival_ns);
            // A completed token stays completed.
            assert!(f2.put_test(me, tok));
        }
        f2.image_done(me);
    });
    let s = f.stats().snapshot();
    assert_eq!(s.puts_nb_injected, 1);
    assert_eq!(s.puts_nb_completed, 1);
}

#[test]
fn interleaved_put_and_put_nb_to_the_same_slot_keep_program_order() {
    // Blocking and nonblocking puts to the same remote slot from one
    // image: payloads are applied in program order (the fabric's
    // point-to-point ordering), so after a fence + flag handshake the
    // reader sees the *last* write, on both fabrics.
    let check = |fabric: caf_fabric::ArcFabric| {
        let f2 = fabric.clone();
        run_spmd(fabric, move |me| {
            if me == ProcId(0) {
                f2.put(me, ProcId(1), BSEG, 0, &10u64.to_ne_bytes());
                let t1 = f2.put_nb(me, ProcId(1), BSEG, 0, &20u64.to_ne_bytes());
                f2.put(me, ProcId(1), BSEG, 0, &30u64.to_ne_bytes());
                let t2 = f2.put_nb(me, ProcId(1), BSEG, 0, &40u64.to_ne_bytes());
                f2.put_wait(me, t1);
                f2.put_wait(me, t2);
                f2.quiet(me);
                f2.flag_add(me, ProcId(1), SPARE_FLAG, 1);
            } else {
                f2.flag_wait_ge(me, SPARE_FLAG, 1);
                let mut out = [0u8; 8];
                f2.get(me, me, BSEG, 0, &mut out);
                assert_eq!(u64::from_ne_bytes(out), 40, "must see the last write");
            }
            f2.image_done(me);
        });
    };
    check(sim(2, 1, 2, None));
    let map = ImageMap::new(presets::mini(2, 1), 2, &Placement::Packed);
    check(ThreadFabric::new(map, ThreadConfig::default()));
}

#[test]
fn stats_injected_equals_completed_after_every_fence() {
    let f = sim(2, 2, 4, None);
    let f2 = f.clone();
    run_spmd(f.clone(), move |me| {
        if me.index() < 3 {
            let mut tok = PutToken::DONE;
            for k in 0..5usize {
                tok = f2.put_nb(me, ProcId(3), BSEG, 8 * me.index(), &[k as u8; 8]);
            }
            f2.put_wait(me, tok);
            f2.quiet(me);
            f2.flag_add(me, ProcId(3), SPARE_FLAG, 1);
        } else {
            f2.flag_wait_ge(me, SPARE_FLAG, 3);
        }
        f2.image_done(me);
    });
    let s = f.stats().snapshot();
    assert_eq!(s.puts_nb_injected, 15);
    assert_eq!(
        s.puts_nb_completed, s.puts_nb_injected,
        "every injected nonblocking put must complete by run end"
    );
}

#[test]
fn stats_invariant_holds_under_completion_faults() {
    // Delayed + duplicated completions must not double-count: the
    // duplicate landing is stats-neutral, so injected == completed still
    // holds at quiescence for every seed.
    for seed in 0..8 {
        let chaos = ChaosConfig {
            completion_delay_ns: 7_000,
            duplicate_completions: true,
            ..ChaosConfig::from_seed(seed)
        };
        let f = sim(2, 2, 4, Some(chaos));
        let f2 = f.clone();
        run_spmd(f.clone(), move |me| {
            if me.index() > 0 {
                let tok = f2.put_nb(me, ProcId(0), BSEG, 8 * me.index(), &[7u8; 8]);
                f2.put_wait(me, tok);
                f2.flag_add(me, ProcId(0), SPARE_FLAG, 1);
            } else {
                f2.flag_wait_ge(me, SPARE_FLAG, 3);
            }
            f2.image_done(me);
        });
        let s = f.stats().snapshot();
        assert_eq!(s.puts_nb_injected, s.puts_nb_completed, "seed {seed}");
    }
}

#[test]
fn chaos_delays_put_nb_completion_but_not_correctness() {
    // With a completion delay the token's arrival estimate moves out, so
    // put_wait covers the injected delay; the payload is still the one
    // the flag handshake published.
    let delay = 9_000;
    let f = sim(
        2,
        1,
        2,
        Some(ChaosConfig {
            completion_delay_ns: delay,
            ..ChaosConfig::off(3)
        }),
    );
    let f2 = f.clone();
    run_spmd(f.clone(), move |me| {
        if me == ProcId(0) {
            let before = f2.now_ns(me);
            let tok = f2.put_nb(me, ProcId(1), BSEG, 0, &77u64.to_ne_bytes());
            assert!(tok.arrival_ns >= before + delay, "delay must push arrival");
            f2.put_wait(me, tok);
            assert!(f2.now_ns(me) >= before + delay);
            f2.flag_add(me, ProcId(1), SPARE_FLAG, 1);
        } else {
            f2.flag_wait_ge(me, SPARE_FLAG, 1);
            let mut out = [0u8; 8];
            f2.get(me, me, BSEG, 0, &mut out);
            assert_eq!(u64::from_ne_bytes(out), 77);
        }
        f2.image_done(me);
    });
}

// ---------------------------------------------------------------------------
// SocketFabric ports: the same litmus programs, but with the initiator and
// target in *separate fabric instances* joined over real sockets. With the
// default config the pair exchanges through the zero-copy shared-memory
// tier; the mixed-trio fleets below pin the same contracts on the shm tier
// and the wire ack protocol in one run.
// ---------------------------------------------------------------------------

fn socket_cfg() -> SocketConfig {
    SocketConfig {
        io_timeout: Duration::from_secs(10),
        flag_wait_timeout: Duration::from_secs(10),
        ..SocketConfig::default()
    }
}

fn socket_pair() -> Vec<Arc<caf_fabric::SocketFabric>> {
    let map = ImageMap::new(presets::mini(2, 1), 2, &Placement::Packed);
    fleet(&map, &socket_cfg())
}

/// A three-process fleet with a deliberately mixed transport: ranks 0 and
/// 1 advertise shared segments (their pair runs over the shm tier where
/// supported), rank 2 runs with the tier disabled (`CAF_SOCKET_SHM=0`
/// semantics), so every pair touching it pays the full frame + ack
/// protocol. One program can then pin an ordering contract on both tiers
/// in the same run.
fn mixed_trio() -> Vec<Arc<caf_fabric::SocketFabric>> {
    let map = ImageMap::new(presets::mini(3, 1), 3, &Placement::Packed);
    let shm = socket_cfg();
    let wire = SocketConfig {
        shm: false,
        ..socket_cfg()
    };
    fleet_with(&map, &[shm.clone(), shm, wire])
}

#[test]
fn socket_quiet_with_zero_outstanding_puts_is_a_no_op() {
    let fabrics = socket_pair();
    run_fleet(&fabrics, |f, me| {
        if me == ProcId(0) {
            f.quiet(me); // nothing in flight: must return immediately
            f.put(me, ProcId(1), BSEG, 0, &[1u8; 8]);
            f.quiet(me); // blocking put is already acked: still a no-op
            f.quiet(me);
        }
        f.image_done(me);
    });
}

#[test]
fn socket_put_test_polled_before_completion_eventually_succeeds() {
    let fabrics = socket_pair();
    let initiator = fabrics[0].clone();
    run_fleet(&fabrics, |f, me| {
        if me == ProcId(0) {
            let tok = f.put_nb(me, ProcId(1), BSEG, 0, &[5u8; 8]);
            let mut polls = 0u64;
            while !f.put_test(me, tok) {
                polls += 1;
                assert!(polls < 100_000_000, "put_test never completed");
                std::hint::spin_loop();
            }
            // A completed token stays completed.
            assert!(f.put_test(me, tok));
            f.quiet(me);
        }
        f.image_done(me);
    });
    let s = initiator.stats().snapshot();
    assert_eq!(s.puts_nb_injected, 1);
    assert_eq!(s.puts_nb_completed, 1);
}

#[test]
fn socket_interleaved_put_and_put_nb_keep_program_order() {
    // The core ordering litmus over the wire: one egress connection per
    // ordered pair applies payloads in program order, so after the fence +
    // flag handshake the reader must see the *last* write.
    let fabrics = socket_pair();
    run_fleet(&fabrics, |f, me| {
        if me == ProcId(0) {
            f.put(me, ProcId(1), BSEG, 0, &10u64.to_ne_bytes());
            let t1 = f.put_nb(me, ProcId(1), BSEG, 0, &20u64.to_ne_bytes());
            f.put(me, ProcId(1), BSEG, 0, &30u64.to_ne_bytes());
            let t2 = f.put_nb(me, ProcId(1), BSEG, 0, &40u64.to_ne_bytes());
            f.put_wait(me, t1);
            f.put_wait(me, t2);
            f.quiet(me);
            f.flag_add(me, ProcId(1), SPARE_FLAG, 1);
        } else {
            f.flag_wait_ge(me, SPARE_FLAG, 1);
            let mut out = [0u8; 8];
            f.get(me, me, BSEG, 0, &mut out);
            assert_eq!(u64::from_ne_bytes(out), 40, "must see the last write");
        }
        f.image_done(me);
    });
}

#[test]
fn socket_stats_injected_equals_completed_after_every_fence() {
    let map = ImageMap::new(presets::mini(2, 2), 4, &Placement::Packed);
    let fabrics = fleet(&map, &socket_cfg());
    let stats_fabrics = fabrics.clone();
    run_fleet(&fabrics, |f, me| {
        if me.index() < 3 {
            let mut tok = PutToken::DONE;
            for k in 0..5usize {
                tok = f.put_nb(me, ProcId(3), BSEG, 8 * me.index(), &[k as u8; 8]);
            }
            f.put_wait(me, tok);
            f.quiet(me);
            f.flag_add(me, ProcId(3), SPARE_FLAG, 1);
        } else {
            f.flag_wait_ge(me, SPARE_FLAG, 3);
        }
        f.image_done(me);
    });
    // Per-process stats: sum injections and completions across the fleet.
    let (injected, completed) = stats_fabrics
        .iter()
        .map(|f| {
            let s = f.stats().snapshot();
            (s.puts_nb_injected, s.puts_nb_completed)
        })
        .fold((0, 0), |(i, c), (fi, fc)| (i + fi, c + fc));
    assert_eq!(injected, 15);
    assert_eq!(
        completed, injected,
        "every injected nonblocking put must be acked by run end"
    );
}

#[test]
fn mixed_fleet_interleaved_puts_keep_program_order_on_both_tiers() {
    // The core ordering litmus, once per transport tier in one fleet:
    // image 0 runs the blocking/nonblocking interleave against image 1
    // (shared-memory pair) and image 2 (wire pair); both readers must see
    // the *last* write after the fence + flag handshake.
    let fabrics = mixed_trio();
    let initiator = fabrics[0].clone();
    run_fleet(&fabrics, |f, me| {
        if me == ProcId(0) {
            for peer in [ProcId(1), ProcId(2)] {
                f.put(me, peer, BSEG, 0, &10u64.to_ne_bytes());
                let t1 = f.put_nb(me, peer, BSEG, 0, &20u64.to_ne_bytes());
                f.put(me, peer, BSEG, 0, &30u64.to_ne_bytes());
                let t2 = f.put_nb(me, peer, BSEG, 0, &40u64.to_ne_bytes());
                f.put_wait(me, t1);
                f.put_wait(me, t2);
                f.quiet(me);
                f.flag_add(me, peer, SPARE_FLAG, 1);
            }
        } else {
            f.flag_wait_ge(me, SPARE_FLAG, 1);
            let mut out = [0u8; 8];
            f.get(me, me, BSEG, 0, &mut out);
            assert_eq!(
                u64::from_ne_bytes(out),
                40,
                "image {} must see the last write",
                me.index() + 1
            );
        }
        f.image_done(me);
    });
    // The fleet must actually have been mixed: the wire leg shipped puts
    // inter-process and (where the tier exists) the shm leg moved its
    // bytes without any frames.
    let s0 = initiator.stats().snapshot();
    assert!(s0.puts_inter >= 2, "wire leg must ship puts: {s0:?}");
    if cfg!(unix) {
        assert!(s0.shm_puts >= 2, "shm leg must land puts: {s0:?}");
    }
}

#[test]
fn mixed_fleet_put_test_and_stats_cover_both_tiers() {
    // put_nb against each tier: the wire token retires through the ack
    // ledger (polling spins until the ack lands), the shm token is
    // complete at injection — and the injected == completed invariant
    // must hold over the union.
    let fabrics = mixed_trio();
    let initiator = fabrics[0].clone();
    run_fleet(&fabrics, |f, me| {
        if me == ProcId(0) {
            for peer in [ProcId(1), ProcId(2)] {
                let tok = f.put_nb(me, peer, BSEG, 0, &[9u8; 8]);
                let mut polls = 0u64;
                while !f.put_test(me, tok) {
                    polls += 1;
                    assert!(polls < 100_000_000, "put_test never completed");
                    std::hint::spin_loop();
                }
                assert!(f.put_test(me, tok), "a completed token stays completed");
            }
            f.quiet(me);
            f.flag_add(me, ProcId(1), SPARE_FLAG, 1);
            f.flag_add(me, ProcId(2), SPARE_FLAG, 1);
        } else {
            f.flag_wait_ge(me, SPARE_FLAG, 1);
        }
        f.image_done(me);
    });
    let s = initiator.stats().snapshot();
    assert_eq!(s.puts_nb_injected, 2);
    assert_eq!(
        s.puts_nb_completed, s.puts_nb_injected,
        "both tiers' tokens must retire: {s:?}"
    );
}

#[test]
#[cfg(unix)]
fn mixed_fleet_kill_mid_put_poisons_each_survivor_loudly() {
    // The kill-mid-put drill: rank 1 — the shared-memory peer — is severed
    // while images 1 and 3 are streaming puts at it from *different*
    // tiers. Each survivor must fail its own next operation with a loud
    // poison report naming the dead peer (no silent hang, no quiet exit),
    // on the shm fast path and the wire path alike.
    let cfg = SocketConfig {
        peer_timeout: Duration::from_millis(400),
        heartbeat_period: Duration::from_millis(50),
        ..socket_cfg()
    };
    let map = ImageMap::new(presets::mini(3, 1), 3, &Placement::Packed);
    let wire = SocketConfig {
        shm: false,
        ..cfg.clone()
    };
    let fabrics = fleet_with(&map, &[cfg.clone(), cfg, wire]);
    let reports: Arc<Mutex<Vec<(usize, String)>>> = Arc::new(Mutex::new(Vec::new()));
    let r2 = reports.clone();
    run_fleet(&fabrics, move |f, me| {
        if me == ProcId(1) {
            // The victim: go dark mid-run, then just wait out the drill.
            std::thread::sleep(Duration::from_millis(100));
            f.sever();
            std::thread::sleep(Duration::from_millis(800));
            return;
        }
        let f2 = f.clone();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let payload = [me.index() as u8; 8];
            let t0 = Instant::now();
            // Stream puts at the victim until the poison lands. Bounded:
            // a drill that never detects the death is itself the failure.
            loop {
                f2.put(me, ProcId(1), BSEG, 8 * me.index(), &payload);
                assert!(
                    t0.elapsed() < Duration::from_secs(10),
                    "death was never detected: survivor image {} still putting",
                    me.index() + 1
                );
            }
        }));
        let msg = match caught {
            Ok(()) => unreachable!("the put loop can only exit by panic"),
            Err(p) => p
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic".into()),
        };
        r2.lock().unwrap().push((me.index(), msg));
    });
    let reports = reports.lock().unwrap();
    let mut ranks: Vec<usize> = reports.iter().map(|(i, _)| *i).collect();
    ranks.sort_unstable();
    assert_eq!(
        ranks,
        vec![0, 2],
        "every survivor must report the death: {reports:?}"
    );
    for (img, msg) in reports.iter() {
        assert!(
            msg.contains("dead") && !msg.contains("never detected"),
            "image {} must name the dead peer loudly, got: {msg}",
            img + 1
        );
    }
}

#[test]
fn thread_fabric_flag_overflow_is_caught() {
    // The sim-side guard has a twin in sim.rs tests; this pins the
    // ThreadFabric's atomic counter guard.
    let map = ImageMap::new(presets::mini(1, 1), 1, &Placement::Packed);
    let f = ThreadFabric::new(map, ThreadConfig::default());
    let me = ProcId(0);
    f.flag_add(me, me, SPARE_FLAG, u64::MAX);
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        f.flag_add(me, me, SPARE_FLAG, 1);
    }));
    assert!(caught.is_err(), "wraparound must panic");
}

#[cfg(unix)]
#[test]
fn shm_flag_table_overflow_degrades_to_wire_flags() {
    // The shared flag table is sized at segment creation (shm::MAX_FLAGS
    // cells per image); long-lived programs that keep forming teams can
    // allocate past it. Flags beyond the table must degrade to heap cells
    // reached over the wire — same semantics, slower path — instead of
    // panicking. Both tiers are exercised in one run: a flag inside the
    // table (shared-atomic fast path) and one past it (wire frame).
    use caf_fabric::socket::shm;
    let fabrics = socket_pair();
    run_fleet(&fabrics, move |f, me| {
        // Identical allocation sequences give identical ids on both
        // images; the bootstrap flags are already allocated, so this
        // spills well past the table.
        let first = f.alloc_flags(me, shm::MAX_FLAGS);
        let inside = first; // below MAX_FLAGS: shared-table cell
        let spilled = FlagId(first.0 + shm::MAX_FLAGS - 1); // past the table
        assert!(inside.0 < shm::MAX_FLAGS && spilled.0 >= shm::MAX_FLAGS);
        // Allocation is image-local: sync before aiming wire frames at the
        // fresh ids, or a fast sender races the peer's own alloc_flags.
        bootstrap::control_barrier(&*f, me, &mut 0);
        let peer = ProcId(1 - me.index());
        if me == ProcId(0) {
            f.flag_add(me, peer, spilled, 7);
            f.flag_add(me, peer, inside, 1);
            // Wait for the peer's acks on the same two tiers.
            f.flag_wait_ge(me, spilled, 1);
            f.flag_wait_ge(me, inside, 1);
            let s = f.stats().snapshot();
            assert!(
                s.shm_flag_ops >= 1,
                "the in-table flag should ride the shm tier: {s:?}"
            );
            assert!(
                s.flags_inter >= 1,
                "the spilled flag must fall back to the wire: {s:?}"
            );
        } else {
            f.flag_wait_ge(me, spilled, 7);
            f.flag_wait_ge(me, inside, 1);
            f.flag_add(me, peer, spilled, 1);
            f.flag_add(me, peer, inside, 1);
        }
        f.image_done(me);
    });
}

#[cfg(unix)]
#[test]
fn shm_segment_directory_overflow_spills_to_wire_windows() {
    // The shared directory holds shm::MAX_SEGS windows per image;
    // long-lived programs that keep allocating (the recover drill's
    // repeated conformance reps, say) run past it. Allocation must then
    // spill to owner-heap windows reached over the wire — the
    // unpublished directory entry is the shared truth both sides consult
    // — while in-directory segments keep the zero-copy path.
    use caf_fabric::socket::shm;
    let fabrics = socket_pair();
    run_fleet(&fabrics, move |f, me| {
        // Identical allocation sequences give identical ids on both
        // images; the bootstrap segment is already allocated, so the top
        // ids land past the directory.
        let mut inside = None;
        let mut spilled = None;
        for _ in 0..shm::MAX_SEGS {
            let s = f.alloc_segment(me, 64);
            if s.0 < shm::MAX_SEGS {
                inside = Some(s);
            } else {
                spilled = Some(s);
            }
        }
        let (inside, spilled) = (inside.unwrap(), spilled.unwrap());
        bootstrap::control_barrier(&*f, me, &mut 0);
        let peer = ProcId(1 - me.index());
        if me == ProcId(0) {
            f.put(me, peer, inside, 0, &[0xAA; 64]);
            f.put(me, peer, spilled, 0, &[0xBB; 64]);
            f.flag_add(me, peer, SPARE_FLAG, 1);
            let s = f.stats().snapshot();
            assert!(
                s.shm_puts >= 1,
                "the in-directory put should ride the shm tier: {s:?}"
            );
            assert!(
                s.puts_inter >= 1,
                "the spilled put must fall back to the wire: {s:?}"
            );
        } else {
            f.flag_wait_ge(me, SPARE_FLAG, 1);
            let mut a = [0u8; 64];
            let mut b = [0u8; 64];
            f.get(me, me, inside, 0, &mut a);
            f.get(me, me, spilled, 0, &mut b);
            assert_eq!(a, [0xAA; 64], "in-directory put landed wrong");
            assert_eq!(b, [0xBB; 64], "spilled put landed wrong");
            // Reading a peer's spilled window must also take the wire and
            // see that owner's heap bytes, not a stale shared window.
            let mut c = [0u8; 64];
            f.get(me, ProcId(0), spilled, 0, &mut c);
            assert_eq!(c, [0u8; 64], "spilled get read the wrong backing");
        }
        f.image_done(me);
    });
}

#[cfg(unix)]
#[test]
fn spilled_put_nb_before_shm_flag_keeps_point_to_point_order() {
    // The cross-tier ordering hazard of a mixed destination: a put_nb into
    // a window the owner spilled past the shared directory travels as a
    // wire frame applied only when the owner's ingress thread services it,
    // while a subsequent flag_add to an in-table flag could land instantly
    // through the shared table — overtaking the payload and breaking the
    // put_nb contract (payload visible after a later flag update to the
    // same target). The fabric must route the flag over the wire while nb
    // debt to that peer is outstanding, so frame order restores program
    // order. Unfenced rounds give the race a real window every iteration.
    use caf_fabric::socket::shm;
    const ACK_FLAG: FlagId = FlagId(3); // bootstrap allocates NUM_FLAGS = 4
    let fabrics = socket_pair();
    run_fleet(&fabrics, move |f, me| {
        // Identical allocation sequences on both images push the top ids
        // past the shared directory, exactly as the directory-overflow
        // litmus above.
        let mut spilled = None;
        for _ in 0..shm::MAX_SEGS {
            let s = f.alloc_segment(me, 64);
            if s.0 >= shm::MAX_SEGS {
                spilled = Some(s);
            }
        }
        let spilled = spilled.unwrap();
        bootstrap::control_barrier(&*f, me, &mut 0);
        let peer = ProcId(1 - me.index());
        if me == ProcId(0) {
            for k in 1..=2000u64 {
                // No put_wait, no quiet: the flag alone must publish it.
                f.put_nb(me, peer, spilled, 0, &k.to_ne_bytes());
                f.flag_add(me, peer, SPARE_FLAG, 1);
                f.flag_wait_ge(me, ACK_FLAG, k);
            }
            f.quiet(me);
        } else {
            for k in 1..=2000u64 {
                f.flag_wait_ge(me, SPARE_FLAG, k);
                let mut b = [0u8; 8];
                f.get(me, me, spilled, 0, &mut b);
                assert_eq!(
                    u64::from_ne_bytes(b),
                    k,
                    "flag overtook the spilled put_nb payload at round {k}"
                );
                f.flag_add(me, peer, ACK_FLAG, 1);
            }
        }
        f.image_done(me);
    });
}
