//! Trace capture across a real socket fleet, in both feature configs.
//!
//! With `--features trace` the per-image rings must fill with the fabric
//! operations each image performed and ship inside the node's telemetry;
//! without it the same program must compile and run against the
//! zero-sized no-op tracer and record nothing. Both halves live in one
//! file so CI exercising either config proves the other still builds.

use caf_fabric::socket::testing::{fleet, run_fleet};
use caf_fabric::{bootstrap, Fabric, SocketConfig, TelemetryPhase};
use caf_topology::{presets, ImageMap, Placement, ProcId};
use caf_trace::Tracer;

const BSEG: caf_fabric::SegmentId = bootstrap::SEG;

fn traced_cfg(n_images: usize) -> SocketConfig {
    SocketConfig {
        tracer: Tracer::for_images(n_images),
        ..SocketConfig::default()
    }
}

/// 2 nodes × 2 images, every image puts to and gets from its cross-node
/// partner, so both processes see intra- and inter-node traffic.
fn cross_node_round_trip() -> Vec<std::sync::Arc<caf_fabric::SocketFabric>> {
    let map = ImageMap::new(presets::mini(2, 2), 4, &Placement::Packed);
    let fabrics = fleet(&map, &traced_cfg(map.n_images()));
    run_fleet(&fabrics, |f, me| {
        let partner = ProcId((me.index() + 2) % 4);
        let payload = [me.index() as u8 + 1; 8];
        f.put(me, partner, BSEG, 64 + me.index() * 8, &payload);
        let mut back = [0u8; 8];
        f.get(me, partner, BSEG, 64 + me.index() * 8, &mut back);
        f.image_done(me);
    });
    fabrics
}

#[cfg(feature = "trace")]
mod trace_on {
    use super::*;
    use caf_trace::EventKind;

    #[test]
    fn fleet_round_trip_fills_per_image_rings() {
        let fabrics = cross_node_round_trip();
        for (rank, f) in fabrics.iter().enumerate() {
            let t = f.tracer();
            assert!(t.enabled(), "trace build must enable the tracer");
            assert!(
                t.total_recorded() > 0,
                "node {rank} recorded nothing despite tracing"
            );
            let events = t.events();
            // Every hosted image contributed at least its own put + get.
            for img in f.hosted() {
                let mine: Vec<_> = events
                    .iter()
                    .filter(|e| e.img as usize == img.index())
                    .collect();
                assert!(
                    mine.iter().any(|e| e.kind == EventKind::Put),
                    "image {} has no put in its ring",
                    img.index()
                );
                assert!(
                    mine.iter().any(|e| e.kind == EventKind::Get),
                    "image {} has no get in its ring",
                    img.index()
                );
            }
            // The same events ship inside the node's telemetry blob.
            let telemetry = f.node_telemetry(TelemetryPhase::Final, None);
            assert_eq!(telemetry.events.len(), events.len());
            assert!(
                telemetry.render_window(3).contains("recent events"),
                "flight-recorder window must render the captured ring"
            );
        }
    }
}

#[cfg(not(feature = "trace"))]
mod trace_off {
    use super::*;

    #[test]
    fn no_op_tracer_records_nothing_but_telemetry_still_ships() {
        let fabrics = cross_node_round_trip();
        for f in &fabrics {
            let t = f.tracer();
            assert!(!t.enabled(), "feature-off tracer must be a no-op");
            assert_eq!(t.total_recorded(), 0);
            assert!(t.events().is_empty());
            // Telemetry still works — counters are real, events empty, and
            // the window points at the missing feature instead of silence.
            let telemetry = f.node_telemetry(TelemetryPhase::Final, None);
            assert!(telemetry.events.is_empty());
            // An in-process fleet is one host, so the cross-process put
            // rides the shm tier where supported and the wire elsewhere —
            // either way the counters must be real.
            assert!(
                telemetry.stats.puts_inter + telemetry.stats.shm_puts >= 1,
                "stats must still count"
            );
            assert!(
                telemetry.render_window(3).contains("trace"),
                "window must say how to get events"
            );
        }
    }
}
