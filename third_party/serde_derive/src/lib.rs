//! Offline shim: `derive(Serialize, Deserialize)` expand to nothing.
//! The workspace only *derives* these traits on model types; nothing
//! actually serializes, so empty expansions are sufficient.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
