//! # caf-topology
//!
//! Machine models, image placement, and communication cost parameters for the
//! `caf-rs` PGAS runtime — the substrate the paper's *memory hierarchy-aware*
//! methodology consumes.
//!
//! The paper ("A Team-Based Methodology of Memory Hierarchy-Aware Runtime
//! Support in Coarray Fortran", Khaldi et al., 2015) optimizes team
//! collectives by distinguishing **intra-node** (shared memory) from
//! **inter-node** (network) communication. Everything the runtime needs to
//! make that distinction lives here:
//!
//! * [`MachineModel`] — a cluster as `nodes × sockets × cores`, e.g. the
//!   paper's 44-node dual quad-core Opteron cluster ([`presets::whale`]).
//! * [`Placement`] / [`ImageMap`] — how SPMD images are laid out on the
//!   machine (block, cyclic, custom), and the reverse queries the runtime
//!   performs (*which node is image i on? which images share my node?*).
//! * [`CostParams`] — a LogGP-style communication cost model with separate
//!   intra-node and inter-node parameters plus per-resource serialization
//!   gaps; consumed by the virtual-time fabric in `caf-fabric`.
//! * [`hierarchy`] — the intranode-set / leader computation used by the
//!   team runtime structure (the paper's `team_type`).
//!
//! Image identifiers at this layer are **0-based process ranks**
//! ([`ProcId`]); the Fortran-style 1-based *image numbers* are a concern of
//! `caf-runtime`.

#![warn(missing_docs)]

pub mod cost;
pub mod hierarchy;
pub mod ids;
pub mod machine;
pub mod placement;
pub mod presets;

pub use cost::{CostParams, SoftwareOverheads};
pub use hierarchy::{HierarchyView, IntranodeSet};
pub use ids::{CoreId, NodeId, ProcId, SocketId};
pub use machine::{CoreLocation, MachineModel};
pub use placement::{ImageMap, Placement};
