//! Wall-clock criterion benches of the real `ThreadFabric` runtime at
//! host scale: barrier, allreduce, broadcast, and coarray put/get. These
//! are honest native numbers (no virtual time) — they measure this crate's
//! implementation on the machine running `cargo bench`, complementing the
//! modeled `exp_*` harnesses.

use caf_fabric::{ArcFabric, ThreadConfig, ThreadFabric};
use caf_runtime::{run_on_fabric, BarrierAlgo, CollectiveConfig};
use caf_topology::{presets, ImageMap, Placement, ProcId};
use criterion::{criterion_group, criterion_main, Criterion};

fn thread_fabric(nodes: usize, cores: usize, images: usize) -> ArcFabric {
    let map = ImageMap::new(presets::mini(nodes, cores), images, &Placement::Packed);
    ThreadFabric::new(map, ThreadConfig::default())
}

/// Amortized measurement: one SPMD launch performing `iters` operations;
/// criterion times the whole launch, we report per-op cost via throughput.
fn launch_and_run(images: usize, cfg: CollectiveConfig, iters: usize, kind: &str) {
    let fabric = thread_fabric(2, images.div_ceil(2), images);
    let kind = kind.to_string();
    run_on_fabric(fabric, cfg, move |img| match kind.as_str() {
        "barrier" => {
            for _ in 0..iters {
                img.sync_all();
            }
        }
        "allreduce" => {
            let mut v = vec![1.0f64; 64];
            for _ in 0..iters {
                img.co_sum(&mut v);
            }
        }
        "broadcast" => {
            let mut v = vec![1.0f64; 64];
            for _ in 0..iters {
                img.co_broadcast(&mut v, 1);
            }
        }
        _ => unreachable!(),
    });
}

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("threadfabric");
    g.sample_size(10);
    for images in [2usize, 4] {
        g.bench_function(format!("barrier_tdlb_{images}img_x100"), |b| {
            b.iter(|| {
                launch_and_run(
                    images,
                    CollectiveConfig {
                        barrier: BarrierAlgo::Tdlb,
                        ..CollectiveConfig::default()
                    },
                    100,
                    "barrier",
                )
            })
        });
        g.bench_function(format!("barrier_dissem_{images}img_x100"), |b| {
            b.iter(|| {
                launch_and_run(
                    images,
                    CollectiveConfig {
                        barrier: BarrierAlgo::Dissemination,
                        ..CollectiveConfig::default()
                    },
                    100,
                    "barrier",
                )
            })
        });
        g.bench_function(format!("allreduce64_{images}img_x50"), |b| {
            b.iter(|| launch_and_run(images, CollectiveConfig::auto(), 50, "allreduce"))
        });
        g.bench_function(format!("broadcast64_{images}img_x50"), |b| {
            b.iter(|| launch_and_run(images, CollectiveConfig::auto(), 50, "broadcast"))
        });
    }
    g.finish();
}

fn bench_fabric_primitives(c: &mut Criterion) {
    let fabric = thread_fabric(1, 2, 2);
    let seg = fabric.alloc_segment(ProcId(0), 1 << 20);
    fabric.alloc_segment(ProcId(1), 1 << 20);
    let payload = vec![7u8; 4096];
    let mut out = vec![0u8; 4096];
    let mut g = c.benchmark_group("fabric_primitives");
    g.bench_function("put_4k_local_node", |b| {
        b.iter(|| fabric.put(ProcId(0), ProcId(1), seg, 0, &payload))
    });
    g.bench_function("get_4k_local_node", |b| {
        b.iter(|| fabric.get(ProcId(0), ProcId(1), seg, 0, &mut out))
    });
    g.bench_function("amo_fetch_add", |b| {
        b.iter(|| fabric.amo_fetch_add_u64(ProcId(0), ProcId(1), seg, 8, 1))
    });
    g.finish();
}

criterion_group!(benches, bench_collectives, bench_fabric_primitives);
criterion_main!(benches);
