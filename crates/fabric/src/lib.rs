//! # caf-fabric
//!
//! One-sided communication fabrics for the `caf-rs` PGAS runtime — the role
//! GASNet plays under the OpenUH Coarray Fortran runtime in the paper.
//!
//! The [`Fabric`] trait exposes exactly the primitives the paper's runtime
//! and collective algorithms consume:
//!
//! * a **symmetric heap**: segments allocated collectively, addressable on
//!   every image by the same [`SegmentId`] (`put`/`get` of raw bytes);
//! * **remote atomics** (`amo_fetch_add_u64`, `amo_cas_u64`) backing the CAF
//!   `atomic_*` intrinsics;
//! * **accumulating sync flags** — monotonically increasing 64-bit counters
//!   with a remote add and a local "wait until ≥" primitive. These are the
//!   paper's `sync_flags` carry: because the counter never resets, a
//!   dissemination barrier needs only *one wait* per round and no
//!   sense-reversal or flag re-initialization between barrier episodes;
//! * a **clock** (`now_ns`) and a **compute hook** (`compute`) so algorithms
//!   can be timed identically in virtual and real time.
//!
//! Three implementations:
//!
//! * [`SimFabric`] — a conservative, deterministic discrete-event simulator.
//!   Images run as OS threads executing the *real* algorithm code; every
//!   fabric call is a scheduling point and only the image with the globally
//!   minimal virtual time may commit an effect. Costs come from a
//!   [`CostParams`] LogGP-style model with distinct intra-node and
//!   inter-node parameters and per-resource serialization (node memory bus,
//!   per-node NIC) — the quantitative substance of the paper's §IV-A
//!   analysis. This is the engine behind every reproduced figure/table.
//! * [`ThreadFabric`] — real shared memory: flags are atomics, puts are
//!   (relaxed-atomic) memcpys, waits spin-then-yield. Inter-node operations
//!   optionally busy-wait an injected latency so small wall-clock runs still
//!   exhibit a hierarchy. Used for functional validation under genuine
//!   concurrency and for native criterion benches.
//! * [`SocketFabric`] — real processes and real wires: one OS process per
//!   occupied node, Unix-domain sockets or TCP between processes, shared
//!   memory within. Launched by the `caf-launch` binary (or in-process via
//!   [`socket::testing`]); the first backend where the paper's leader/slave
//!   split crosses genuine process boundaries.

#![warn(missing_docs)]

pub mod am;
pub mod batch;
pub mod chaos;
pub mod evq;
mod sched;
pub mod seg;
pub mod sim;
pub mod socket;
pub mod spmd;
pub mod stats;
pub mod stepper;
pub mod thread;

pub use am::{Am, AmOp};
pub use batch::{AmPolicy, Batcher};
pub use caf_trace::Tracer;
pub use chaos::ChaosConfig;
pub use evq::{EvKey, ShardedEvq};
pub use seg::{FlagId, SegmentId};
pub use sim::{SimConfig, SimFabric};
pub use socket::obs::{
    HeartbeatSnapshot, HistSnapshot, NodeTelemetry, ObsSnapshot, PeerWireSnapshot, TelemetryPhase,
};
pub use socket::{SocketConfig, SocketFabric};
pub use spmd::run_spmd;
pub use stats::{FabricStats, StatsSnapshot};
pub use stepper::{run_program_spmd, run_stepped, StepOp, StepProgram, SteppedReport};
pub use thread::{ThreadConfig, ThreadFabric};

use caf_topology::{CostParams, ImageMap, ProcId, SoftwareOverheads};
use std::sync::Arc;

/// Completion handle for a nonblocking put ([`Fabric::put_nb`]).
///
/// Deliberately a plain `Copy` value (no lifetime, no drop glue) so the
/// `Fabric` trait stays object-safe and tokens can be held across further
/// fabric calls for free. `arrival_ns` is the fabric's modeled/estimated
/// arrival time of the payload at the target; [`Fabric::put_wait`] blocks
/// until at least then, and [`Fabric::put_test`] polls it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PutToken {
    /// Estimated payload arrival time at the target, in the issuing
    /// fabric's clock (see [`Fabric::now_ns`]). 0 for transfers that
    /// completed synchronously at injection.
    pub arrival_ns: u64,
}

impl PutToken {
    /// A token for a transfer that completed at injection time.
    pub const DONE: PutToken = PutToken { arrival_ns: 0 };
}

/// Why a fallible runtime operation could not complete — the catchable form
/// of the failure that [`Fabric::poison`] otherwise raises as a panic.
///
/// Carried by every `try_*` entry point of the runtime so a dead peer
/// becomes an error an application can recover from (shrink the team or
/// wait for a respawn) instead of a process-terminating panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoveryError {
    /// The fabric is poisoned: a peer died, a fault was injected, or a
    /// deadlock was detected. The string is the fabric's failure report.
    Poisoned(String),
    /// A recovery step (heal rendezvous, rejoin handshake) itself failed.
    HealFailed(String),
    /// This fabric has no recovery support (single-failure-domain fabrics).
    Unsupported,
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Poisoned(msg) => write!(f, "fabric poisoned: {msg}"),
            RecoveryError::HealFailed(msg) => write!(f, "recovery failed: {msg}"),
            RecoveryError::Unsupported => write!(f, "fabric does not support recovery"),
        }
    }
}

impl std::error::Error for RecoveryError {}

/// Environment variable enabling survivable-fleet (respawn) mode in
/// multi-process backends: `CAF_RESPAWN=1` keeps the socket fabric's
/// service threads and data listener up after a peer death so a respawned
/// incarnation can rejoin (see `SocketConfig::respawn`).
pub const ENV_RESPAWN: &str = "CAF_RESPAWN";

/// Environment variable set by the supervisor on a **respawned** fleet
/// member: the recovery generation the rejoining process establishes
/// (`CAF_GENERATION=g`, g ≥ 1). Absent or 0 means a fresh, first-life
/// member.
pub const ENV_GENERATION: &str = "CAF_GENERATION";

/// The one-sided communication substrate consumed by the runtime and the
/// collective algorithms. All methods are called *by* a particular image
/// (`me`); implementations may block the calling OS thread (waits, or the
/// simulator's turn-taking).
///
/// # Memory model
///
/// Like real PGAS fabrics, `put`/`get` are unordered with respect to each
/// other except: operations from one image to one target complete in
/// initiation order (point-to-point ordering, as provided by an RDMA
/// connection), and a flag update initiated after a put to the same target
/// becomes visible only after that put's payload. Programs must synchronize
/// through flags (or the runtime's higher-level sync constructs) before
/// reading remotely-written data; racy accesses yield unspecified (but not
/// undefined, in the Rust sense) byte values.
pub trait Fabric: Send + Sync + 'static {
    /// Number of images this fabric was built for.
    fn n_images(&self) -> usize;

    /// The image placement this fabric models/runs on.
    fn image_map(&self) -> &ImageMap;

    /// The communication cost parameters in effect (the `ThreadFabric` uses
    /// them for injected delays; the `SimFabric` for everything).
    fn cost(&self) -> &CostParams;

    /// The software-stack overheads in effect.
    fn overheads(&self) -> &SoftwareOverheads;

    /// Operation counters.
    fn stats(&self) -> &FabricStats;

    /// The tracer recording this fabric's operations. Inert by default;
    /// fabrics built with an enabled [`Tracer`] in their config return it
    /// here so the runtime and collectives can attach their own spans with
    /// the same clock.
    fn tracer(&self) -> &Tracer {
        caf_trace::off_ref()
    }

    /// This process's observability shipment (counters, wire probes, trace
    /// window), if the fabric has one. Only fabrics with a real process
    /// boundary produce telemetry — [`SocketFabric`] overrides this; the
    /// in-process fabrics return `None` because everything they know is
    /// already visible to the caller directly.
    fn process_telemetry(
        &self,
        phase: TelemetryPhase,
        cause: Option<&str>,
    ) -> Option<NodeTelemetry> {
        let _ = (phase, cause);
        None
    }

    /// Allocate a zeroed segment of `bytes` bytes **on image `me` only**.
    /// The returned id indexes `me`'s segment table; remote images that want
    /// to address this segment must learn the id through communication (or
    /// by symmetry of identical SPMD allocation sequences). Every fabric
    /// pre-creates the [`bootstrap`] resources so that this first exchange
    /// has somewhere to happen.
    fn alloc_segment(&self, me: ProcId, bytes: usize) -> SegmentId;

    /// Allocate `count` fresh sync flags (initialized to 0) on image `me`
    /// only; same locality rules as [`Self::alloc_segment`]. Returns the id
    /// of the first flag; the rest follow consecutively.
    fn alloc_flags(&self, me: ProcId, count: usize) -> FlagId;

    /// One-sided write of `bytes` into `dst`'s segment at `offset`.
    fn put(&self, me: ProcId, dst: ProcId, seg: SegmentId, offset: usize, bytes: &[u8]);

    /// Nonblocking one-sided write: inject the transfer and return
    /// immediately with a completion handle. The payload is guaranteed
    /// visible at `dst` only after [`Self::put_wait`] on the token,
    /// [`Self::quiet`], or a subsequent flag update to the *same* target
    /// (point-to-point ordering — the pipelined collectives' discipline).
    ///
    /// The default forwards to the blocking [`Self::put`]; fabrics with a
    /// genuinely asynchronous data path override it.
    fn put_nb(
        &self,
        me: ProcId,
        dst: ProcId,
        seg: SegmentId,
        offset: usize,
        bytes: &[u8],
    ) -> PutToken {
        self.put(me, dst, seg, offset, bytes);
        PutToken::DONE
    }

    /// Has the transfer behind `token` (issued by `me`) completed? Never
    /// blocks. Fabrics without real asynchrony always answer `true`.
    fn put_test(&self, me: ProcId, token: PutToken) -> bool {
        let _ = (me, token);
        true
    }

    /// Block until the transfer behind `token` (issued by `me`) has
    /// completed — a single-operation [`Self::quiet`].
    fn put_wait(&self, me: ProcId, token: PutToken) {
        let _ = token;
        self.quiet(me);
    }

    /// One-sided read from `src`'s segment at `offset` into `out`.
    fn get(&self, me: ProcId, src: ProcId, seg: SegmentId, offset: usize, out: &mut [u8]);

    /// Remote atomic fetch-and-add on a naturally-aligned `u64` cell of
    /// `target`'s segment. Returns the previous value.
    fn amo_fetch_add_u64(
        &self,
        me: ProcId,
        target: ProcId,
        seg: SegmentId,
        offset: usize,
        delta: u64,
    ) -> u64;

    /// Remote atomic compare-and-swap on a naturally-aligned `u64` cell.
    /// Returns the previous value (the swap happened iff it equals
    /// `expected`).
    fn amo_cas_u64(
        &self,
        me: ProcId,
        target: ProcId,
        seg: SegmentId,
        offset: usize,
        expected: u64,
        new: u64,
    ) -> u64;

    /// Add `delta` to `target`'s flag `flag` (one-sided accumulate; never
    /// returns a value — fire-and-forget notification).
    fn flag_add(&self, me: ProcId, target: ProcId, flag: FlagId, delta: u64);

    /// Block until `me`'s own flag `flag` is ≥ `at_least`.
    fn flag_wait_ge(&self, me: ProcId, flag: FlagId, at_least: u64);

    /// Read `me`'s own flag without blocking.
    fn flag_read(&self, me: ProcId, flag: FlagId) -> u64;

    /// Deliver a batch of active-message ops from `me` to `dst`, applying
    /// them at the target **in slice order** (the active-message tier's
    /// per-destination program-order guarantee).
    ///
    /// The default replays each op through the ordinary one-sided
    /// primitives — correct on any fabric, with no aggregation win. The
    /// built-in backends override it: the simulator lands the whole batch
    /// as one scheduled delivery event, the thread fabric applies it under
    /// one injected-delay window, and the socket fabric ships it as a
    /// single `AmBatch` wire frame covered by [`Self::quiet`].
    ///
    /// Callers normally go through [`Am`] rather than
    /// invoking this directly.
    fn am_deliver(&self, me: ProcId, dst: ProcId, ops: &[AmOp]) {
        for op in ops {
            match op {
                AmOp::Put { seg, off, data } => self.put(me, dst, *seg, *off, data),
                AmOp::FlagAdd { flag, delta } => self.flag_add(me, dst, *flag, *delta),
                AmOp::AmoAdd { seg, off, delta } => {
                    self.amo_fetch_add_u64(me, dst, *seg, *off, *delta);
                }
                AmOp::PutFlag {
                    seg,
                    off,
                    data,
                    flag,
                    delta,
                } => {
                    self.put(me, dst, *seg, *off, data);
                    self.flag_add(me, dst, *flag, *delta);
                }
            }
        }
    }

    /// Complete all outstanding one-sided operations initiated by `me`
    /// (GASNet `gasnet_wait_syncnbi_all` / CAF `sync memory` flavor).
    fn quiet(&self, me: ProcId);

    /// Account for `ns` nanoseconds of local computation (virtual time in
    /// the simulator — scaled by the stack's compute efficiency; a no-op on
    /// real fabrics, where computation takes its own wall time).
    fn compute(&self, me: ProcId, ns: u64);

    /// Current time for `me`, in nanoseconds: virtual time on [`SimFabric`],
    /// wall time since fabric creation on [`ThreadFabric`].
    fn now_ns(&self, me: ProcId) -> u64;

    /// Mark `me` as finished. Every image must call this exactly once, after
    /// its last fabric operation; the simulator needs it to retire the image
    /// from scheduling.
    fn image_done(&self, me: ProcId);

    /// Poison the fabric: every image blocked in (or later entering) a wait
    /// panics with `msg`. Launchers call this when an image thread dies so
    /// one image's failure surfaces everywhere instead of hanging the rest
    /// of the team.
    fn poison(&self, msg: &str);

    /// Non-panicking poison probe: `Err` with the failure report when the
    /// fabric is poisoned. The runtime's `try_*` surface calls this before
    /// and after each collective so dead-peer poison becomes a catchable
    /// [`RecoveryError`] instead of a panic.
    fn health(&self) -> Result<(), RecoveryError> {
        Ok(())
    }

    /// The images currently able to participate in a recovery: everyone
    /// except images the fabric knows to be dead or retired. Fabrics
    /// without death tracking report all images. Every survivor computes
    /// the same list locally — the agreement that lets
    /// `form_recovery_team()` re-form without communicating through the
    /// (possibly poisoned) collective machinery.
    fn alive_images(&self) -> Vec<ProcId> {
        (0..self.n_images()).map(ProcId).collect()
    }

    /// Recovery generation: how many heal rounds this fabric has completed
    /// (plus any generation inherited at construction — a respawned
    /// process starts at the launcher-assigned generation). Stale frames
    /// from before a peer's death carry an older generation and are
    /// rejected by the socket backend's rejoin handshake.
    fn generation(&self) -> u64 {
        0
    }

    /// Collective recovery rendezvous: every image in
    /// [`Self::alive_images`] must call this after catching a
    /// [`RecoveryError`]. Blocks until all survivors (and, for a
    /// respawn-mode socket fleet, the rejoined peer) have arrived, then —
    /// exactly once per round — resets the fabric's synchronization state:
    /// sync flags zeroed, segment tables truncated to the [`bootstrap`]
    /// resources, in-flight notifications dropped, poison cleared, and the
    /// generation bumped. After a successful heal, identical SPMD
    /// allocation sequences on the survivors re-align segment and flag ids
    /// exactly as at startup.
    fn heal(&self, me: ProcId) -> Result<(), RecoveryError> {
        let _ = me;
        Err(RecoveryError::Unsupported)
    }
}

/// Convenience alias used throughout the runtime.
pub type ArcFabric = Arc<dyn Fabric>;

/// Pre-created resources every fabric guarantees to exist on every image
/// from construction time, solving the bootstrap problem of image-local
/// allocation: before any ids can be exchanged, images need *some* agreed
/// place to exchange them through.
pub mod bootstrap {
    use super::{Fabric, FlagId, ProcId, SegmentId};

    /// Segment 0 on every image: `n_images × SLOT_BYTES` bytes of scratch
    /// for startup id exchange (slot `i` belongs to sender `i`).
    pub const SEG: SegmentId = SegmentId(0);
    /// Bytes per sender slot in the bootstrap segment.
    pub const SLOT_BYTES: usize = 64;
    /// Flag 0: central gather counter of the control barrier (on rank 0).
    pub const COUNTER: FlagId = FlagId(0);
    /// Flag 1: per-image release flag of the control barrier.
    pub const RELEASE: FlagId = FlagId(1);
    /// Number of pre-created flags per image.
    pub const NUM_FLAGS: usize = 4;
    /// Number of pre-created segments per image.
    pub const NUM_SEGS: usize = 1;

    /// A simple central-counter barrier over **all** images of the fabric,
    /// built exclusively on bootstrap resources. `epoch` is a per-image
    /// counter that must start at 0 and be passed to every call (the flags
    /// accumulate across episodes — the paper's `sync_flags` carry).
    ///
    /// This is control-plane machinery (runtime startup, team formation),
    /// not a benchmarked collective; the real barrier algorithms live in
    /// `caf-collectives`.
    pub fn control_barrier<F: Fabric + ?Sized>(fabric: &F, me: ProcId, epoch: &mut u64) {
        *epoch += 1;
        let n = fabric.n_images() as u64;
        if n == 1 {
            return;
        }
        if me.index() == 0 {
            fabric.flag_wait_ge(me, COUNTER, (n - 1) * *epoch);
            for j in 1..n as usize {
                fabric.flag_add(me, ProcId(j), RELEASE, 1);
            }
        } else {
            fabric.flag_add(me, ProcId(0), COUNTER, 1);
            fabric.flag_wait_ge(me, RELEASE, *epoch);
        }
    }

    /// [`control_barrier`] restricted to an explicit member list — the
    /// control-plane barrier of **recovery team formation**, where the
    /// full-fabric barrier is unusable because some images are dead (and
    /// rank 0, the usual leader, may be among them). The leader is
    /// `members[0]`; every member passes the same list and its own
    /// post-heal epoch counter (restart at 0 after [`Fabric::heal`] zeroes
    /// the flags).
    pub fn control_barrier_among<F: Fabric + ?Sized>(
        fabric: &F,
        me: ProcId,
        members: &[ProcId],
        epoch: &mut u64,
    ) {
        *epoch += 1;
        let n = members.len() as u64;
        if n <= 1 {
            return;
        }
        let leader = members[0];
        if me == leader {
            fabric.flag_wait_ge(me, COUNTER, (n - 1) * *epoch);
            for &j in &members[1..] {
                fabric.flag_add(me, j, RELEASE, 1);
            }
        } else {
            fabric.flag_add(me, leader, COUNTER, 1);
            fabric.flag_wait_ge(me, RELEASE, *epoch);
        }
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    #[test]
    fn fabric_trait_is_object_safe() {
        // Compile-time check: we can name the trait object.
        fn _takes(_: &ArcFabric) {}
    }
}
