//! Property tests of the simulation fabric: determinism, virtual-time
//! monotonicity, flag-accumulation arithmetic, and payload integrity under
//! arbitrary operation schedules.

use caf_fabric::{bootstrap, Fabric, SimConfig, SimFabric, ThreadConfig, ThreadFabric};
use caf_fabric::{run_spmd, FlagId};
use caf_topology::{presets, ImageMap, Placement, ProcId, SoftwareOverheads};
use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;

/// A tiny random SPMD program over the bootstrap resources: each image
/// sends `sends[i]` notifications to image `(i+1) % n` then waits for its
/// own expected count (ring traffic — always deadlock-free).
fn ring_program(nodes: usize, cores: usize, images: usize, sends: Vec<u8>) -> Vec<u64> {
    let map = ImageMap::new(presets::mini(nodes, cores), images, &Placement::Packed);
    let fabric = SimFabric::new(
        map,
        SimConfig {
            cost: presets::whale_cost(),
            overheads: SoftwareOverheads::NONE,
            ..SimConfig::default()
        },
    );
    let f2 = fabric.clone();
    let times = Arc::new(Mutex::new(vec![0u64; images]));
    let t2 = times.clone();
    let sends = Arc::new(sends);
    run_spmd(fabric, move |me| {
        let i = me.index();
        let right = ProcId((i + 1) % images);
        let flag = FlagId(2); // bootstrap spare
        let mut last = 0;
        for _ in 0..sends[i % sends.len()] {
            f2.flag_add(me, right, flag, 1);
            let t = f2.now_ns(me);
            assert!(t >= last, "virtual time went backwards");
            last = t;
        }
        let left = (i + images - 1) % images;
        let expect = sends[left % sends.len()] as u64;
        if expect > 0 {
            f2.flag_wait_ge(me, flag, expect);
        }
        t2.lock()[i] = f2.now_ns(me);
        f2.image_done(me);
    });
    let v = times.lock().clone();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sim_is_deterministic_for_arbitrary_ring_traffic(
        nodes in 1usize..4,
        cores in 2usize..4,
        sends in proptest::collection::vec(0u8..6, 1..12),
    ) {
        let images = (nodes * cores).min(8);
        let a = ring_program(nodes, cores, images, sends.clone());
        let b = ring_program(nodes, cores, images, sends);
        prop_assert_eq!(a, b, "same program must give same virtual times");
    }

    #[test]
    fn flag_accumulation_exact_for_arbitrary_deltas(
        deltas in proptest::collection::vec(1u64..1000, 1..20),
    ) {
        let map = ImageMap::new(presets::mini(1, 2), 2, &Placement::Packed);
        let fabric = SimFabric::with_defaults(map);
        let f2 = fabric.clone();
        let total: u64 = deltas.iter().sum();
        let deltas = Arc::new(deltas);
        run_spmd(fabric, move |me| {
            let flag = FlagId(2);
            if me == ProcId(0) {
                for &d in deltas.iter() {
                    f2.flag_add(me, ProcId(1), flag, d);
                }
            } else {
                f2.flag_wait_ge(me, flag, total);
                assert_eq!(f2.flag_read(me, flag), total);
            }
            f2.image_done(me);
        });
    }

    #[test]
    fn payload_roundtrip_any_bytes_any_offset(
        payload in proptest::collection::vec(any::<u8>(), 1..64),
        offset in 0usize..32,
    ) {
        let map = ImageMap::new(presets::mini(2, 1), 2, &Placement::Packed);
        let fabric = SimFabric::with_defaults(map);
        let f2 = fabric.clone();
        let payload = Arc::new(payload);
        let p2 = payload.clone();
        run_spmd(fabric, move |me| {
            let flag = FlagId(2);
            if me == ProcId(0) {
                f2.put(me, ProcId(1), bootstrap::SEG, offset, &p2);
                f2.flag_add(me, ProcId(1), flag, 1);
            } else {
                f2.flag_wait_ge(me, flag, 1);
                let mut out = vec![0u8; p2.len()];
                f2.get(me, me, bootstrap::SEG, offset, &mut out);
                assert_eq!(&out, &*p2);
            }
            f2.image_done(me);
        });
    }

    #[test]
    fn thread_fabric_amo_sums_exactly(
        per_image in proptest::collection::vec(1u16..200, 2..5),
    ) {
        let n = per_image.len();
        let map = ImageMap::new(presets::mini(1, n), n, &Placement::Packed);
        let fabric = ThreadFabric::new(map, ThreadConfig::default());
        let f2 = fabric.clone();
        let per = Arc::new(per_image.clone());
        run_spmd(fabric.clone(), move |me| {
            for _ in 0..per[me.index()] {
                f2.amo_fetch_add_u64(me, ProcId(0), bootstrap::SEG, 8, 1);
            }
            f2.image_done(me);
        });
        let expect: u64 = per_image.iter().map(|&v| v as u64).sum();
        let got = fabric.amo_cas_u64(ProcId(0), ProcId(0), bootstrap::SEG, 8, u64::MAX, u64::MAX);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn makespan_reflects_compute(
        ns in 1_000u64..1_000_000,
    ) {
        let map = ImageMap::new(presets::mini(1, 1), 1, &Placement::Packed);
        let fabric = SimFabric::with_defaults(map);
        fabric.compute(ProcId(0), ns);
        prop_assert_eq!(fabric.now_ns(ProcId(0)), ns);
        fabric.image_done(ProcId(0));
    }
}
