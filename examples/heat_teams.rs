//! Domain decomposition with teams: a 1-D heat-diffusion stencil where the
//! domain is split between two teams that each solve an independent
//! subproblem — the paper's motivating use of teams (§II: "divide
//! applications into loosely-coupled subproblems handled by different
//! subsets of images").
//!
//! Each team's images hold a slice of its rod, exchange halo cells with
//! coarray puts + `sync images`, and periodically `co_max` their local
//! residuals *within the team only* — no global synchronization between
//! the two subproblems.
//!
//! Run with: `cargo run --release --example heat_teams`

use caf::runtime::{run, RunConfig};
use caf::topology::presets;

const CELLS_PER_IMAGE: usize = 64;
const STEPS: usize = 200;
const ALPHA: f64 = 0.25;

fn main() {
    let cfg = RunConfig::sim_packed(presets::mini(2, 4), 8);

    let maxima = run(cfg, |img| {
        // Two teams of 4 images; team 0 simulates a hot-left rod, team 1 a
        // hot-right rod.
        let color = ((img.this_image() - 1) / 4) as i64;
        let team = img.form_team(color);
        let (_team, peak) = img.change_team(team, |img| {
            let me = img.this_image();
            let n = img.num_images();

            // Local slice + 2 halo cells; publish halos through a coarray.
            let halo = img.coarray::<f64>(2); // [0] = my left halo in, [1] = right halo in
            let mut u = vec![0.0f64; CELLS_PER_IMAGE + 2];
            // Boundary condition: 100.0 at one end of the rod.
            if color == 0 && me == 1 {
                u[1] = 100.0;
            }
            if color == 1 && me == n {
                u[CELLS_PER_IMAGE] = 100.0;
            }

            for _step in 0..STEPS {
                // Push my edge cells into my neighbors' halo slots.
                let mut partners = Vec::new();
                if me > 1 {
                    halo.put(me - 1, 1, &[u[1]]); // I am their right halo
                    partners.push(me - 1);
                }
                if me < n {
                    halo.put(me + 1, 0, &[u[CELLS_PER_IMAGE]]);
                    partners.push(me + 1);
                }
                img.sync_images(&partners);

                if me > 1 {
                    u[0] = halo.get_elem(me, 0);
                }
                if me < n {
                    u[CELLS_PER_IMAGE + 1] = halo.get_elem(me, 1);
                }
                // Jacobi step on interior cells (keep boundary cells fixed).
                let fixed_left = color == 0 && me == 1;
                let fixed_right = color == 1 && me == n;
                let mut next = u.clone();
                for i in 1..=CELLS_PER_IMAGE {
                    if (fixed_left && i == 1) || (fixed_right && i == CELLS_PER_IMAGE) {
                        continue;
                    }
                    next[i] = u[i] + ALPHA * (u[i - 1] - 2.0 * u[i] + u[i + 1]);
                }
                u = next;
                // Account the stencil flops to the simulated clock.
                img.compute(img.fabric().cost().flops_to_ns(4 * CELLS_PER_IMAGE as u64));
                img.sync_images(&partners); // halos consumed; safe to overwrite
            }

            // Team-local reduction: hottest interior cell of *this* rod.
            let mut peak = vec![u[1..=CELLS_PER_IMAGE]
                .iter()
                .cloned()
                .fold(f64::MIN, f64::max)];
            img.co_max(&mut peak);
            peak[0]
        });
        (color, peak)
    });

    let team0: Vec<f64> = maxima
        .iter()
        .filter(|(c, _)| *c == 0)
        .map(|(_, p)| *p)
        .collect();
    let team1: Vec<f64> = maxima
        .iter()
        .filter(|(c, _)| *c == 1)
        .map(|(_, p)| *p)
        .collect();
    assert!(team0.iter().all(|&p| (p - team0[0]).abs() < 1e-9));
    assert!(team1.iter().all(|&p| (p - team1[0]).abs() < 1e-9));
    assert!(
        team0[0] > 99.0 && team1[0] > 99.0,
        "boundary heat must persist"
    );
    println!("team 0 peak temperature: {:.3}", team0[0]);
    println!("team 1 peak temperature: {:.3}", team1[0]);
    println!("heat_teams OK — two teams solved independent rods with no global sync");
}
