//! Differential property test: the sharded lazy event queue
//! ([`caf_fabric::ShardedEvq`]) must pop in exactly the order of a single
//! global `BinaryHeap<Reverse<(EvKey, u64)>>` for *any* interleaving of
//! pushes and pops — including equal-time events whose order is decided by
//! the chaos-style `tie` word and, past that, by the insertion sequence
//! number. This is the pop-order oracle behind the simulator's bit-for-bit
//! determinism guarantee, so the sharded core can never be "mostly
//! ordered": one transposition would change flag-delivery order and with
//! it every downstream virtual time.

use caf_fabric::{EvKey, ShardedEvq};
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One scripted step against both queues.
#[derive(Clone, Debug)]
enum Step {
    /// Push onto `shard % shards` with a (possibly colliding) time and a
    /// chaos-priority-style tie word.
    Push { shard: usize, time: u64, tie: u64 },
    /// Pop once from both queues and compare.
    Pop,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    // 3:2 push:pop mix, encoded through a selector byte (the vendored
    // proptest shim has no `prop_oneof`).
    (0u8..5, any::<usize>(), 0u64..64, any::<u64>()).prop_map(|(pick, shard, time, tie)| {
        if pick < 3 {
            Step::Push { shard, time, tie }
        } else {
            Step::Pop
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sharded_queue_pops_match_a_global_heap(
        shards in 1usize..9,
        steps in proptest::collection::vec(step_strategy(), 1..200),
    ) {
        let mut sharded: ShardedEvq<u64> = ShardedEvq::new(shards);
        let mut reference: BinaryHeap<Reverse<(EvKey, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        for step in steps {
            match step {
                Step::Push { shard, time, tie } => {
                    // `seq` uniquifies keys exactly as the simulator's
                    // event counter does; the payload remembers it so a
                    // mismatched pop names the offending event.
                    let key = EvKey { time, tie, seq };
                    seq += 1;
                    sharded.push(shard % shards, key, key.seq);
                    reference.push(Reverse((key, key.seq)));
                }
                Step::Pop => {
                    let got = sharded.pop();
                    let want = reference.pop().map(|Reverse((k, p))| (k, p));
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(sharded.len(), reference.len());
            prop_assert_eq!(sharded.is_empty(), reference.is_empty());
        }
        // Drain both completely: the tail must agree too, or a lazily
        // deferred shard head could hide an ordering bug past the last
        // scripted pop.
        while let Some(want) = reference.pop() {
            let Reverse((k, p)) = want;
            prop_assert_eq!(sharded.pop(), Some((k, p)));
        }
        prop_assert_eq!(sharded.pop(), None);
        prop_assert!(sharded.is_empty());
    }

    #[test]
    fn equal_time_pops_follow_tie_then_seq(
        shards in 1usize..5,
        ties in proptest::collection::vec(any::<u64>(), 2..40),
    ) {
        // All events at one timestamp, scattered round-robin over shards:
        // pop order must be (tie, seq) — the simulator's chaos reorder
        // contract — regardless of which shard each event landed on.
        let mut sharded: ShardedEvq<usize> = ShardedEvq::new(shards);
        let mut expect: Vec<EvKey> = Vec::new();
        for (i, &tie) in ties.iter().enumerate() {
            let key = EvKey { time: 7, tie, seq: i as u64 };
            sharded.push(i % shards, key, i);
            expect.push(key);
        }
        expect.sort();
        for key in expect {
            let (got, payload) = sharded.pop().expect("queue drained early");
            prop_assert_eq!(got, key);
            prop_assert_eq!(payload as u64, key.seq);
        }
        prop_assert!(sharded.is_empty());
    }
}
