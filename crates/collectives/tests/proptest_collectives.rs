//! Property tests of the collective algorithms: every barrier/reduction/
//! broadcast algorithm must be correct for arbitrary machine shapes, team
//! sizes, payloads, and operations — the algorithms may only differ in
//! cost, never in result.

use caf_collectives::{BarrierAlgo, BcastAlgo, CollectiveConfig, ReduceAlgo, TeamComm};
use caf_fabric::{run_spmd, ArcFabric, SimConfig, SimFabric};
use caf_topology::{presets, ImageMap, Placement, ProcId};
use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;

fn fabric(nodes: usize, cores: usize, images: usize) -> ArcFabric {
    let map = ImageMap::new(presets::mini(nodes, cores), images, &Placement::Packed);
    SimFabric::new(map, SimConfig::default())
}

fn with_team(
    fabric: ArcFabric,
    cfg: CollectiveConfig,
    body: impl Fn(&mut TeamComm, ProcId) + Send + Sync + 'static,
) {
    let f2 = fabric.clone();
    run_spmd(fabric, move |me| {
        let mut boot = 0u64;
        let mut comm = TeamComm::create_initial(f2.clone(), me, cfg, &mut boot);
        body(&mut comm, me);
        f2.image_done(me);
    });
}

fn shape_strategy() -> impl Strategy<Value = (usize, usize, usize)> {
    // (nodes, cores, images) with 2..=10 images on up to 3 nodes; at least
    // two cores total so two images always fit.
    (1usize..4, 2usize..5).prop_flat_map(|(nodes, cores)| {
        let cap = (nodes * cores).min(10);
        (Just(nodes), Just(cores), 2..=cap)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn all_reduce_algorithms_agree_with_serial_fold(
        (nodes, cores, images) in shape_strategy(),
        values in proptest::collection::vec(-10_000i64..10_000, 10),
        op_pick in 0usize..3,
    ) {
        let algos = [
            ReduceAlgo::FlatRecursiveDoubling,
            ReduceAlgo::FlatBinomial,
            ReduceAlgo::TwoLevel,
            ReduceAlgo::TwoLevelPipelined,
            ReduceAlgo::Rabenseifner,
        ];
        for algo in algos {
            let cfg = CollectiveConfig { reduce: algo, ..CollectiveConfig::default() };
            let vals = Arc::new(values.clone());
            let v2 = vals.clone();
            let expect: i64 = {
                let contribs = (0..images).map(|i| v2[i % v2.len()]);
                match op_pick {
                    0 => contribs.sum(),
                    1 => contribs.min().unwrap(),
                    _ => contribs.max().unwrap(),
                }
            };
            let vals3 = vals.clone();
            with_team(fabric(nodes, cores, images), cfg, move |comm, me| {
                let mut buf = vec![vals3[me.index() % vals3.len()]];
                match op_pick {
                    0 => comm.co_sum(&mut buf),
                    1 => comm.co_min(&mut buf),
                    _ => comm.co_max(&mut buf),
                }
                assert_eq!(buf[0], expect, "{algo:?}");
            });
        }
    }

    #[test]
    fn all_broadcast_algorithms_deliver_any_root_any_payload(
        (nodes, cores, images) in shape_strategy(),
        root_pick in 0usize..16,
        payload in proptest::collection::vec(any::<i64>(), 1..9),
    ) {
        let root = root_pick % images;
        for algo in [
            BcastAlgo::FlatLinear,
            BcastAlgo::FlatBinomial,
            BcastAlgo::TwoLevel,
            BcastAlgo::TwoLevelPipelined,
        ] {
            let cfg = CollectiveConfig { bcast: algo, ..CollectiveConfig::default() };
            let p = Arc::new(payload.clone());
            let p2 = p.clone();
            with_team(fabric(nodes, cores, images), cfg, move |comm, _me| {
                let mut buf = if comm.rank() == root {
                    p2.to_vec()
                } else {
                    vec![0i64; p2.len()]
                };
                comm.co_broadcast(&mut buf, root);
                assert_eq!(&buf, &*p2, "{algo:?} root {root}");
            });
        }
    }

    #[test]
    fn pipelined_collectives_agree_with_reference_for_any_chunking(
        (nodes, cores, images) in shape_strategy(),
        chunk_elems in 1usize..5,
        len in 1usize..23,
        root_pick in 0usize..16,
        seed in any::<u64>(),
    ) {
        // Chunk boundaries must be invisible: for any chunk size (in
        // elements, converted to bytes below) and any payload length —
        // including lengths that are not a chunk multiple — the pipelined
        // paths must produce exactly what the scalar reference computes.
        let root = root_pick % images;
        let policy = caf_collectives::SizePolicy {
            chunk_bytes: chunk_elems * 8,
            bcast_crossover_bytes: 0,
            reduce_crossover_bytes: 0,
        };
        let cfg = CollectiveConfig {
            reduce: ReduceAlgo::TwoLevelPipelined,
            bcast: BcastAlgo::TwoLevelPipelined,
            ..CollectiveConfig::default()
        };
        with_team(fabric(nodes, cores, images), cfg, move |comm, me| {
            comm.set_size_policy(policy);
            let mut buf: Vec<u64> = (0..len)
                .map(|i| (seed ^ ((me.index() as u64) << 8) ^ i as u64) % 1000)
                .collect();
            let mine = buf.clone();
            comm.co_sum(&mut buf);
            for (i, &x) in buf.iter().enumerate() {
                let expect: u64 = (0..images)
                    .map(|r| (seed ^ ((r as u64) << 8) ^ i as u64) % 1000)
                    .sum();
                assert_eq!(x, expect, "co_sum elem {i} of {len}, chunk {chunk_elems}");
            }
            let mut b = if comm.rank() == root { mine } else { vec![0; len] };
            comm.co_broadcast(&mut b, root);
            for (i, &x) in b.iter().enumerate() {
                let expect = (seed ^ ((root as u64) << 8) ^ i as u64) % 1000;
                assert_eq!(x, expect, "co_broadcast elem {i} of {len}, chunk {chunk_elems}");
            }
        });
    }

    #[test]
    fn all_barrier_algorithms_cost_positive_and_agree_on_episodes(
        (nodes, cores, images) in shape_strategy(),
        episodes in 1u64..6,
    ) {
        for algo in [
            BarrierAlgo::CentralCounter,
            BarrierAlgo::BinomialTree,
            BarrierAlgo::Dissemination,
            BarrierAlgo::Tdlb,
            BarrierAlgo::TdlbMultilevel,
        ] {
            let cfg = CollectiveConfig { barrier: algo, ..CollectiveConfig::default() };
            let counter = Arc::new(Mutex::new(0u64));
            let c2 = counter.clone();
            with_team(fabric(nodes, cores, images), cfg, move |comm, _me| {
                for e in 1..=episodes {
                    {
                        *c2.lock() += 1;
                    }
                    comm.barrier();
                    let seen = *c2.lock();
                    assert!(seen >= images as u64 * e, "{algo:?} episode {e}");
                }
            });
            prop_assert_eq!(*counter.lock(), images as u64 * episodes);
        }
    }

    #[test]
    fn subteam_reductions_respect_arbitrary_colorings(
        (nodes, cores, images) in shape_strategy(),
        colors in proptest::collection::vec(0i64..3, 10),
    ) {
        let colors = Arc::new(colors);
        let c2 = colors.clone();
        let c3 = colors.clone();
        with_team(
            fabric(nodes, cores, images),
            CollectiveConfig::auto(),
            move |comm, me| {
                let my_color = c2[me.index() % c2.len()];
                let mut sub = comm.create_sub(my_color, None, None);
                let mut v = vec![me.index() as u64];
                sub.co_sum(&mut v);
                let expect: u64 = (0..images)
                    .filter(|&i| c2[i % c2.len()] == my_color)
                    .map(|i| i as u64)
                    .sum();
                assert_eq!(v[0], expect);
            },
        );
        let _ = c3;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn gather_and_scatter_roundtrip_any_shape_any_root(
        (nodes, cores, images) in shape_strategy(),
        root_pick in 0usize..16,
        len in 1usize..6,
    ) {
        let root = root_pick % images;
        for algo in [caf_collectives::GatherAlgo::FlatLinear, caf_collectives::GatherAlgo::TwoLevel] {
            let cfg = CollectiveConfig { gather: algo, ..CollectiveConfig::default() };
            with_team(fabric(nodes, cores, images), cfg, move |comm, me| {
                // Gather distinct per-rank data to the root.
                let mine: Vec<u64> = (0..len)
                    .map(|i| (comm.rank() as u64) << 16 | i as u64)
                    .collect();
                let gathered = comm.co_gather(&mine, root);
                if comm.rank() == root {
                    let g = gathered.expect("root gets the data");
                    for r in 0..images {
                        for i in 0..len {
                            assert_eq!(
                                g[r * len + i],
                                (r as u64) << 16 | i as u64,
                                "{algo:?} root {root} rank {r} elem {i}"
                            );
                        }
                    }
                } else {
                    assert!(gathered.is_none());
                }
                // Scatter it back: everyone must recover their own slice.
                let all: Option<Vec<u64>> = if comm.rank() == root {
                    Some((0..images).flat_map(|r| (0..len).map(move |i| (r as u64) * 1000 + i as u64)).collect())
                } else {
                    None
                };
                let mut out = vec![0u64; len];
                comm.co_scatter(all.as_deref(), &mut out, root);
                for (i, v) in out.iter().enumerate() {
                    assert_eq!(*v, (comm.rank() as u64) * 1000 + i as u64, "{algo:?}");
                }
                let _ = me;
            });
        }
    }

    #[test]
    fn gather_with_rotating_roots_many_eras(
        (nodes, cores, images) in shape_strategy(),
        eras in 2usize..7,
    ) {
        with_team(
            fabric(nodes, cores, images),
            CollectiveConfig::two_level(),
            move |comm, _me| {
                for e in 0..eras {
                    let root = (e * 5 + 1) % images;
                    let mine = vec![(comm.rank() * 10 + e) as u64];
                    let g = comm.co_gather(&mine, root);
                    if comm.rank() == root {
                        let g = g.expect("root");
                        for (r, v) in g.iter().enumerate().take(images) {
                            assert_eq!(*v, (r * 10 + e) as u64, "era {e}");
                        }
                    }
                }
            },
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn alltoall_is_a_transpose(
        (nodes, cores, images) in shape_strategy(),
        len in 1usize..5,
        eras in 1usize..4,
    ) {
        with_team(
            fabric(nodes, cores, images),
            CollectiveConfig::auto(),
            move |comm, _me| {
                let n = comm.size();
                let my = comm.rank() as u64;
                for e in 0..eras {
                    // send[j*len + i] encodes (from, to, era, i).
                    let send: Vec<u64> = (0..n)
                        .flat_map(|j| {
                            (0..len).map(move |i| {
                                (my << 32) | ((j as u64) << 16) | ((e as u64) << 8) | i as u64
                            })
                        })
                        .collect();
                    let recv = comm.co_alltoall(&send, len);
                    for r in 0..n {
                        for i in 0..len {
                            let expect = ((r as u64) << 32)
                                | ((comm.rank() as u64) << 16)
                                | ((e as u64) << 8)
                                | i as u64;
                            assert_eq!(recv[r * len + i], expect, "era {e} from {r} elem {i}");
                        }
                    }
                }
            },
        );
    }

    #[test]
    fn alltoall_twice_is_identity_on_symmetric_data(
        (nodes, cores, images) in shape_strategy(),
        seed in any::<u64>(),
    ) {
        with_team(
            fabric(nodes, cores, images),
            CollectiveConfig::auto(),
            move |comm, _me| {
                let n = comm.size();
                let my = comm.rank() as u64;
                let mine: Vec<u64> = (0..n).map(|j| seed ^ (my << 8) ^ j as u64).collect();
                let once = comm.co_alltoall(&mine, 1);
                let twice = comm.co_alltoall(&once, 1);
                // alltoall is the global transpose (r,j) -> (j,r): applying
                // it twice is the identity, and one application exposes the
                // peers' encodings.
                for (j, &got) in once.iter().enumerate() {
                    assert_eq!(got, seed ^ ((j as u64) << 8) ^ my);
                }
                assert_eq!(twice, mine, "transpose twice = identity");
            },
        );
    }
}
