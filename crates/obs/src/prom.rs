//! Live fleet metrics: a registry the supervisor updates from telemetry
//! frames and heartbeat bookkeeping, rendered on demand as Prometheus
//! text exposition (`/metrics`) and a JSON health summary (`/healthz`).
//!
//! Counters are labeled by node (and hierarchy level / direction where it
//! applies) in the `neon` mold: a scrape during a run answers "what is
//! every process doing right now" without attaching a debugger to any of
//! them.

use caf_fabric::NodeTelemetry;
use parking_lot::Mutex;

/// Liveness of one fleet member as the supervisor sees it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum NodeHealth {
    /// Spawned, no telemetry or exit yet (or actively running).
    Live,
    /// Reported results and exited cleanly.
    Done,
    /// Died or was declared dead.
    Dead,
}

struct NodeState {
    images: Vec<u32>,
    health: NodeHealth,
    telemetry: Option<NodeTelemetry>,
    /// Telemetry frames received from this node.
    updates: u64,
    /// Times the supervisor respawned this node after a death.
    respawns: u64,
}

/// Fleet-wide metrics registry: one row per node, updated by the
/// supervisor, rendered for scrapes. All methods take `&self`; internal
/// state is mutexed so the HTTP server can share it with the supervision
/// loop.
pub struct FleetRegistry {
    nodes: Mutex<Vec<NodeState>>,
}

impl FleetRegistry {
    /// A registry for a fleet whose node `r` hosts `node_images[r]`
    /// (global 0-based image ranks).
    pub fn new(node_images: Vec<Vec<u32>>) -> Self {
        Self {
            nodes: Mutex::new(
                node_images
                    .into_iter()
                    .map(|images| NodeState {
                        images,
                        health: NodeHealth::Live,
                        telemetry: None,
                        updates: 0,
                        respawns: 0,
                    })
                    .collect(),
            ),
        }
    }

    /// Absorb a telemetry shipment from `node`. Out-of-range nodes are
    /// ignored (a corrupt frame must not take the metrics surface down).
    pub fn update(&self, node: usize, telemetry: NodeTelemetry) {
        let mut g = self.nodes.lock();
        if let Some(s) = g.get_mut(node) {
            s.updates += 1;
            s.telemetry = Some(telemetry);
        }
    }

    /// Mark `node` as cleanly finished.
    pub fn mark_done(&self, node: usize) {
        let mut g = self.nodes.lock();
        if let Some(s) = g.get_mut(node) {
            s.health = NodeHealth::Done;
        }
    }

    /// Mark `node` as dead.
    pub fn mark_dead(&self, node: usize) {
        let mut g = self.nodes.lock();
        if let Some(s) = g.get_mut(node) {
            s.health = NodeHealth::Dead;
        }
    }

    /// Mark `node` alive again after the supervisor respawned it — the
    /// death stays visible as a bumped `caf_node_respawns_total`.
    pub fn mark_respawned(&self, node: usize) {
        let mut g = self.nodes.lock();
        if let Some(s) = g.get_mut(node) {
            s.health = NodeHealth::Live;
            s.respawns += 1;
        }
    }

    /// Prometheus text exposition format (version 0.0.4) of the fleet's
    /// current state.
    pub fn render_prometheus(&self) -> String {
        let g = self.nodes.lock();
        let mut out = String::with_capacity(1024 + g.len() * 1024);
        let help = |name: &str, kind: &str, text: &str, out: &mut String| {
            out.push_str(&format!("# HELP {name} {text}\n# TYPE {name} {kind}\n"));
        };

        help(
            "caf_node_up",
            "gauge",
            "1 while the fleet member runs, 0 once done or dead",
            &mut out,
        );
        for (r, s) in g.iter().enumerate() {
            let up = if s.health == NodeHealth::Live { 1 } else { 0 };
            out.push_str(&format!("caf_node_up{{node=\"{r}\"}} {up}\n"));
        }

        help(
            "caf_node_images",
            "gauge",
            "images hosted by the fleet member",
            &mut out,
        );
        for (r, s) in g.iter().enumerate() {
            out.push_str(&format!(
                "caf_node_images{{node=\"{r}\"}} {}\n",
                s.images.len()
            ));
        }

        help(
            "caf_telemetry_updates_total",
            "counter",
            "telemetry frames received from the fleet member",
            &mut out,
        );
        for (r, s) in g.iter().enumerate() {
            out.push_str(&format!(
                "caf_telemetry_updates_total{{node=\"{r}\"}} {}\n",
                s.updates
            ));
        }

        help(
            "caf_node_respawns_total",
            "counter",
            "times the supervisor respawned the fleet member after a death",
            &mut out,
        );
        for (r, s) in g.iter().enumerate() {
            out.push_str(&format!(
                "caf_node_respawns_total{{node=\"{r}\"}} {}\n",
                s.respawns
            ));
        }

        // Per-level operation counters from each node's latest shipment.
        type LevelPick = fn(&NodeTelemetry) -> (u64, u64);
        let leveled: [(&str, LevelPick); 4] = [
            ("caf_puts_total", |t| {
                (t.stats.puts_intra, t.stats.puts_inter)
            }),
            ("caf_gets_total", |t| {
                (t.stats.gets_intra, t.stats.gets_inter)
            }),
            ("caf_flags_total", |t| {
                (t.stats.flags_intra, t.stats.flags_inter)
            }),
            ("caf_bytes_total", |t| {
                (t.stats.bytes_intra, t.stats.bytes_inter)
            }),
        ];
        for (name, pick) in leveled {
            help(
                name,
                "counter",
                "fabric operations by memory-hierarchy level",
                &mut out,
            );
            for (r, s) in g.iter().enumerate() {
                if let Some(t) = &s.telemetry {
                    let (intra, inter) = pick(t);
                    out.push_str(&format!(
                        "{name}{{node=\"{r}\",level=\"intra\"}} {intra}\n\
                         {name}{{node=\"{r}\",level=\"inter\"}} {inter}\n"
                    ));
                }
            }
        }

        help(
            "caf_wire_bytes_total",
            "counter",
            "bytes on the wire, including frame headers",
            &mut out,
        );
        help(
            "caf_wire_frames_total",
            "counter",
            "frames on the wire",
            &mut out,
        );
        for (r, s) in g.iter().enumerate() {
            if let Some(t) = &s.telemetry {
                out.push_str(&format!(
                    "caf_wire_bytes_total{{node=\"{r}\",dir=\"tx\"}} {}\n\
                     caf_wire_bytes_total{{node=\"{r}\",dir=\"rx\"}} {}\n\
                     caf_wire_frames_total{{node=\"{r}\",dir=\"tx\"}} {}\n\
                     caf_wire_frames_total{{node=\"{r}\",dir=\"rx\"}} {}\n",
                    t.stats.wire_bytes_tx,
                    t.stats.wire_bytes_rx,
                    t.stats.wire_frames_tx,
                    t.stats.wire_frames_rx,
                ));
            }
        }

        help(
            "caf_ams_total",
            "counter",
            "active messages injected into the batching tier",
            &mut out,
        );
        help(
            "caf_am_batches_total",
            "counter",
            "AM batches flushed (wire frames / delivery events)",
            &mut out,
        );
        help(
            "caf_am_fused_total",
            "counter",
            "put+flag pairs fused into single PutFlag wire ops",
            &mut out,
        );
        for (r, s) in g.iter().enumerate() {
            if let Some(t) = &s.telemetry {
                out.push_str(&format!(
                    "caf_ams_total{{node=\"{r}\"}} {}\n\
                     caf_am_batches_total{{node=\"{r}\"}} {}\n\
                     caf_am_fused_total{{node=\"{r}\"}} {}\n",
                    t.stats.ams_injected, t.stats.am_batches_flushed, t.stats.am_fused,
                ));
            }
        }

        help(
            "caf_shm_puts_total",
            "counter",
            "cross-process puts serviced through the shared-memory tier",
            &mut out,
        );
        help(
            "caf_shm_bytes_total",
            "counter",
            "payload bytes moved through the shared-memory tier",
            &mut out,
        );
        help(
            "caf_shm_flag_ops_total",
            "counter",
            "flag/AMO operations on shared-table atomics (no wire frame)",
            &mut out,
        );
        for (r, s) in g.iter().enumerate() {
            if let Some(t) = &s.telemetry {
                out.push_str(&format!(
                    "caf_shm_puts_total{{node=\"{r}\"}} {}\n\
                     caf_shm_bytes_total{{node=\"{r}\"}} {}\n\
                     caf_shm_flag_ops_total{{node=\"{r}\"}} {}\n",
                    t.stats.shm_puts, t.stats.shm_bytes, t.stats.shm_flag_ops,
                ));
            }
        }

        help(
            "caf_put_ack_latency_ns",
            "summary",
            "blocking remote put send-to-ack service time",
            &mut out,
        );
        for (r, s) in g.iter().enumerate() {
            if let Some(t) = &s.telemetry {
                let h = &t.obs.put_ack;
                for (q, p) in [("0.5", 50.0), ("0.95", 95.0), ("0.99", 99.0)] {
                    out.push_str(&format!(
                        "caf_put_ack_latency_ns{{node=\"{r}\",quantile=\"{q}\"}} {}\n",
                        h.percentile_ns(p)
                    ));
                }
                out.push_str(&format!(
                    "caf_put_ack_latency_ns_sum{{node=\"{r}\"}} {}\n\
                     caf_put_ack_latency_ns_count{{node=\"{r}\"}} {}\n",
                    h.sum_ns, h.count
                ));
            }
        }

        help(
            "caf_heartbeat_max_jitter_ns",
            "gauge",
            "largest observed deviation of a peer heartbeat period from the configured one",
            &mut out,
        );
        for (r, s) in g.iter().enumerate() {
            if let Some(t) = &s.telemetry {
                let worst = t
                    .obs
                    .heartbeats
                    .iter()
                    .map(|h| h.max_abs_dev_ns)
                    .max()
                    .unwrap_or(0);
                out.push_str(&format!(
                    "caf_heartbeat_max_jitter_ns{{node=\"{r}\"}} {worst}\n"
                ));
            }
        }
        out
    }

    /// `(healthy, body)` for `/healthz`: healthy while no member is dead;
    /// the JSON body counts members by state.
    pub fn healthz(&self) -> (bool, String) {
        let g = self.nodes.lock();
        let live = g.iter().filter(|s| s.health == NodeHealth::Live).count();
        let done = g.iter().filter(|s| s.health == NodeHealth::Done).count();
        let dead = g.iter().filter(|s| s.health == NodeHealth::Dead).count();
        let healthy = dead == 0;
        (
            healthy,
            format!(
                "{{\"status\": \"{}\", \"nodes\": {}, \"live\": {live}, \
                 \"done\": {done}, \"dead\": {dead}}}\n",
                if healthy { "ok" } else { "degraded" },
                g.len()
            ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caf_fabric::{ObsSnapshot, StatsSnapshot, TelemetryPhase};

    fn telemetry(node: u32, puts_inter: u64) -> NodeTelemetry {
        NodeTelemetry {
            node,
            phase: TelemetryPhase::Live,
            sent_at_ns: 0,
            cause: String::new(),
            images: vec![node * 2, node * 2 + 1],
            stats: StatsSnapshot {
                puts_inter,
                wire_bytes_tx: 100 * (node as u64 + 1),
                ams_injected: 40,
                am_batches_flushed: 5,
                am_fused: 12,
                shm_puts: 33,
                shm_bytes: 2112,
                shm_flag_ops: 8,
                ..StatsSnapshot::default()
            },
            obs: ObsSnapshot::default(),
            events: Vec::new(),
        }
    }

    fn registry() -> FleetRegistry {
        FleetRegistry::new(vec![vec![0, 1], vec![2, 3]])
    }

    #[test]
    fn metrics_expose_counters_for_live_nodes() {
        let reg = registry();
        reg.update(0, telemetry(0, 5));
        reg.update(1, telemetry(1, 9));
        let m = reg.render_prometheus();
        assert!(m.contains("caf_node_up{node=\"0\"} 1"), "{m}");
        assert!(m.contains("caf_node_up{node=\"1\"} 1"), "{m}");
        assert!(
            m.contains("caf_puts_total{node=\"0\",level=\"inter\"} 5"),
            "{m}"
        );
        assert!(
            m.contains("caf_puts_total{node=\"1\",level=\"inter\"} 9"),
            "{m}"
        );
        assert!(
            m.contains("caf_wire_bytes_total{node=\"1\",dir=\"tx\"} 200"),
            "{m}"
        );
        assert!(m.contains("# TYPE caf_node_up gauge"), "{m}");
        assert!(m.contains("caf_ams_total{node=\"0\"} 40"), "{m}");
        assert!(m.contains("caf_am_batches_total{node=\"1\"} 5"), "{m}");
        assert!(m.contains("caf_am_fused_total{node=\"0\"} 12"), "{m}");
        assert!(m.contains("caf_shm_puts_total{node=\"0\"} 33"), "{m}");
        assert!(m.contains("caf_shm_bytes_total{node=\"1\"} 2112"), "{m}");
        assert!(m.contains("caf_shm_flag_ops_total{node=\"0\"} 8"), "{m}");
        // Out-of-range update must be dropped, not panic.
        reg.update(7, telemetry(7, 1));
    }

    #[test]
    fn health_degrades_on_death() {
        let reg = registry();
        let (ok, body) = reg.healthz();
        assert!(ok);
        assert!(body.contains("\"live\": 2"), "{body}");
        reg.mark_done(0);
        reg.mark_dead(1);
        let (ok, body) = reg.healthz();
        assert!(!ok);
        assert!(body.contains("\"degraded\""), "{body}");
        assert!(body.contains("\"dead\": 1"), "{body}");
        let m = reg.render_prometheus();
        assert!(m.contains("caf_node_up{node=\"0\"} 0"), "{m}");
        assert!(m.contains("caf_node_up{node=\"1\"} 0"), "{m}");
    }

    #[test]
    fn respawn_revives_node_and_counts() {
        let reg = registry();
        reg.mark_dead(1);
        assert!(!reg.healthz().0);
        reg.mark_respawned(1);
        let (ok, body) = reg.healthz();
        assert!(ok, "respawned node counts as live again: {body}");
        let m = reg.render_prometheus();
        assert!(m.contains("caf_node_up{node=\"1\"} 1"), "{m}");
        assert!(m.contains("caf_node_respawns_total{node=\"1\"} 1"), "{m}");
        assert!(m.contains("caf_node_respawns_total{node=\"0\"} 0"), "{m}");
    }

    #[test]
    fn nodes_without_telemetry_render_liveness_only() {
        let reg = registry();
        let m = reg.render_prometheus();
        assert!(m.contains("caf_node_up{node=\"0\"} 1"));
        assert!(!m.contains("caf_puts_total{node="), "{m}");
    }
}
