//! End-to-end tests of the instrumented stack: a traced simulator run
//! through the full runtime (teams, collectives, fabric), checked against
//! the paper's closed forms — notification counts per barrier episode,
//! critical-path shape of TDLB, exporter well-formedness — plus the
//! trace-enriched deadlock report.
//!
//! These tests require the `capture` feature, which the dev-dependencies
//! on the instrumented crates turn on (`caf-runtime/trace` etc.).

use caf_fabric::{Fabric, FlagId, SimConfig, SimFabric};
use caf_runtime::{run_on_fabric, BarrierAlgo, CollectiveConfig};
use caf_topology::{presets, ImageMap, Placement, ProcId};
use caf_trace::{chrome, chrome_trace_json, extract, phase_window, EventKind, Tracer};

/// 16 images dense on the 4-node x 4-core mini machine.
const N: usize = 16;

fn traced_run(algo: BarrierAlgo, episodes: usize) -> Tracer {
    let map = ImageMap::new(presets::mini(4, 4), N, &Placement::Block { per_node: 4 });
    let tracer = Tracer::for_images(N);
    let fabric = SimFabric::new(
        map,
        SimConfig {
            tracer: tracer.clone(),
            ..SimConfig::default()
        },
    );
    let cfg = CollectiveConfig {
        barrier: algo,
        ..CollectiveConfig::default()
    };
    run_on_fabric(fabric, cfg, move |img| {
        for _ in 0..episodes {
            img.sync_all();
        }
    });
    tracer
}

fn flag_adds(t: &Tracer) -> usize {
    t.events()
        .iter()
        .filter(|e| e.kind == EventKind::FlagAdd)
        .count()
}

/// §IV-A closed form: a dissemination barrier over n images performs
/// exactly n·⌈log₂ n⌉ notifications per episode. Measured as the
/// difference of two deterministic runs, so formation traffic cancels.
#[test]
fn dissemination_flag_events_match_closed_form() {
    let d = 3;
    let a = flag_adds(&traced_run(BarrierAlgo::Dissemination, 2));
    let b = flag_adds(&traced_run(BarrierAlgo::Dissemination, 2 + d));
    // n * ceil(log2 n) = 16 * 4 = 64 per episode.
    assert_eq!((b - a) / d, 64, "a={a}, b={b}");
}

/// TDLB's leader dissemination runs ⌈log₂ L⌉ rounds (L = nodes), so the
/// longest notification chain of that phase crosses exactly that many
/// inter-node edges: 2 on 4 nodes.
#[test]
fn tdlb_critical_path_crosses_log2_nodes_inter_edges() {
    let tracer = traced_run(BarrierAlgo::Tdlb, 4);
    let events = tracer.events();
    let last_epoch = events
        .iter()
        .filter(|e| e.kind == EventKind::TdlbDissem)
        .map(|e| e.c)
        .max()
        .expect("TDLB episodes traced");
    // `phase_window` (latest entry .. latest exit) isolates the
    // dissemination rounds from the straggler leader's gather tail.
    let window = phase_window(&events, EventKind::TdlbDissem, last_epoch)
        .expect("dissemination phase spans");
    let cp = extract(&events, window).expect("critical path");
    assert_eq!(
        cp.inter_hops(),
        2,
        "expected ceil(log2(4)) inter-node hops\n{}",
        cp.render()
    );
    let report = cp.render();
    assert!(report.contains("2 inter-node"), "{report}");
}

/// The Chrome exporter must emit well-formed JSON whose per-track
/// timestamps never go backwards (Perfetto renders such files directly).
#[test]
fn chrome_export_is_valid_json_with_monotone_tracks() {
    let tracer = traced_run(BarrierAlgo::Tdlb, 2);
    let events = tracer.events();
    assert!(!events.is_empty());

    let map = ImageMap::new(presets::mini(4, 4), N, &Placement::Block { per_node: 4 });
    let text = chrome_trace_json(&events, |i| map.node_of(ProcId(i)).index());
    let doc = chrome::json::parse(&text).expect("well-formed JSON");
    let arr = doc.as_arr().expect("top-level array");
    assert!(arr.len() > events.len() / 2, "export dropped most events");

    // Per-(pid, tid) track, `ts` must be nondecreasing in file order.
    let mut last_ts: std::collections::BTreeMap<(u64, u64), f64> = Default::default();
    let mut data_events = 0;
    for item in arr {
        let ph = item
            .get("ph")
            .and_then(chrome::json::Value::as_str)
            .expect("ph field");
        if ph == "M" {
            continue; // metadata records carry no timestamp
        }
        data_events += 1;
        let pid = item
            .get("pid")
            .and_then(chrome::json::Value::as_f64)
            .unwrap() as u64;
        let tid = item
            .get("tid")
            .and_then(chrome::json::Value::as_f64)
            .unwrap() as u64;
        let ts = item
            .get("ts")
            .and_then(chrome::json::Value::as_f64)
            .unwrap();
        let prev = last_ts.insert((pid, tid), ts).unwrap_or(0.0);
        assert!(
            ts >= prev,
            "track ({pid},{tid}) went backwards: {prev} -> {ts}"
        );
    }
    assert!(data_events > 0);

    // Images spread over 4 nodes: the export must name 4 distinct pids.
    let pids: std::collections::BTreeSet<u64> = last_ts.keys().map(|(p, _)| *p).collect();
    assert_eq!(pids.len(), 4, "one Chrome process per node");
}

/// With a tracer installed, the simulator's global-deadlock panic reports
/// each blocked image's recent operations and the flag it waited on.
#[test]
fn deadlock_report_includes_recent_trace_events() {
    let map = ImageMap::new(presets::mini(1, 2), 2, &Placement::Packed);
    let tracer = Tracer::for_images(2);
    let fabric = SimFabric::new(
        map,
        SimConfig {
            tracer: tracer.clone(),
            ..SimConfig::default()
        },
    );
    let mut handles = Vec::new();
    for i in 0..2 {
        let f = fabric.clone();
        handles.push(std::thread::spawn(move || {
            let me = ProcId(i);
            if i == 0 {
                f.flag_add(me, ProcId(1), FlagId(2), 1);
            }
            // Nobody ever posts FlagId(3): global deadlock.
            f.flag_wait_ge(me, FlagId(3), 1);
            f.image_done(me);
        }));
    }
    let mut messages = Vec::new();
    for h in handles {
        let err = h.join().expect_err("deadlock must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("panic payload is a message");
        messages.push(msg);
    }
    for msg in &messages {
        assert!(msg.contains("deadlock"), "{msg}");
        assert!(
            msg.contains("recent:") && msg.contains("flag_add"),
            "report should list recent trace events:\n{msg}"
        );
        assert!(
            msg.contains("waits flag3 >= 1"),
            "report should show the blocking wait:\n{msg}"
        );
    }
}
