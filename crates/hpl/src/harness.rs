//! Verification and reporting for the HPL port: gather the distributed
//! factors, rebuild `L·U`, and compare against the pivoted original matrix
//! (which is regenerated from the seed — no image ever stores it).

use crate::lu::{HplConfig, HplOutcome};
use crate::matrix::{hpl_matrix, Matrix};
use caf_runtime::ImageCtx;

/// Collectively gather the factored matrix and, **on image 1 only**,
/// compute the scaled residual
/// `‖L·U − P·A‖_max / (‖A‖_max · N)`.
///
/// Verification-scale only (image 1 materializes the full matrix); the
/// benchmark harnesses skip it at large N.
pub fn residual_check(img: &mut ImageCtx, cfg: &HplConfig, out: &HplOutcome) -> Option<f64> {
    let grid = out.grid;
    let max_lr = grid.local_rows(0).max(1);
    let max_lc = grid.local_cols(0).max(1);
    let gather = img.coarray::<f64>(max_lr * max_lc);

    // Publish my local factor block.
    let lr = grid.local_rows(out.prow);
    let lc = grid.local_cols(out.pcol);
    let mut flat = vec![0.0f64; max_lr * max_lc];
    for lj in 0..lc {
        for li in 0..lr {
            flat[li + lj * max_lr] = out.local.get(li, lj);
        }
    }
    gather.put(img.this_image(), 0, &flat);
    img.sync_all();

    let result = if img.this_image() == 1 {
        Some(assemble_and_check(img, cfg, out, &gather, max_lr))
    } else {
        None
    };
    img.sync_all();
    result
}

fn assemble_and_check(
    _img: &ImageCtx,
    cfg: &HplConfig,
    out: &HplOutcome,
    gather: &caf_runtime::Coarray<f64>,
    max_lr: usize,
) -> f64 {
    let grid = out.grid;
    let n = cfg.n;
    let q = grid.q;
    // Reassemble the factored matrix F (L below diag, U on/above).
    let mut f = Matrix::zeros(n, n);
    let mut buf = vec![0.0f64; gather.len()];
    for prow in 0..grid.p {
        for pcol in 0..grid.q {
            let image1 = prow * q + pcol + 1;
            gather.get(image1, 0, &mut buf);
            for lj in 0..grid.local_cols(pcol) {
                let gj = grid.global_col(pcol, lj);
                for li in 0..grid.local_rows(prow) {
                    let gi = grid.global_row(prow, li);
                    f.set(gi, gj, buf[li + lj * max_lr]);
                }
            }
        }
    }
    residual_from_factors(&f, &out.pivots, cfg.seed, n)
}

/// `‖L·U − P·A‖_max / (‖A‖_max · N)` given the packed factors `f`, the
/// pivot vector, and the generator parameters.
pub fn residual_from_factors(f: &Matrix, pivots: &[usize], seed: u64, n: usize) -> f64 {
    // P·A: regenerate A and apply the recorded interchanges in order.
    let mut pa = hpl_matrix(seed, n);
    let norm_a = pa.norm_max();
    for (s, &piv) in pivots.iter().enumerate() {
        pa.swap_rows(s, piv, 0, n);
    }
    // L·U from the packed factors.
    let mut worst: f64 = 0.0;
    for j in 0..n {
        for i in 0..n {
            let mut s = 0.0;
            let kmax = i.min(j + 1); // L(i,k) nonzero for k<i (unit diag at k=i)
            for k in 0..kmax {
                s += f.get(i, k) * f.get(k, j);
            }
            if i <= j {
                s += f.get(i, j); // unit diagonal of L times U(i,j)
            }
            worst = worst.max((s - pa.get(i, j)).abs());
        }
    }
    worst / (norm_a * n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas;

    /// Serial reference LU with partial pivoting, packed like LAPACK.
    fn serial_lu(seed: u64, n: usize) -> (Matrix, Vec<usize>) {
        let mut a = hpl_matrix(seed, n);
        let mut pivots = vec![0usize; n];
        #[allow(clippy::needless_range_loop)]
        for s in 0..n {
            // Pivot search in column s, rows s..n.
            let col: Vec<f64> = (s..n).map(|i| a.get(i, s)).collect();
            let piv = s + blas::idamax(&col).expect("nonempty");
            pivots[s] = piv;
            a.swap_rows(s, piv, 0, n);
            let d = a.get(s, s);
            assert!(d != 0.0, "singular test matrix");
            for i in s + 1..n {
                let l = a.get(i, s) / d;
                a.set(i, s, l);
                for j in s + 1..n {
                    let v = a.get(i, j) - l * a.get(s, j);
                    a.set(i, j, v);
                }
            }
        }
        (a, pivots)
    }

    #[test]
    fn serial_lu_residual_is_tiny() {
        for n in [1usize, 2, 5, 16, 33] {
            let (f, pivots) = serial_lu(11, n);
            let r = residual_from_factors(&f, &pivots, 11, n);
            assert!(r < 1e-12, "n={n}: residual {r}");
        }
    }

    #[test]
    fn residual_detects_corruption() {
        let n = 16;
        let (mut f, pivots) = serial_lu(11, n);
        f.set(3, 7, f.get(3, 7) + 0.5);
        let r = residual_from_factors(&f, &pivots, 11, n);
        assert!(r > 1e-4, "corruption must show: {r}");
    }
}
