//! Strongly-typed identifiers for processes and hardware locations.
//!
//! All identifiers are 0-based dense indices. Wrapping them in newtypes keeps
//! the `image → node → socket → core` bookkeeping in the runtime honest: the
//! compiler rejects, e.g., indexing a per-node table with a process rank.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $tag:literal) => {
        $(#[$meta])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
        )]
        pub struct $name(pub usize);

        impl $name {
            /// The dense 0-based index this identifier wraps.
            #[inline]
            pub fn index(self) -> usize {
                self.0
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(v: usize) -> Self {
                Self(v)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(v: $name) -> usize {
                v.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

id_type!(
    /// A 0-based SPMD process rank (the runtime maps Fortran's 1-based image
    /// numbers onto these).
    ProcId,
    "P"
);

id_type!(
    /// A compute node of the cluster (one shared-memory domain, one NIC).
    NodeId,
    "N"
);

id_type!(
    /// A processor socket within a node (one NUMA locality domain in the
    /// paper's future-work multi-level hierarchy).
    SocketId,
    "S"
);

id_type!(
    /// A core within a node (node-local index, not global).
    CoreId,
    "C"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_usize() {
        let p = ProcId::from(17usize);
        assert_eq!(p.index(), 17);
        assert_eq!(usize::from(p), 17);
        let n: NodeId = 3.into();
        assert_eq!(n, NodeId(3));
    }

    #[test]
    fn ordering_follows_index() {
        assert!(ProcId(1) < ProcId(2));
        assert!(NodeId(0) < NodeId(10));
    }

    #[test]
    fn debug_tags_distinguish_kinds() {
        assert_eq!(format!("{:?}", ProcId(4)), "P4");
        assert_eq!(format!("{:?}", NodeId(4)), "N4");
        assert_eq!(format!("{:?}", SocketId(1)), "S1");
        assert_eq!(format!("{:?}", CoreId(7)), "C7");
    }

    #[test]
    fn display_is_bare_number() {
        assert_eq!(ProcId(12).to_string(), "12");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(ProcId::default(), ProcId(0));
        assert_eq!(CoreId::default(), CoreId(0));
    }
}
