//! EXP-F1 — **Figure 1**: HPL performance (GFLOP/s) across the paper's
//! five configurations of images(nodes) — 4(4), 16(16), 16(2), 64(8),
//! 256(32) — for the five software stacks:
//!
//! * UHCAF 2-level (hierarchy-aware collectives),
//! * UHCAF 1-level (flat collectives),
//! * CAF 2.0 with the OpenUH backend,
//! * CAF 2.0 with the GFortran backend,
//! * Open MPI without tuning.
//!
//! Paper claims: the 2-level approach gives **up to 32%** over 1-level;
//! ~95 GFLOP/s at 256 images vs 29.48 (CAF2.0/GFortran) and 80
//! (CAF2.0/OpenUH). Absolute numbers depend on the modeled DGEMM rate; the
//! orderings and ratios are the reproduction target.

use caf_bench::{hpl_comparators, print_cost_preamble, scaled};
use caf_fabric::{SimConfig, SimFabric};
use caf_hpl::{factorize, HplConfig};
use caf_microbench::Table;
use caf_runtime::run_on_fabric;
use caf_topology::{presets, ImageMap, Placement};

/// (images, nodes) → problem size N (scaled so per-image work stays
/// meaningful while a 1-core host can simulate 256 images).
fn problem_size(images: usize) -> usize {
    match images {
        0..=4 => scaled(1024, 256),
        5..=16 => scaled(1536, 256),
        17..=64 => scaled(2048, 512),
        _ => scaled(2560, 512),
    }
}

fn main() {
    print_cost_preamble("EXP-F1");
    let configs: &[(usize, usize)] = if caf_bench::quick_mode() {
        &[(4, 4), (16, 2)]
    } else {
        &[(4, 4), (16, 16), (16, 2), (64, 8), (256, 32)]
    };
    let comps = hpl_comparators();

    let mut headers: Vec<&str> = vec!["images(nodes)", "N"];
    headers.extend(comps.iter().map(|c| c.name));
    headers.push("2lvl-gain");
    let mut table = Table::new("EXP-F1 (Figure 1): HPL GFLOP/s (modeled)", &headers);

    let mut best_gain: f64 = 0.0;
    for &(images, nodes) in configs {
        let per_node = images / nodes;
        let n = problem_size(images);
        let nb = 64.min(n / 4).max(8);
        let mut row = vec![format!("{images}({nodes})"), n.to_string()];
        let mut two = f64::NAN;
        let mut one = f64::NAN;
        for c in &comps {
            let map = ImageMap::new(presets::whale(), images, &Placement::Block { per_node });
            let fabric = SimFabric::new(
                map,
                SimConfig {
                    cost: presets::whale_cost(),
                    overheads: c.stack,
                    ..SimConfig::default()
                },
            );
            let hpl = HplConfig { n, nb, seed: 2015 };
            let gflops = run_on_fabric(fabric, c.collectives, move |img| {
                factorize(img, &hpl).gflops()
            })[0];
            row.push(format!("{gflops:.2}"));
            match c.name {
                "UHCAF-2level" => two = gflops,
                "UHCAF-1level" => one = gflops,
                _ => {}
            }
        }
        let gain = (two / one - 1.0) * 100.0;
        best_gain = best_gain.max(gain);
        row.push(format!("{gain:+.1}%"));
        table.row(&row);
    }
    table.note(format!(
        "measured max 2-level gain over 1-level: {best_gain:.1}% (paper: up to 32%)"
    ));
    table.note(
        "paper at 256 images: UHCAF 95, CAF2.0-OpenUH 80, CAF2.0-GFortran 29.48 GFLOP/s \
         — compare orderings/ratios, not absolutes",
    );
    table.print();
}
