//! Workspace-level integration tests spanning all crates: the same SPMD
//! programs must behave identically on the simulator and the real-threads
//! fabric, the paper's qualitative orderings must hold end-to-end, and the
//! facade crate must expose everything a downstream user needs.

use caf::microbench::{allreduce_latency, barrier_latency, broadcast_latency, MicroConfig};
use caf::runtime::{run, BarrierAlgo, BcastAlgo, CollectiveConfig, ReduceAlgo, RunConfig};
use caf::topology::{presets, Placement};
use std::sync::Arc;

fn both_fabrics(machine: caf::topology::MachineModel, images: usize) -> Vec<RunConfig> {
    vec![
        RunConfig::sim_packed(machine.clone(), images),
        RunConfig::threads_packed(machine, images),
    ]
}

#[test]
fn same_program_same_answers_on_both_fabrics() {
    for cfg in both_fabrics(presets::mini(2, 4), 8) {
        let out = run(cfg, |img| {
            let me = img.this_image() as u64;
            let co = img.coarray::<u64>(1);
            co.put(me as usize % img.num_images() + 1, 0, &[me * 7]);
            img.sync_all();
            let mut v = vec![co.get_elem(img.this_image(), 0)];
            img.co_sum(&mut v);
            v[0]
        });
        // Sum of all deposited values = 7 * (1+..+8), identical everywhere.
        assert_eq!(out, vec![7 * 36; 8]);
    }
}

#[test]
fn teams_with_coarrays_and_reductions_on_both_fabrics() {
    for cfg in both_fabrics(presets::mini(2, 4), 8) {
        run(cfg, |img| {
            let color = ((img.this_image() - 1) % 2) as i64;
            let team = img.form_team(color);
            let (_t, _) = img.change_team(team, |img| {
                let co = img.coarray::<f64>(2);
                co.write_local(&[img.this_image() as f64, color as f64]);
                img.sync_all();
                let mut acc = vec![0.0f64];
                for j in 1..=img.num_images() {
                    acc[0] += co.get_elem(j, 0);
                }
                img.co_max(&mut acc);
                assert_eq!(acc[0], 1.0 + 2.0 + 3.0 + 4.0);
            });
        });
    }
}

/// Fixed seed matrix for the chaos-schedule ports below: small, but
/// spanning several jitter/reorder regimes of `ChaosConfig::from_seed`.
const CHAOS_SEEDS: [u64; 6] = [1, 2, 3, 101, 202, 303];

/// Run `prog` once under the default deterministic schedule (the oracle)
/// and once per chaos seed, asserting every adversarial schedule produces
/// the oracle's answers. `caf-check` sweeps hundreds of seeds over a full
/// conformance program; these ports keep a quick fixed matrix in tier-1.
fn chaos_schedules_match_oracle<R>(
    machine: caf::topology::MachineModel,
    images: usize,
    prog: Arc<dyn Fn(&mut caf::runtime::ImageCtx) -> R + Send + Sync>,
) where
    R: PartialEq + std::fmt::Debug + Send + 'static,
{
    let p = prog.clone();
    let oracle = run(RunConfig::sim_packed(machine.clone(), images), move |img| {
        p(img)
    });
    for seed in CHAOS_SEEDS {
        let p = prog.clone();
        let got = run(
            RunConfig::sim_chaos(machine.clone(), images, seed),
            move |img| p(img),
        );
        assert_eq!(got, oracle, "chaos seed {seed} diverged from the oracle");
    }
}

#[test]
fn same_program_same_answers_under_chaos_on_mini() {
    chaos_schedules_match_oracle(
        presets::mini(2, 4),
        8,
        Arc::new(|img: &mut caf::runtime::ImageCtx| {
            let me = img.this_image() as u64;
            let co = img.coarray::<u64>(1);
            co.put(me as usize % img.num_images() + 1, 0, &[me * 7]);
            img.sync_all();
            let mut v = vec![co.get_elem(img.this_image(), 0)];
            img.co_sum(&mut v);
            v[0]
        }),
    );
}

#[test]
fn same_program_same_answers_under_chaos_on_whale() {
    chaos_schedules_match_oracle(
        presets::whale(),
        16,
        Arc::new(|img: &mut caf::runtime::ImageCtx| {
            let me = img.this_image() as u64;
            let co = img.coarray::<u64>(1);
            co.put(me as usize % img.num_images() + 1, 0, &[me * 7]);
            img.sync_all();
            let mut v = vec![co.get_elem(img.this_image(), 0)];
            img.co_sum(&mut v);
            v[0]
        }),
    );
}

#[test]
fn teams_with_coarrays_agree_under_chaos_on_both_presets() {
    let prog = |img: &mut caf::runtime::ImageCtx| {
        let color = ((img.this_image() - 1) % 2) as i64;
        let team = img.form_team(color);
        let size = img.num_images() as u64 / 2;
        let (_t, _) = img.change_team(team, |img| {
            let co = img.coarray::<u64>(1);
            co.write_local(&[img.this_image() as u64]);
            img.sync_all();
            let mut acc = vec![0u64];
            for j in 1..=img.num_images() {
                acc[0] += co.get_elem(j, 0);
            }
            img.co_max(&mut acc);
            assert_eq!(acc[0], size * (size + 1) / 2);
        });
        let mut b = vec![img.this_image() as u64];
        img.co_broadcast(&mut b, 2);
        b[0]
    };
    chaos_schedules_match_oracle(presets::mini(2, 4), 8, Arc::new(prog));
    chaos_schedules_match_oracle(presets::whale(), 16, Arc::new(prog));
}

#[test]
fn paper_regime_orderings_hold_in_the_model() {
    // §IV-A in one test: linear wins on shared memory, dissemination wins
    // distributed, TDLB wins hierarchical. The shared-memory regime claim
    // is about *hardware* serialization (the node bus), so it is measured
    // with zero software overhead; a thick enough software stack can
    // invert it at small n by serializing the root's CPU instead.
    let lat =
        |machine: caf::topology::MachineModel, images, per_node, placement: Placement, algo| {
            let mut mc = MicroConfig::whale(images, per_node)
                .with_stack(caf::topology::SoftwareOverheads::NONE)
                .with_collectives(CollectiveConfig {
                    barrier: algo,
                    ..CollectiveConfig::default()
                });
            mc.machine = machine;
            mc.placement = placement;
            mc.iters = 5;
            barrier_latency(&mc).ns_per_op
        };
    // One single-socket node, 8 images: one fully serialized memory system.
    let smp = presets::smp(1, 8);
    assert!(
        lat(
            smp.clone(),
            8,
            8,
            Placement::Packed,
            BarrierAlgo::CentralCounter
        ) < lat(smp, 8, 8, Placement::Packed, BarrierAlgo::Dissemination)
    );
    // 16 nodes, 1 image each.
    let whale = presets::whale();
    assert!(
        lat(
            whale.clone(),
            16,
            1,
            Placement::Cyclic,
            BarrierAlgo::Dissemination
        ) < lat(
            whale.clone(),
            16,
            1,
            Placement::Cyclic,
            BarrierAlgo::CentralCounter
        )
    );
    // 8 nodes x 8 images.
    assert!(
        lat(whale.clone(), 64, 8, Placement::Packed, BarrierAlgo::Tdlb)
            < lat(whale, 64, 8, Placement::Packed, BarrierAlgo::Dissemination)
    );
}

#[test]
fn two_level_wins_extend_to_reduce_and_broadcast() {
    let mut mc = MicroConfig::whale(64, 8);
    mc.iters = 5;
    let two_r = allreduce_latency(
        &mc.clone().with_collectives(CollectiveConfig {
            reduce: ReduceAlgo::TwoLevel,
            ..CollectiveConfig::default()
        }),
        8,
    );
    let flat_r = allreduce_latency(
        &mc.clone().with_collectives(CollectiveConfig {
            reduce: ReduceAlgo::FlatRecursiveDoubling,
            ..CollectiveConfig::default()
        }),
        8,
    );
    assert!(two_r.ns_per_op < flat_r.ns_per_op);

    let two_b = broadcast_latency(
        &mc.clone().with_collectives(CollectiveConfig {
            bcast: BcastAlgo::TwoLevel,
            ..CollectiveConfig::default()
        }),
        16,
    );
    let flat_b = broadcast_latency(
        &mc.with_collectives(CollectiveConfig {
            bcast: BcastAlgo::FlatBinomial,
            ..CollectiveConfig::default()
        }),
        16,
    );
    assert!(two_b.ns_per_op < flat_b.ns_per_op);
}

#[test]
fn hierarchy_speedup_grows_with_images_per_node() {
    // The more images share a node, the more dissemination serializes and
    // the bigger TDLB's advantage — the paper's central scaling trend.
    let speedup = |images: usize, per_node: usize| {
        let lat = |algo| {
            let mut mc = MicroConfig::whale(images, per_node).with_collectives(CollectiveConfig {
                barrier: algo,
                ..CollectiveConfig::default()
            });
            mc.iters = 5;
            barrier_latency(&mc).ns_per_op
        };
        lat(BarrierAlgo::Dissemination) / lat(BarrierAlgo::Tdlb)
    };
    let s2 = speedup(8, 2);
    let s8 = speedup(32, 8);
    assert!(
        s8 > s2,
        "8/node speedup ({s8:.2}) must exceed 2/node ({s2:.2})"
    );
}

#[test]
fn hpl_small_solve_through_the_facade() {
    let hpl = caf::hpl::HplConfig {
        n: 32,
        nb: 4,
        seed: 5,
    };
    let cfg = RunConfig::sim_packed(presets::mini(2, 2), 4);
    let out = run(cfg, move |img| {
        let o = caf::hpl::factorize(img, &hpl);
        caf::hpl::residual_check(img, &hpl, &o)
    });
    let r = out[0].expect("image 1 verifies");
    assert!(r < 1e-10, "residual {r}");
}

#[test]
fn hpl_two_level_not_materially_slower_than_one_level() {
    // At test scale the teams are small and mostly intra-node, so the two
    // approaches are close; the test guards against the 2-level runtime
    // *regressing* (the Figure 1 gains are measured at paper scale by
    // exp_f1_hpl). Machine chosen so column teams genuinely span nodes.
    let hpl = caf::hpl::HplConfig {
        n: 96,
        nb: 8,
        seed: 9,
    };
    let time = |collectives| {
        let cfg = RunConfig::sim_packed(presets::mini(2, 8), 16).with_collectives(collectives);
        run(cfg, move |img| caf::hpl::factorize(img, &hpl).time_ns)[0]
    };
    let one = time(CollectiveConfig::one_level());
    let two = time(CollectiveConfig::two_level());
    assert!(
        (two as f64) <= (one as f64) * 1.05,
        "2-level ({two} ns) regressed past 1-level ({one} ns) by more than 5%"
    );
}

#[test]
fn fabric_stats_visible_through_facade() {
    let cfg = RunConfig::sim_packed(presets::mini(2, 2), 4);
    let fabric = cfg.build_fabric();
    caf::runtime::run_on_fabric(fabric.clone(), cfg.collectives, |img| {
        img.sync_all();
    });
    let snap = fabric.stats().snapshot();
    assert!(
        snap.total_flags() > 0,
        "a barrier must generate notifications"
    );
}

#[test]
fn deterministic_end_to_end_virtual_times() {
    let once = || {
        let cfg = RunConfig::sim_packed(presets::mini(4, 4), 16);
        run(cfg, |img| {
            let mut v = vec![img.this_image() as u64];
            img.co_sum(&mut v);
            img.sync_all();
            let mut b = vec![v[0]];
            img.co_broadcast(&mut b, 2);
            img.now_ns()
        })
    };
    assert_eq!(once(), once());
}

#[test]
fn critical_sections_are_mutually_exclusive() {
    use std::sync::atomic::{AtomicU64, Ordering};
    let inside = Arc::new(AtomicU64::new(0));
    let max_seen = Arc::new(AtomicU64::new(0));
    let (i2, m2) = (inside.clone(), max_seen.clone());
    // Threads fabric: genuine concurrency.
    let cfg = RunConfig::threads_packed(presets::mini(2, 2), 4);
    run(cfg, move |img| {
        for _ in 0..25 {
            img.critical(|_img| {
                let now = i2.fetch_add(1, Ordering::SeqCst) + 1;
                m2.fetch_max(now, Ordering::SeqCst);
                i2.fetch_sub(1, Ordering::SeqCst);
            });
        }
    });
    assert_eq!(
        max_seen.load(std::sync::atomic::Ordering::SeqCst),
        1,
        "two images were inside critical at once"
    );
}

#[test]
fn critical_sections_on_simulator() {
    let cfg = RunConfig::sim_packed(presets::mini(2, 2), 4);
    let out = run(cfg, |img| {
        let mut acc = 0u64;
        img.critical(|img| {
            acc = img.this_image() as u64;
        });
        img.sync_all();
        acc
    });
    assert_eq!(out, vec![1, 2, 3, 4]);
}

#[test]
fn co_allgather_concatenates_in_team_order() {
    for cfg in both_fabrics(presets::mini(2, 3), 6) {
        run(cfg, |img| {
            let me = img.this_image() as u64;
            let got = img.co_allgather(&[me, me * 10]);
            let expect: Vec<u64> = (1..=6u64).flat_map(|i| [i, i * 10]).collect();
            assert_eq!(got, expect);
        });
    }
}

#[test]
fn co_allgather_inside_subteam() {
    let cfg = RunConfig::sim_packed(presets::mini(2, 4), 8);
    run(cfg, |img| {
        let color = ((img.this_image() - 1) % 2) as i64;
        let team = img.form_team(color);
        let (_t, _) = img.change_team(team, |img| {
            let initial = img.image_index_in_initial(img.this_image()) as u64;
            let got = img.co_allgather(&[initial]);
            let expect: Vec<u64> = (1..=8u64)
                .filter(|i| ((i - 1) % 2) as i64 == color)
                .collect();
            assert_eq!(got, expect);
        });
    });
}

#[test]
fn sync_images_star_synchronizes_everyone() {
    use std::sync::atomic::{AtomicU64, Ordering};
    let entered = Arc::new(AtomicU64::new(0));
    let e2 = entered.clone();
    let cfg = RunConfig::sim_packed(presets::mini(2, 2), 4);
    run(cfg, move |img| {
        e2.fetch_add(1, Ordering::SeqCst);
        img.sync_images_all();
        assert!(e2.load(Ordering::SeqCst) >= 4);
    });
}

#[test]
#[should_panic(expected = "deadlock")]
fn mismatched_collectives_are_detected_as_deadlock() {
    // Image 1 calls a barrier nobody else joins: on the simulator this is
    // a global deadlock and must fail loudly, not hang.
    let cfg = RunConfig::sim_packed(presets::mini(1, 2), 2);
    run(cfg, |img| {
        if img.this_image() == 1 {
            img.sync_all();
        }
        // image 2 exits; the launcher's finalize blocks on the control
        // barrier and the simulator reports the deadlock everywhere.
    });
}

#[test]
#[should_panic(expected = "deadlock")]
fn sync_images_without_partner_deadlocks_loudly() {
    let cfg = RunConfig::sim_packed(presets::mini(1, 2), 2);
    run(cfg, |img| {
        if img.this_image() == 1 {
            img.sync_images(&[2]); // image 2 never reciprocates
        }
    });
}

#[test]
fn panicking_image_poisons_waiting_peers_on_threads() {
    // On the real-threads fabric a dead image must not hang its peers.
    let cfg = RunConfig::threads_packed(presets::mini(1, 2), 2);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run(cfg, |img| {
            if img.this_image() == 2 {
                panic!("injected failure");
            }
            img.sync_all(); // would hang forever without poisoning
        });
    }));
    assert!(result.is_err(), "the panic must propagate to the launcher");
}

#[test]
fn tuple_coarrays_roundtrip() {
    let cfg = RunConfig::sim_packed(presets::mini(1, 2), 2);
    run(cfg, |img| {
        let me = img.this_image();
        let co = img.coarray::<(f64, u64)>(2);
        co.write_local(&[(me as f64 * 0.5, me as u64), (-1.0, 0)]);
        img.sync_all();
        let other = 3 - me;
        let got = co.get_elem(other, 0);
        assert_eq!(got, (other as f64 * 0.5, other as u64));
    });
}

#[test]
fn negative_and_sparse_team_numbers() {
    let cfg = RunConfig::sim_packed(presets::mini(2, 2), 4);
    run(cfg, |img| {
        // Team numbers need not be dense or positive.
        let color = if img.this_image() <= 2 { -7 } else { 1000 };
        let team = img.form_team(color);
        let (_t, _) = img.change_team(team, |img| {
            assert_eq!(img.num_images(), 2);
            assert_eq!(img.team_number(), color);
        });
    });
}

#[test]
fn singleton_subteams_work() {
    let cfg = RunConfig::sim_packed(presets::mini(1, 4), 4);
    run(cfg, |img| {
        let me = img.this_image();
        let team = img.form_team(me as i64); // every image its own team
        let (_t, _) = img.change_team(team, |img| {
            assert_eq!(img.num_images(), 1);
            assert_eq!(img.this_image(), 1);
            let mut v = vec![me as u64];
            img.co_sum(&mut v);
            assert_eq!(v[0], me as u64);
            img.sync_all();
        });
    });
}

#[test]
fn multilevel_barrier_on_numa_machine_is_correct_and_cheaper() {
    use caf::microbench::{barrier_latency, MicroConfig};
    // Correctness on a machine with real socket structure, and the §VII
    // payoff: with cheaper same-socket transfers the 3-level barrier beats
    // the 2-level one.
    let lat = |algo| {
        let mut mc = MicroConfig::whale(64, 32).with_collectives(CollectiveConfig {
            barrier: algo,
            ..CollectiveConfig::default()
        });
        mc.machine = presets::numa(2);
        mc.iters = 5;
        // NOTE: MicroConfig uses whale_cost; the A2 harness uses numa_cost
        // for the full effect — here the separate socket buses alone
        // already help.
        barrier_latency(&mc).ns_per_op
    };
    let two = lat(BarrierAlgo::Tdlb);
    let three = lat(BarrierAlgo::TdlbMultilevel);
    assert!(three > 0.0 && two > 0.0);
    assert!(
        three < two * 1.2,
        "3-level ({three}) should be competitive with 2-level ({two})"
    );
}

#[test]
fn alltoall_through_the_runtime_on_both_fabrics() {
    for cfg in both_fabrics(presets::mini(2, 3), 6) {
        run(cfg, |img| {
            let n = img.num_images();
            let me = img.this_image() as u64;
            // Slice for image j+1 carries (me, j).
            let send: Vec<u64> = (0..n).map(|j| me * 100 + j as u64).collect();
            let recv = img.co_alltoall(&send, 1);
            for (r, v) in recv.iter().enumerate() {
                assert_eq!(*v, (r as u64 + 1) * 100 + (me - 1));
            }
        });
    }
}

#[test]
fn alltoall_inside_subteams() {
    let cfg = RunConfig::sim_packed(presets::mini(2, 4), 8);
    run(cfg, |img| {
        let color = ((img.this_image() - 1) % 2) as i64;
        let team = img.form_team(color);
        let (_t, _) = img.change_team(team, |img| {
            let n = img.num_images();
            let me = img.this_image() as u64;
            let send: Vec<u64> = (0..n).map(|j| me * 10 + j as u64).collect();
            let recv = img.co_alltoall(&send, 1);
            for (r, v) in recv.iter().enumerate() {
                assert_eq!(*v, (r as u64 + 1) * 10 + (me - 1));
            }
        });
    });
}
