//! A conservative, deterministic discrete-event simulation fabric.
//!
//! # How it works
//!
//! Images run as ordinary OS threads executing unmodified algorithm code;
//! the simulator never sees their control flow, only their fabric calls.
//! Each image carries a **virtual clock**. Every fabric call is a
//! *scheduling point*: the calling image may commit its effect only when it
//! holds the globally minimal `(virtual time, rank)` among images that could
//! still commit (alive and not blocked), and no undelivered notification is
//! due at or before its clock. This is the classic conservative
//! discrete-event discipline; it makes runs **deterministic** (commit order
//! is a pure function of the program and the cost model, independent of OS
//! scheduling) and **causally correct** (shared resources are reserved in
//! virtual-time order).
//!
//! # Cost model
//!
//! Costs come from [`caf_topology::CostParams`] (see DESIGN.md
//! §6 for calibration):
//!
//! * **intra-node put / notification**: the sender's CPU pays the software
//!   overhead, then the *node memory bus* — a shared resource — is occupied
//!   for `gap_intra + bytes·G_intra`. Concurrent same-node messages
//!   serialize on the bus: this is precisely the effect the paper's §IV-A
//!   uses to argue dissemination is wrong inside a node (n·log n serialized
//!   notifications vs. 2(n−1) for the linear barrier).
//! * **inter-node put / notification**: the sender posts a descriptor
//!   (CPU overhead only), the sender's *NIC* is occupied for
//!   `gap_nic + bytes·G_inter`, the wire adds `l_inter`, and the receiver's
//!   NIC is occupied for `gap_nic` on landing. NICs of different nodes run
//!   in parallel — which is why dissemination's log n rounds win across
//!   nodes.
//! * **gets / remote atomics**: round trips (`2·l`).
//!
//! Point-to-point ordering (an RDMA connection's guarantee) falls out of the
//! resource reservations: a notification posted after a payload put to the
//! same target reserves the same resources later, hence lands later.
//!
//! Payload bytes are copied eagerly at commit time. A program that reads
//! remote data *without* synchronizing may therefore observe values "from
//! the virtual future" — such programs are erroneous under CAF semantics
//! anyway; properly synchronized reads always see exactly the data whose
//! flags they waited on, because flag arrivals are ordered after their
//! payloads.
//!
//! # Deadlock
//!
//! If every image is blocked on a flag wait and no notification is in
//! flight, the simulator marks itself poisoned and panics on **all** image
//! threads with a diagnostic — turning algorithmic synchronization bugs into
//! immediate test failures rather than hangs.

use crate::am::AmOp;
use crate::chaos::ChaosConfig;
use crate::evq::{EvKey, ShardedEvq};
use crate::sched::SchedIndex;
use crate::seg::{FlagId, SegmentId};
use crate::stats::FabricStats;
use crate::{Fabric, PutToken, RecoveryError};
use caf_topology::{CostParams, ImageMap, ProcId, SoftwareOverheads};
use caf_trace::{Event, EventKind, Tracer};
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Configuration for a [`SimFabric`].
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Hardware cost parameters (defaults to the paper's cluster — see
    /// [`caf_topology::presets::whale_cost`]).
    pub cost: CostParams,
    /// Software-stack overheads layered on the hardware model.
    pub overheads: SoftwareOverheads,
    /// Trace sink. The default [`Tracer::off`] records nothing; install a
    /// [`Tracer::for_images`] tracer to capture every fabric operation with
    /// virtual-time stamps (requires the `trace` feature to actually keep
    /// records — without it the no-op tracer compiles away).
    pub tracer: Tracer,
    /// Seeded chaos scheduling and fault injection (see [`ChaosConfig`]).
    /// `None` (the default) is the plain conservative scheduler; `Some`
    /// perturbs the cost model deterministically per seed so different
    /// seeds explore different — but each fully reproducible — commit
    /// orders.
    pub chaos: Option<ChaosConfig>,
    /// Test-only escape hatch: keep events in the pre-scale single global
    /// `BinaryHeap` instead of the sharded per-node queue. The scheduler's
    /// argmin scans also revert to the O(n) linear form. Schedules are
    /// bit-for-bit identical either way — `caf-check` diffs the two and
    /// `exp_s1_simscale` uses this path as its pre-PR throughput
    /// reference. The [`Default`] reads `CAF_SIM_LEGACY_QUEUE=1`.
    pub legacy_queue: bool,
    /// Bootstrap-segment slots to pre-allocate per image. `None` (the
    /// default) keeps the historical one-slot-per-peer layout — O(n²)
    /// bytes fleet-wide, fine up to a few thousand images. Million-image
    /// runs whose programs touch only the first few slots (the simscale
    /// bench kernels stay within 4) pass `Some(slots)` to keep the
    /// footprint linear.
    pub bootstrap_slots: Option<usize>,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            cost: CostParams::default(),
            overheads: SoftwareOverheads::NONE,
            tracer: Tracer::off(),
            chaos: None,
            legacy_queue: std::env::var("CAF_SIM_LEGACY_QUEUE").is_ok_and(|v| v == "1"),
            bootstrap_slots: None,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ImgState {
    /// May commit effects (running or between fabric calls).
    Alive,
    /// Parked in `flag_wait_ge` until its flag reaches the target value.
    Blocked { flag: usize, at_least: u64 },
    /// Retired via `image_done`.
    Done,
}

/// A pending flag notification: who posted it, when, and where it lands.
/// `src`/`posted`/`intra` exist for the trace's `FlagDeliver` records (the
/// critical-path extractor needs the sender and post time of the delivery
/// that unblocked each wait); they do not affect simulation semantics.
#[derive(Debug, PartialEq, Eq)]
pub(crate) struct Notify {
    img: usize,
    flag: usize,
    delta: u64,
    src: u32,
    posted: u64,
    intra: bool,
}

/// What happens when an event comes due.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum EvKind {
    /// `delta` lands on `flags[img][flag]`.
    FlagArrive(Notify),
    /// A message reaches `node`'s NIC off the wire: occupy the NIC for
    /// `gap_nic`, then (for notifications) deliver the flag update.
    /// Serviced as an *event* so NIC slots are granted in virtual-time
    /// order — a reservation made directly at send-commit time would push
    /// later (but virtually earlier) traffic behind a far-future slot.
    /// `nb` marks the landing of a nonblocking put, whose completion the
    /// stats track separately from its injection.
    Landing {
        node: usize,
        notify: Option<Notify>,
        nb: bool,
    },
    /// An active-message batch's flag updates reach their target image:
    /// the whole batch lands as **one** scheduled event at the modeled
    /// flush arrival time, its notifications applied in program order —
    /// the simulator's side of the AM tier's "one delivery per batch"
    /// contract (payload bytes were applied eagerly at commit time, like
    /// any put).
    AmArrive(Vec<Notify>),
}

/// A scheduled simulator event. `tie` breaks exact-time ties: 0 (FIFO by
/// `seq`) under the default scheduler, a hashed priority under chaos
/// reordering — time stays the primary key either way.
#[derive(Debug, PartialEq, Eq)]
struct Ev {
    time: u64,
    tie: u64,
    seq: u64,
    kind: EvKind,
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.tie, self.seq).cmp(&(other.time, other.tie, other.seq))
    }
}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The pending-event container, in one of two provably order-identical
/// representations: the scale path shards events by destination node
/// ([`ShardedEvq`]); the legacy path keeps the pre-scale single global
/// heap behind [`SimConfig::legacy_queue`] so conformance sweeps and the
/// simscale bench can diff the rebuilt core against the original.
enum EventStore {
    /// Pre-scale reference: one global heap over all in-flight events.
    Legacy(BinaryHeap<Reverse<Ev>>),
    /// Scale path: per-node lazy queues under a frontier heap.
    Sharded(ShardedEvq<EvKind>),
}

impl EventStore {
    fn len(&self) -> usize {
        match self {
            EventStore::Legacy(h) => h.len(),
            EventStore::Sharded(q) => q.len(),
        }
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Due time of the earliest event. `&mut` because the sharded frontier
    /// discards stale entries on peek.
    fn peek_time(&mut self) -> Option<u64> {
        match self {
            EventStore::Legacy(h) => h.peek().map(|Reverse(ev)| ev.time),
            EventStore::Sharded(q) => q.peek_key().map(|k| k.time),
        }
    }

    /// Remove the globally minimal event by `(time, tie, seq)`.
    fn pop(&mut self) -> Option<(u64, EvKind)> {
        match self {
            EventStore::Legacy(h) => h.pop().map(|Reverse(ev)| (ev.time, ev.kind)),
            EventStore::Sharded(q) => q.pop().map(|(k, kind)| (k.time, kind)),
        }
    }

    fn clear(&mut self) {
        match self {
            EventStore::Legacy(h) => h.clear(),
            EventStore::Sharded(q) => q.clear(),
        }
    }
}

pub(crate) struct SimCore {
    /// Effective per-message NIC occupancy (hardware gap + the stack's
    /// software extra); the Landing service needs it inside apply.
    gap_nic_ns: u64,
    pub(crate) time: Vec<u64>,
    state: Vec<ImgState>,
    /// `segs[img][segment]` → backing bytes.
    segs: Vec<Vec<Vec<u8>>>,
    /// `flags[img][flag]` → accumulating counter value.
    flags: Vec<Vec<u64>>,
    /// Latest arrival time of any one-sided op initiated by each image.
    last_arrival: Vec<u64>,
    /// Virtual time at which each node's memory bus is next free.
    node_bus_free: Vec<u64>,
    /// Virtual time at which each socket's local bus is next free
    /// (indexed `node * sockets_per_node + socket`).
    socket_bus_free: Vec<u64>,
    /// Virtual time at which each node's NIC is next free.
    nic_free: Vec<u64>,
    events: EventStore,
    /// Indexed min-heap over Alive images keyed `(time, prio, rank)` —
    /// answers argmin / may-commit / min-alive-clock queries in O(1) and
    /// is updated incrementally on every clock advance, block, wake,
    /// death, and chaos reshuffle (see [`SchedIndex`]). Maintained in
    /// legacy mode too (the scans there ignore it, but the event drain's
    /// memoized bound reads it).
    sched: SchedIndex,
    /// Destination node per image — the event queue's shard router.
    node_of: Vec<u32>,
    /// Retired images; with `sched.len()` this classifies the whole fleet
    /// without scanning `state` (deadlock = no events, none alive, not
    /// everyone done).
    done_count: usize,
    /// Use O(n) scans for scheduling decisions (pre-scale reference
    /// behavior; see [`SimConfig::legacy_queue`]).
    legacy_scans: bool,
    event_seq: u64,
    /// Set when a global deadlock was detected; all threads panic with it.
    pub(crate) poisoned: Option<String>,
    /// Shared counters (clone of the fabric's): the event drain records
    /// nonblocking-put completions as their `Landing`s come due.
    stats: Arc<FabricStats>,
    /// Shared trace sink (clone of [`SimConfig::tracer`]): the core writes
    /// `FlagDeliver` records to the system ring as the event queue drains,
    /// and the deadlock report reads back each image's recent events.
    tracer: Tracer,
    /// Chaos knobs (clone of [`SimConfig::chaos`]); `None` = plain
    /// scheduler, zero overhead on every path below.
    chaos: Option<ChaosConfig>,
    /// Per-image fabric-call counter — the deterministic "op index" that
    /// keys cpu jitter (wall-clock mutex order is *not* deterministic;
    /// this is).
    pub(crate) chaos_ops: Vec<u64>,
    /// Current PCT-style tie-break priority per image (all zero without
    /// chaos reordering, collapsing the schedule key to `(time, rank)`).
    prio: Vec<u64>,
    /// Committed fabric calls — drives periodic priority reshuffles.
    commits: u64,
    /// Test-only commit trace `(image, op index, clock at grant)` used by
    /// the stepped/threaded parity tests to diff schedules.
    #[cfg(test)]
    pub(crate) commit_log: Vec<(usize, u64, u64)>,
}

/// Bump an accumulating sync-flag counter, panicking on wraparound: the
/// counters are cumulative by design (never reset), so silent `u64`
/// overflow would corrupt every threshold comparison downstream.
fn flag_bump(cell: &mut u64, img: usize, flag: usize, delta: u64) {
    *cell = cell.checked_add(delta).unwrap_or_else(|| {
        panic!(
            "sync flag counter overflow: image {img} flag {flag} \
             (cumulative counter wrapped adding {delta})"
        )
    });
}

impl SimCore {
    /// Advance (or rewind — wakes clamp with `max` themselves) image `i`'s
    /// virtual clock, keeping the scheduling index in sync. Every clock
    /// write in the fabric funnels through here; Blocked/Done images are
    /// not in the index and need no update.
    pub(crate) fn set_time(&mut self, i: usize, t: u64) {
        self.time[i] = t;
        if self.sched.contains(i) {
            self.sched.update(i, (t, self.prio[i]));
        }
    }

    /// Park image `i` on a flag wait: drop it from the alive index.
    fn set_blocked(&mut self, i: usize, flag: usize, at_least: u64) {
        self.state[i] = ImgState::Blocked { flag, at_least };
        self.sched.remove(i);
    }

    /// Wake image `i` at delivery time `at` (clocks never move backwards).
    fn set_wake(&mut self, i: usize, at: u64) {
        self.state[i] = ImgState::Alive;
        self.time[i] = self.time[i].max(at);
        self.sched.insert(i, (self.time[i], self.prio[i]));
        self.stats.record_sim_wakeup();
    }

    /// Retire image `i` (done or killed).
    pub(crate) fn set_done(&mut self, i: usize) {
        if !matches!(self.state[i], ImgState::Done) {
            self.done_count += 1;
        }
        self.state[i] = ImgState::Done;
        self.sched.remove(i);
    }

    /// Re-key every alive image after a chaos priority reshuffle.
    fn resort_priorities(&mut self) {
        let time = &self.time;
        let prio = &self.prio;
        self.sched.refresh(|i| (time[i], prio[i]));
    }

    /// Apply all notifications that are due: those at or before the earliest
    /// clock of any image that could still commit. With no such image, the
    /// earliest notification is (vacuously) due. Images unblocked by an
    /// applied notification are appended to `woken`.
    ///
    /// The due-bound (min alive clock) is **memoized across the drain**:
    /// it is read once from the index and re-read only when an applied
    /// event actually woke an image — the only transition that can change
    /// it mid-drain (pops never touch alive clocks). The pre-scale core
    /// recomputed it with a full O(n) state scan on every loop iteration;
    /// a same-timestamp burst of `FlagArrive`s now applies in one pass at
    /// O(1) scheduling overhead per event.
    pub(crate) fn apply_due_events(&mut self, woken: &mut Vec<usize>) {
        let mut min_alive = self.sched.peek_time();
        loop {
            let due = match self.events.peek_time() {
                Some(t) => min_alive.is_none_or(|m| t <= m),
                None => false,
            };
            if !due {
                return;
            }
            let (ev_time, kind) = self.events.pop().expect("peeked");
            self.stats.record_sim_event_pop();
            match kind {
                EvKind::FlagArrive(n) => {
                    flag_bump(&mut self.flags[n.img][n.flag], n.img, n.flag, n.delta);
                    self.tracer.record_system(
                        Event::instant(EventKind::FlagDeliver, ev_time)
                            .a(n.src as u64)
                            .b(n.flag as u64)
                            .c(n.posted)
                            .d(n.img as u64)
                            .intra(n.intra),
                    );
                    if let ImgState::Blocked {
                        flag: wflag,
                        at_least,
                    } = self.state[n.img]
                    {
                        if wflag == n.flag && self.flags[n.img][n.flag] >= at_least {
                            self.set_wake(n.img, ev_time);
                            woken.push(n.img);
                            // A wake is the one transition that can lower
                            // the due-bound: invalidate the memo.
                            min_alive = self.sched.peek_time();
                        }
                    }
                }
                EvKind::Landing { node, notify, nb } => {
                    let start = ev_time.max(self.nic_free[node]);
                    self.nic_free[node] = start + self.gap_nic_ns;
                    if nb {
                        self.stats.record_put_nb_complete();
                    }
                    if let Some(n) = notify {
                        self.push_event(start + self.gap_nic_ns, EvKind::FlagArrive(n));
                    }
                }
                EvKind::AmArrive(list) => {
                    // The whole batch lands now; its notifications apply
                    // in program order so intra-batch flag ordering is
                    // exactly what an unbatched replay would produce.
                    for n in list {
                        flag_bump(&mut self.flags[n.img][n.flag], n.img, n.flag, n.delta);
                        self.tracer.record_system(
                            Event::instant(EventKind::FlagDeliver, ev_time)
                                .a(n.src as u64)
                                .b(n.flag as u64)
                                .c(n.posted)
                                .d(n.img as u64)
                                .intra(n.intra),
                        );
                        if let ImgState::Blocked {
                            flag: wflag,
                            at_least,
                        } = self.state[n.img]
                        {
                            if wflag == n.flag && self.flags[n.img][n.flag] >= at_least {
                                self.set_wake(n.img, ev_time);
                                woken.push(n.img);
                                min_alive = self.sched.peek_time();
                            }
                        }
                    }
                }
            }
        }
    }

    /// Schedule key of image `i`: `(time, prio, rank)`. `prio` is all
    /// zeros without chaos reordering, so the key degenerates to the
    /// classic `(time, rank)`; with chaos it breaks exact-time ties by
    /// hashed priority (virtual time always dominates).
    fn sched_key(&self, i: usize) -> (u64, u64, usize) {
        (self.time[i], self.prio[i], i)
    }

    /// The image that should run next: argmin over Alive of the key —
    /// an O(1) index peek on the scale path, the original O(n) scan in
    /// legacy mode (both provably pick the same image; the index breaks
    /// exact key ties by lowest rank exactly as `min_by_key` does).
    pub(crate) fn next_eligible(&self) -> Option<usize> {
        if !self.legacy_scans {
            return self.sched.peek();
        }
        self.state
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, ImgState::Alive))
            .min_by_key(|(i, _)| self.sched_key(*i))
            .map(|(i, _)| i)
    }

    /// May image `me` (which is Alive, inside a fabric call) commit now?
    /// `&mut` because peeking the sharded event frontier settles it.
    fn may_commit(&mut self, me: usize) -> bool {
        debug_assert!(matches!(self.state[me], ImgState::Alive));
        if self.legacy_scans {
            let key = self.sched_key(me);
            for (j, s) in self.state.iter().enumerate() {
                if j != me && matches!(s, ImgState::Alive) && self.sched_key(j) < key {
                    return false;
                }
            }
        } else if self.sched.peek() != Some(me) {
            return false;
        }
        // Any notification due at or before my clock must land first.
        match self.events.peek_time() {
            Some(t) => t > self.time[me],
            None => true,
        }
    }

    pub(crate) fn push_event(&mut self, time: u64, kind: EvKind) {
        let seq = self.event_seq;
        self.event_seq += 1;
        let (time, tie) = match &self.chaos {
            Some(ch) => (time + ch.event_delay(seq), ch.event_tiebreak(seq)),
            None => (time, 0),
        };
        match &mut self.events {
            EventStore::Legacy(h) => h.push(Reverse(Ev {
                time,
                tie,
                seq,
                kind,
            })),
            EventStore::Sharded(q) => {
                // Route to the destination node's shard: a flag arrival
                // belongs to its target image's node, a landing names its
                // node directly.
                let shard = match &kind {
                    EvKind::FlagArrive(n) => self.node_of[n.img] as usize,
                    EvKind::Landing { node, .. } => *node,
                    // All notifies in a batch target the same image, so
                    // the first one names the batch's home shard.
                    EvKind::AmArrive(l) => l.first().map_or(0, |n| self.node_of[n.img] as usize),
                };
                q.push(shard, EvKey { time, tie, seq }, kind);
            }
        }
        self.stats.record_sim_event_push(self.events.len() as u64);
    }

    /// True when no image can make progress ever again: nothing in
    /// flight, nobody alive, and at least one image still blocked.
    pub(crate) fn is_deadlocked(&self) -> bool {
        self.events.is_empty() && self.sched.is_empty() && self.done_count < self.state.len()
    }

    /// Commit-turn bookkeeping shared by the threaded driver
    /// ([`SimFabric::lock_turn`]) and the stepped driver
    /// ([`crate::stepper::run_stepped`]): throughput accounting, the
    /// chaos kill fault, and PCT priority reshuffles. `my_op` is the
    /// per-image op index the call's chaos delay was charged under.
    /// `Err(msg)` means this image was just killed — the caller must
    /// poison the fabric and panic with the message.
    pub(crate) fn grant_commit(&mut self, me: usize, my_op: u64) -> Result<(), String> {
        self.stats.record_sim_commit();
        #[cfg(test)]
        self.commit_log.push((me, my_op, self.time[me]));
        let ch = match self.chaos {
            Some(ch) => ch,
            None => return Ok(()),
        };
        // The kill fault fires at the victim's *commit turn*: every op
        // with a smaller (time, prio, rank) key has already committed,
        // none with a larger one has — so the fabric state at death is a
        // pure function of the seed and recovery runs are replayable.
        if ch.kill_image_at == Some((me, my_op)) {
            self.set_done(me);
            let msg = format!(
                "image {me} killed at t={}ns (chaos kill_image_at op {my_op})",
                self.time[me]
            );
            self.poisoned = Some(msg.clone());
            return Err(msg);
        }
        self.commits += 1;
        if ch.reorder && ch.pct_interval > 0 && self.commits.is_multiple_of(ch.pct_interval) {
            // PCT-style reshuffle: new tie-break priorities at a
            // deterministic point in the committed-op stream.
            let epoch = self.commits / ch.pct_interval;
            for i in 0..self.prio.len() {
                self.prio[i] = ch.image_priority(epoch, i);
            }
            self.resort_priorities();
        }
        Ok(())
    }

    /// Trace events shown per image in the deadlock report.
    const DEADLOCK_TRAIL: usize = 4;

    pub(crate) fn deadlock_report(&self) -> String {
        let mut msg =
            String::from("SimFabric deadlock: all images blocked, no messages in flight\n");
        for (i, s) in self.state.iter().enumerate() {
            if let ImgState::Blocked { flag, at_least } = s {
                msg.push_str(&format!(
                    "  image {i} @ t={}ns waits flag{} >= {} (current {})\n",
                    self.time[i], flag, at_least, self.flags[i][*flag]
                ));
                for ev in self.tracer.last_events(i, Self::DEADLOCK_TRAIL) {
                    msg.push_str(&format!("    recent: {}\n", ev.render()));
                }
            }
        }
        if !self.tracer.enabled() {
            msg.push_str(
                "  (build with the `trace` feature and install a Tracer for \
                 per-image operation history)\n",
            );
        }
        msg
    }
}

/// Outcome of modeling one message: when it arrives, and how its cost
/// splits into queueing (waiting for the bus/NIC) vs service.
struct Transfer {
    arrival: u64,
    queue_ns: u64,
    service_ns: u64,
}

/// Recovery-rendezvous state: a wall-clock (not virtual-time) barrier of
/// the surviving images, used by [`Fabric::heal`] after a chaos kill.
#[derive(Default)]
struct HealState {
    /// Survivors currently parked in `heal`.
    waiting: usize,
    /// Completed heal rounds (the release signal for parked survivors).
    round: u64,
    /// Recovery generation exposed via [`Fabric::generation`].
    generation: u64,
}

/// The virtual-time simulation fabric. See the module docs for semantics.
pub struct SimFabric {
    map: ImageMap,
    pub(crate) cfg: SimConfig,
    stats: Arc<FabricStats>,
    pub(crate) core: Mutex<SimCore>,
    /// One condvar per image: commits wake only the next eligible image
    /// (the global argmin), not the whole herd — O(1) wakeups per commit.
    cvs: Vec<Condvar>,
    /// Recovery rendezvous (see [`Fabric::heal`]).
    heal: Mutex<HealState>,
    heal_cv: Condvar,
}

impl SimFabric {
    /// Build a fabric for the images of `map` with `cfg` cost parameters.
    pub fn new(map: ImageMap, cfg: SimConfig) -> Arc<Self> {
        let n = map.n_images();
        let nodes = map.machine().nodes;
        let sockets = nodes * map.machine().sockets_per_node;
        let gap_nic_ns = cfg.cost.gap_nic_ns + cfg.overheads.nic_busy_extra_ns;
        // Tracer is Copy only without the `trace` feature; the clone keeps
        // both configs compiling (`cfg` moves into the struct below).
        #[allow(clippy::clone_on_copy)]
        let tracer = cfg.tracer.clone();
        let stats = Arc::new(FabricStats::default());
        let chaos = cfg.chaos;
        let prio: Vec<u64> = match &chaos {
            Some(ch) => (0..n).map(|i| ch.image_priority(0, i)).collect(),
            None => vec![0; n],
        };
        // Everyone starts Alive at t=0 with its initial priority.
        let mut sched = SchedIndex::new(n);
        for (i, &p) in prio.iter().enumerate() {
            sched.insert(i, (0, p));
        }
        let node_of: Vec<u32> = (0..n)
            .map(|i| map.node_of(ProcId(i)).index() as u32)
            .collect();
        let events = if cfg.legacy_queue {
            EventStore::Legacy(BinaryHeap::new())
        } else {
            EventStore::Sharded(ShardedEvq::new(nodes))
        };
        let slots = cfg.bootstrap_slots.unwrap_or(n);
        Arc::new(Self {
            map,
            cfg: cfg.clone(),
            stats: stats.clone(),
            core: Mutex::new(SimCore {
                gap_nic_ns,
                time: vec![0; n],
                state: vec![ImgState::Alive; n],
                // Bootstrap resources: segment 0 and the control flags.
                segs: vec![vec![vec![0u8; slots * crate::bootstrap::SLOT_BYTES]]; n],
                flags: vec![vec![0u64; crate::bootstrap::NUM_FLAGS]; n],
                last_arrival: vec![0; n],
                node_bus_free: vec![0; nodes],
                socket_bus_free: vec![0; sockets],
                nic_free: vec![0; nodes],
                events,
                sched,
                node_of,
                done_count: 0,
                legacy_scans: cfg.legacy_queue,
                event_seq: 0,
                poisoned: None,
                stats,
                tracer,
                chaos,
                chaos_ops: vec![0; n],
                prio,
                commits: 0,
                #[cfg(test)]
                commit_log: Vec::new(),
            }),
            cvs: (0..n).map(|_| Condvar::new()).collect(),
            heal: Mutex::new(HealState::default()),
            heal_cv: Condvar::new(),
        })
    }

    /// Convenience constructor with default (paper-calibrated) parameters.
    pub fn with_defaults(map: ImageMap) -> Arc<Self> {
        Self::new(map, SimConfig::default())
    }

    /// Maximum virtual time over all images — the makespan of the simulated
    /// execution so far.
    pub fn max_time_ns(&self) -> u64 {
        let core = self.core.lock();
        core.time.iter().copied().max().unwrap_or(0)
    }

    /// Block (wall-clock) until image `me` holds the commit turn.
    fn lock_turn(&self, me: usize) -> MutexGuard<'_, SimCore> {
        let mut core = self.core.lock();
        let mut my_op = 0;
        if let Some(ch) = &self.cfg.chaos {
            // Charge this call's chaos delay up front, keyed by the
            // per-image op counter (deterministic regardless of which
            // wall-clock order threads reach this mutex in).
            let node = self.map.node_of(ProcId(me)).index();
            let op = core.chaos_ops[me];
            my_op = op;
            core.chaos_ops[me] += 1;
            let charged = core.time[me] + ch.op_delay(me, node, op);
            core.set_time(me, charged);
        }
        loop {
            if let Some(msg) = &core.poisoned {
                panic!("{msg}");
            }
            let mut woken = Vec::new();
            core.apply_due_events(&mut woken);
            self.notify(&core, &woken);
            if core.may_commit(me) {
                if let Err(msg) = core.grant_commit(me, my_op) {
                    drop(core);
                    self.notify_everyone();
                    panic!("{msg}");
                }
                return core;
            }
            self.cvs[me].wait(&mut core);
        }
    }

    /// Wake the listed (just-unblocked) images and the next eligible image.
    fn notify(&self, core: &SimCore, woken: &[usize]) {
        for &w in woken {
            self.cvs[w].notify_one();
        }
        if let Some(next) = core.next_eligible() {
            self.cvs[next].notify_one();
        }
    }

    /// Wake every image thread (poison propagation).
    fn notify_everyone(&self) {
        for cv in &self.cvs {
            cv.notify_one();
        }
    }

    /// Reserve the node bus of `node` from `not_before` for `busy` ns;
    /// returns the reservation start.
    fn reserve_bus(core: &mut SimCore, node: usize, not_before: u64, busy: u64) -> u64 {
        let start = not_before.max(core.node_bus_free[node]);
        core.node_bus_free[node] = start + busy;
        start
    }

    /// Reserve a socket-local bus (same-socket traffic bypasses the
    /// node-wide bus — the resource distinction behind the §VII
    /// multi-level hierarchy).
    fn reserve_socket_bus(core: &mut SimCore, slot: usize, not_before: u64, busy: u64) -> u64 {
        let start = not_before.max(core.socket_bus_free[slot]);
        core.socket_bus_free[slot] = start + busy;
        start
    }

    /// Reserve the NIC of `node` from `not_before` for `busy` ns.
    fn reserve_nic(core: &mut SimCore, node: usize, not_before: u64, busy: u64) -> u64 {
        let start = not_before.max(core.nic_free[node]);
        core.nic_free[node] = start + busy;
        start
    }

    /// Model a one-sided message of `bytes` payload from `me` (clock `t`)
    /// to `dst`: reserve resources, advance the sender's clock, and — when
    /// `notify` is set — schedule the flag delivery. `Transfer::arrival` is
    /// a lower-bound arrival estimate used by `quiet` (exact for intra-node
    /// traffic; for inter-node traffic, receiver-NIC queueing may add
    /// time); `queue_ns`/`service_ns` split the message's cost into time
    /// spent waiting for the shared resource (bus or NIC) versus time being
    /// serviced by it — the split the trace reports per operation. `nb`
    /// marks a nonblocking put so its eventual `Landing` is counted as a
    /// completion (intra-node transfers are CPU-driven and complete before
    /// this returns; their completion is the caller's to record).
    #[allow(clippy::too_many_arguments)]
    fn model_transfer(
        &self,
        core: &mut SimCore,
        me: usize,
        dst: usize,
        t: u64,
        bytes: usize,
        notify: Option<(usize, u64)>,
        nb: bool,
    ) -> Transfer {
        let c = &self.cfg.cost;
        let o_sw = self.cfg.overheads.per_op_ns;
        let shm_ok = !self.cfg.overheads.intra_via_nic;
        let colocated = self.map.colocated(ProcId(me), ProcId(dst));
        let intra = colocated && shm_ok;
        let mk_notify = |(flag, delta): (usize, u64)| Notify {
            img: dst,
            flag,
            delta,
            src: me as u32,
            posted: t,
            intra: colocated,
        };
        if intra && self.map.same_socket(ProcId(me), ProcId(dst)) {
            // Same socket: cheaper latency, socket-local serialization.
            let ready = t + o_sw + c.o_intra_ns;
            let busy = c.gap_socket_ns + c.intra_payload_ns(bytes);
            let loc = self.map.location(ProcId(me));
            let spn = self.map.machine().sockets_per_node;
            let slot = loc.node.index() * spn + loc.socket.index();
            let start = Self::reserve_socket_bus(core, slot, ready, busy);
            let sender_end = start + busy;
            core.set_time(me, sender_end);
            let arrival = sender_end + c.l_socket_ns;
            if let Some(n) = notify {
                core.push_event(arrival, EvKind::FlagArrive(mk_notify(n)));
            }
            Transfer {
                arrival,
                queue_ns: start - ready,
                service_ns: busy + c.l_socket_ns,
            }
        } else if intra {
            // Sender CPU drives the copy through the node memory bus.
            let ready = t + o_sw + c.o_intra_ns;
            let busy = c.gap_intra_ns + c.intra_payload_ns(bytes);
            let node = self.map.node_of(ProcId(me)).index();
            let start = Self::reserve_bus(core, node, ready, busy);
            let sender_end = start + busy;
            core.set_time(me, sender_end);
            let arrival = sender_end + c.l_intra_ns;
            if let Some(n) = notify {
                core.push_event(arrival, EvKind::FlagArrive(mk_notify(n)));
            }
            Transfer {
                arrival,
                queue_ns: start - ready,
                service_ns: busy + c.l_intra_ns,
            }
        } else {
            // Sender posts a descriptor; the NIC pipelines the transfer.
            // The receiver-side NIC slot is granted when the Landing event
            // comes due, keeping NIC service in virtual-time order.
            let ready = t + o_sw + c.o_inter_ns;
            core.set_time(me, ready);
            let src_node = self.map.node_of(ProcId(me)).index();
            let dst_node = self.map.node_of(ProcId(dst)).index();
            let mut gap = c.gap_nic_ns + self.cfg.overheads.nic_busy_extra_ns;
            if src_node == dst_node {
                gap += self.cfg.overheads.nic_loopback_extra_ns;
            }
            let busy = gap + c.inter_payload_ns(bytes);
            let inj = Self::reserve_nic(core, src_node, ready, busy);
            let mut wire_in = inj + busy + c.l_inter_ns;
            if nb {
                if let Some(ch) = &self.cfg.chaos {
                    // Fault injection: hold the nonblocking completion on
                    // the wire, and optionally land a duplicate (a NIC
                    // retransmission — it re-occupies the receiver NIC but
                    // is stats-neutral, so injected==completed still holds).
                    wire_in += ch.completion_delay_ns;
                    if ch.duplicate_completions {
                        core.push_event(
                            wire_in + c.gap_nic_ns,
                            EvKind::Landing {
                                node: dst_node,
                                notify: None,
                                nb: false,
                            },
                        );
                    }
                }
            }
            core.push_event(
                wire_in,
                EvKind::Landing {
                    node: dst_node,
                    notify: notify.map(mk_notify),
                    nb,
                },
            );
            Transfer {
                arrival: wire_in + c.gap_nic_ns,
                queue_ns: inj - ready,
                service_ns: busy + c.l_inter_ns + c.gap_nic_ns,
            }
        }
    }

    /// Record the span of a just-modeled AMO (shared by fetch-add and CAS).
    #[allow(clippy::too_many_arguments)]
    fn record_amo(
        &self,
        core: &SimCore,
        kind: EventKind,
        me: usize,
        target: usize,
        offset: usize,
        t: u64,
        queue_ns: u64,
    ) {
        let dur = core.time[me] - t;
        let ev = Event::span(kind, t, dur)
            .a(target as u64)
            .b(offset as u64)
            .c(queue_ns)
            .d(dur - queue_ns);
        self.cfg.tracer.record(
            me,
            if me == target {
                ev.self_target()
            } else {
                ev.intra(self.map.colocated(ProcId(me), ProcId(target)))
            },
        );
    }

    fn finish_op(&self, mut core: MutexGuard<'_, SimCore>) {
        let mut woken = Vec::new();
        core.apply_due_events(&mut woken);
        for &w in &woken {
            self.cvs[w].notify_one();
        }
        if let Some(next) = core.next_eligible() {
            self.cvs[next].notify_one();
        }
        drop(core);
    }

    // ---- op bodies -------------------------------------------------------
    //
    // The commit-time effect of each fabric op, factored out of the
    // threaded `Fabric` methods so the cooperative stepped driver
    // (`crate::stepper`) can apply the *identical* state transitions
    // without the per-image OS threads — the hosted-image mode that takes
    // simulations past sane thread counts. Callers must hold the commit
    // turn for `me` (threaded: via `lock_turn`; stepped: by construction,
    // the driver only runs the argmin image).

    /// Commit a blocking put from `me` to `dst`; see [`Fabric::put`].
    pub(crate) fn put_body(
        &self,
        core: &mut SimCore,
        me: usize,
        dst: usize,
        seg: SegmentId,
        offset: usize,
        bytes: &[u8],
    ) {
        let t = core.time[me];
        if me == dst {
            let c = &self.cfg.cost;
            let end = t + self.cfg.overheads.per_op_ns + c.intra_payload_ns(bytes.len());
            core.set_time(me, end);
            let dur = core.time[me] - t;
            self.cfg.tracer.record(
                me,
                Event::span(EventKind::Put, t, dur)
                    .a(dst as u64)
                    .b(bytes.len() as u64)
                    .self_target(),
            );
        } else {
            let intra = self.map.colocated(ProcId(me), ProcId(dst));
            let tr = self.model_transfer(core, me, dst, t, bytes.len(), None, false);
            core.last_arrival[me] = core.last_arrival[me].max(tr.arrival);
            self.stats.record_put(intra, bytes.len());
            let dur = core.time[me] - t;
            self.cfg.tracer.record(
                me,
                Event::span(EventKind::Put, t, dur)
                    .a(dst as u64)
                    .b(bytes.len() as u64)
                    .c(tr.queue_ns)
                    .d(tr.service_ns)
                    .intra(intra),
            );
        }
        let dseg = &mut core.segs[dst][seg.0];
        assert!(
            offset + bytes.len() <= dseg.len(),
            "put of {} bytes at {offset} exceeds {:?} ({} bytes)",
            bytes.len(),
            seg,
            dseg.len()
        );
        dseg[offset..offset + bytes.len()].copy_from_slice(bytes);
    }

    /// Commit a flag add from `me` onto `target`; see [`Fabric::flag_add`].
    pub(crate) fn flag_add_body(
        &self,
        core: &mut SimCore,
        me: usize,
        target: usize,
        flag: FlagId,
        delta: u64,
    ) {
        let t = core.time[me];
        if me == target {
            let end = t + self.cfg.overheads.per_op_ns + self.cfg.cost.o_intra_ns;
            core.set_time(me, end);
            flag_bump(&mut core.flags[me][flag.0], me, flag.0, delta);
            let now = core.time[me];
            self.cfg.tracer.record(
                me,
                Event::instant(EventKind::FlagAdd, t)
                    .a(target as u64)
                    .b(flag.0 as u64)
                    .c(delta)
                    .d(now)
                    .self_target(),
            );
            // A self-add delivers immediately; record it so critical-path
            // walks see every flag arrival, local ones included.
            core.tracer.record_system(
                Event::instant(EventKind::FlagDeliver, now)
                    .a(me as u64)
                    .b(flag.0 as u64)
                    .c(t)
                    .d(me as u64)
                    .intra(true),
            );
        } else {
            let intra = self.map.colocated(ProcId(me), ProcId(target));
            // A notification is an 8-byte put followed by a wakeup.
            let tr = self.model_transfer(core, me, target, t, 8, Some((flag.0, delta)), false);
            core.last_arrival[me] = core.last_arrival[me].max(tr.arrival);
            self.stats.record_flag(intra);
            self.cfg.tracer.record(
                me,
                Event::instant(EventKind::FlagAdd, t)
                    .a(target as u64)
                    .b(flag.0 as u64)
                    .c(delta)
                    .d(tr.arrival)
                    .intra(intra),
            );
        }
    }

    /// Commit the entry of a flag wait: charge the poll cost, then either
    /// satisfy immediately (returns `true`, wait span recorded) or park
    /// the image as Blocked (returns `false`; the caller records the span
    /// via [`Self::record_wait_span`] once the wake lands).
    pub(crate) fn flag_wait_enter(
        &self,
        core: &mut SimCore,
        me: usize,
        flag: FlagId,
        at_least: u64,
    ) -> bool {
        self.stats
            .flag_waits
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let t_entry = core.time[me];
        let end = t_entry + self.cfg.overheads.per_wait_ns + self.cfg.cost.poll_ns;
        core.set_time(me, end);
        if core.flags[me][flag.0] >= at_least {
            self.record_wait_span(core, me, t_entry, flag, at_least);
            return true;
        }
        core.set_blocked(me, flag.0, at_least);
        false
    }

    /// Record the `FlagWait` span for a wait entered at `t_entry` that has
    /// just completed (image `me` is Alive again, clock at wake time).
    pub(crate) fn record_wait_span(
        &self,
        core: &SimCore,
        me: usize,
        t_entry: u64,
        flag: FlagId,
        at_least: u64,
    ) {
        self.cfg.tracer.record(
            me,
            Event::span(EventKind::FlagWait, t_entry, core.time[me] - t_entry)
                .a(flag.0 as u64)
                .b(at_least),
        );
    }

    /// Commit a compute block; see [`Fabric::compute`].
    pub(crate) fn compute_body(&self, core: &mut SimCore, me: usize, ns: u64) {
        let scaled = self.cfg.overheads.scale_compute(ns);
        let t = core.time[me];
        self.cfg
            .tracer
            .record(me, Event::span(EventKind::Compute, t, scaled));
        core.set_time(me, t + scaled);
    }
}

impl Fabric for SimFabric {
    fn n_images(&self) -> usize {
        self.map.n_images()
    }

    fn image_map(&self) -> &ImageMap {
        &self.map
    }

    fn cost(&self) -> &CostParams {
        &self.cfg.cost
    }

    fn overheads(&self) -> &SoftwareOverheads {
        &self.cfg.overheads
    }

    fn stats(&self) -> &FabricStats {
        &self.stats
    }

    fn tracer(&self) -> &Tracer {
        &self.cfg.tracer
    }

    fn alloc_segment(&self, me: ProcId, bytes: usize) -> SegmentId {
        let mut core = self.core.lock();
        let me = me.index();
        let id = core.segs[me].len();
        core.segs[me].push(vec![0u8; bytes]);
        drop(core);
        SegmentId(id)
    }

    fn alloc_flags(&self, me: ProcId, count: usize) -> FlagId {
        let mut core = self.core.lock();
        let me = me.index();
        let id = core.flags[me].len();
        core.flags[me].resize(id + count, 0);
        drop(core);
        FlagId(id)
    }

    fn put(&self, me: ProcId, dst: ProcId, seg: SegmentId, offset: usize, bytes: &[u8]) {
        let (me, dst) = (me.index(), dst.index());
        let mut core = self.lock_turn(me);
        self.put_body(&mut core, me, dst, seg, offset, bytes);
        self.finish_op(core);
    }

    fn am_deliver(&self, me: ProcId, dst: ProcId, ops: &[AmOp]) {
        let (me, dst) = (me.index(), dst.index());
        let mut core = self.lock_turn(me);
        let t = core.time[me];
        let wire: usize = ops.iter().map(|op| op.wire_len()).sum();
        // Data bytes land eagerly at commit time, exactly like `put`; a
        // bounds failure is a program bug and panics like `put` would.
        let store = |core: &mut SimCore, seg: SegmentId, off: usize, data: &[u8]| {
            let dseg = &mut core.segs[dst][seg.0];
            assert!(
                off + data.len() <= dseg.len(),
                "am put of {} bytes at {off} exceeds {:?} ({} bytes)",
                data.len(),
                seg,
                dseg.len()
            );
            dseg[off..off + data.len()].copy_from_slice(data);
        };
        if me == dst {
            // Local delivery: one software op plus the memcpy of the
            // batch's payload; flags bump immediately.
            let end = t + self.cfg.overheads.per_op_ns + self.cfg.cost.intra_payload_ns(wire);
            core.set_time(me, end);
            let now = core.time[me];
            for op in ops {
                match op {
                    AmOp::Put { seg, off, data } => store(&mut core, *seg, *off, data),
                    AmOp::AmoAdd { seg, off, delta } => {
                        let dseg = &mut core.segs[dst][seg.0];
                        let cur = u64::from_le_bytes(dseg[*off..*off + 8].try_into().unwrap());
                        dseg[*off..*off + 8]
                            .copy_from_slice(&cur.wrapping_add(*delta).to_le_bytes());
                    }
                    AmOp::FlagAdd { flag, delta } | AmOp::PutFlag { flag, delta, .. } => {
                        if let AmOp::PutFlag { seg, off, data, .. } = op {
                            store(&mut core, *seg, *off, data);
                        }
                        flag_bump(&mut core.flags[me][flag.0], me, flag.0, *delta);
                        core.tracer.record_system(
                            Event::instant(EventKind::FlagDeliver, now)
                                .a(me as u64)
                                .b(flag.0 as u64)
                                .c(t)
                                .d(me as u64)
                                .intra(true),
                        );
                    }
                }
            }
            self.cfg.tracer.record(
                me,
                Event::span(EventKind::Put, t, now - t)
                    .a(dst as u64)
                    .b(wire as u64)
                    .self_target(),
            );
        } else {
            let colocated = self.map.colocated(ProcId(me), ProcId(dst));
            // The batch travels as ONE modeled transfer of its wire
            // length; its flag updates land together as one AmArrive
            // event at the transfer's arrival time.
            let tr = self.model_transfer(&mut core, me, dst, t, wire, None, false);
            core.last_arrival[me] = core.last_arrival[me].max(tr.arrival);
            let mut notifies = Vec::new();
            for op in ops {
                match op {
                    AmOp::Put { seg, off, data } => store(&mut core, *seg, *off, data),
                    AmOp::AmoAdd { seg, off, delta } => {
                        let dseg = &mut core.segs[dst][seg.0];
                        let cur = u64::from_le_bytes(dseg[*off..*off + 8].try_into().unwrap());
                        dseg[*off..*off + 8]
                            .copy_from_slice(&cur.wrapping_add(*delta).to_le_bytes());
                    }
                    AmOp::FlagAdd { flag, delta } | AmOp::PutFlag { flag, delta, .. } => {
                        if let AmOp::PutFlag { seg, off, data, .. } = op {
                            store(&mut core, *seg, *off, data);
                        }
                        notifies.push(Notify {
                            img: dst,
                            flag: flag.0,
                            delta: *delta,
                            src: me as u32,
                            posted: t,
                            intra: colocated,
                        });
                    }
                }
            }
            if !notifies.is_empty() {
                core.push_event(tr.arrival, EvKind::AmArrive(notifies));
            }
            let dur = core.time[me] - t;
            self.cfg.tracer.record(
                me,
                Event::span(EventKind::Put, t, dur)
                    .a(dst as u64)
                    .b(wire as u64)
                    .c(tr.queue_ns)
                    .d(tr.service_ns)
                    .intra(colocated),
            );
        }
        self.finish_op(core);
    }

    fn put_nb(
        &self,
        me: ProcId,
        dst: ProcId,
        seg: SegmentId,
        offset: usize,
        bytes: &[u8],
    ) -> PutToken {
        let (me, dst) = (me.index(), dst.index());
        let mut core = self.lock_turn(me);
        let t = core.time[me];
        let token;
        if me == dst {
            let c = &self.cfg.cost;
            let end = t + self.cfg.overheads.per_op_ns + c.intra_payload_ns(bytes.len());
            core.set_time(me, end);
            let dur = core.time[me] - t;
            self.cfg.tracer.record(
                me,
                Event::span(EventKind::PutNb, t, dur)
                    .a(dst as u64)
                    .b(bytes.len() as u64)
                    .self_target(),
            );
            token = PutToken::DONE;
        } else {
            let intra = self.map.colocated(ProcId(me), ProcId(dst));
            let via_bus = intra && !self.cfg.overheads.intra_via_nic;
            let tr = self.model_transfer(&mut core, me, dst, t, bytes.len(), None, true);
            core.last_arrival[me] = core.last_arrival[me].max(tr.arrival);
            self.stats.record_put_nb(intra, bytes.len());
            if via_bus {
                // The sender's CPU drove the copy through the bus before
                // model_transfer returned; only NIC-path transfers remain
                // in flight after injection.
                self.stats.record_put_nb_complete();
            }
            let dur = core.time[me] - t;
            self.cfg.tracer.record(
                me,
                Event::span(EventKind::PutNb, t, dur)
                    .a(dst as u64)
                    .b(bytes.len() as u64)
                    .c(tr.queue_ns)
                    .d(tr.service_ns)
                    .intra(intra),
            );
            token = PutToken {
                arrival_ns: tr.arrival,
            };
        }
        let dseg = &mut core.segs[dst][seg.0];
        assert!(
            offset + bytes.len() <= dseg.len(),
            "put_nb of {} bytes at {offset} exceeds {:?} ({} bytes)",
            bytes.len(),
            seg,
            dseg.len()
        );
        dseg[offset..offset + bytes.len()].copy_from_slice(bytes);
        self.finish_op(core);
        token
    }

    fn put_test(&self, me: ProcId, token: PutToken) -> bool {
        let me = me.index();
        let mut core = self.core.lock();
        let polled = core.time[me] + self.cfg.cost.poll_ns;
        core.set_time(me, polled);
        let done = core.time[me] >= token.arrival_ns;
        let mut woken = Vec::new();
        core.apply_due_events(&mut woken);
        self.notify(&core, &woken);
        drop(core);
        done
    }

    fn put_wait(&self, me: ProcId, token: PutToken) {
        let me = me.index();
        let mut core = self.core.lock();
        let t = core.time[me];
        core.set_time(me, t.max(token.arrival_ns));
        self.cfg
            .tracer
            .record(me, Event::span(EventKind::Quiet, t, core.time[me] - t));
        let mut woken = Vec::new();
        core.apply_due_events(&mut woken);
        self.notify(&core, &woken);
        drop(core);
    }

    fn get(&self, me: ProcId, src: ProcId, seg: SegmentId, offset: usize, out: &mut [u8]) {
        let (me, src) = (me.index(), src.index());
        let mut core = self.lock_turn(me);
        let t = core.time[me];
        let c = &self.cfg.cost;
        let o_sw = self.cfg.overheads.per_op_ns;
        let mut queue_ns = 0;
        if me == src {
            core.set_time(me, t + o_sw + c.intra_payload_ns(out.len()));
        } else if self.map.colocated(ProcId(me), ProcId(src)) && !self.cfg.overheads.intra_via_nic {
            let ready = t + o_sw + c.o_intra_ns;
            let busy = c.gap_intra_ns + c.intra_payload_ns(out.len());
            let node = self.map.node_of(ProcId(me)).index();
            let start = Self::reserve_bus(&mut core, node, ready, busy);
            queue_ns = start - ready;
            core.set_time(me, start + busy + c.l_intra_ns);
            self.stats.record_get(true, out.len());
        } else {
            // RDMA get: request wire + response wire + payload on response.
            // Only the requester's NIC is reserved (at near-commit time);
            // remote-side queueing is approximated by the unloaded gap, so
            // get-heavy all-to-one patterns slightly underestimate
            // contention — collectives use puts, so this path is cold.
            let ready = t + o_sw + c.o_inter_ns;
            let src_node = self.map.node_of(ProcId(me)).index();
            let gap = c.gap_nic_ns + self.cfg.overheads.nic_busy_extra_ns;
            let inj = Self::reserve_nic(&mut core, src_node, ready, gap);
            queue_ns = inj - ready;
            let req_at = inj + gap + c.l_inter_ns;
            let busy = gap + c.inter_payload_ns(out.len());
            core.set_time(me, req_at + busy + c.l_inter_ns);
            self.stats.record_get(false, out.len());
        }
        {
            let dur = core.time[me] - t;
            let ev = Event::span(EventKind::Get, t, dur)
                .a(src as u64)
                .b(out.len() as u64)
                .c(queue_ns)
                .d(dur - queue_ns);
            self.cfg.tracer.record(
                me,
                if me == src {
                    ev.self_target()
                } else {
                    ev.intra(self.map.colocated(ProcId(me), ProcId(src)))
                },
            );
        }
        let sseg = &core.segs[src][seg.0];
        assert!(
            offset + out.len() <= sseg.len(),
            "get of {} bytes at {offset} exceeds {:?} ({} bytes)",
            out.len(),
            seg,
            sseg.len()
        );
        out.copy_from_slice(&sseg[offset..offset + out.len()]);
        self.finish_op(core);
    }

    fn amo_fetch_add_u64(
        &self,
        me: ProcId,
        target: ProcId,
        seg: SegmentId,
        offset: usize,
        delta: u64,
    ) -> u64 {
        let (me, target) = (me.index(), target.index());
        assert!(
            offset.is_multiple_of(8),
            "AMO offset {offset} not 8-byte aligned"
        );
        let mut core = self.lock_turn(me);
        let t = core.time[me];
        let c = &self.cfg.cost;
        let o_sw = self.cfg.overheads.per_op_ns;
        let mut queue_ns = 0;
        if me == target {
            core.set_time(me, t + o_sw + c.o_intra_ns);
        } else if self.map.colocated(ProcId(me), ProcId(target))
            && !self.cfg.overheads.intra_via_nic
        {
            let ready = t + o_sw + c.o_intra_ns;
            let node = self.map.node_of(ProcId(me)).index();
            let start = Self::reserve_bus(&mut core, node, ready, c.gap_intra_ns);
            queue_ns = start - ready;
            core.set_time(me, start + c.gap_intra_ns + 2 * c.l_intra_ns);
        } else {
            let ready = t + o_sw + c.o_inter_ns;
            let src_node = self.map.node_of(ProcId(me)).index();
            let gap = c.gap_nic_ns + self.cfg.overheads.nic_busy_extra_ns;
            let inj = Self::reserve_nic(&mut core, src_node, ready, gap);
            queue_ns = inj - ready;
            let req_at = inj + gap + c.l_inter_ns;
            core.set_time(me, req_at + gap + c.l_inter_ns);
        }
        self.stats
            .amos
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.record_amo(
            &core,
            EventKind::AmoFetchAdd,
            me,
            target,
            offset,
            t,
            queue_ns,
        );
        let cell = &mut core.segs[target][seg.0];
        assert!(offset + 8 <= cell.len(), "AMO out of segment bounds");
        let old = u64::from_ne_bytes(cell[offset..offset + 8].try_into().expect("8 bytes"));
        cell[offset..offset + 8].copy_from_slice(&old.wrapping_add(delta).to_ne_bytes());
        self.finish_op(core);
        old
    }

    fn amo_cas_u64(
        &self,
        me: ProcId,
        target: ProcId,
        seg: SegmentId,
        offset: usize,
        expected: u64,
        new: u64,
    ) -> u64 {
        let me_p = me;
        let (me, target) = (me.index(), target.index());
        assert!(
            offset.is_multiple_of(8),
            "AMO offset {offset} not 8-byte aligned"
        );
        let mut core = self.lock_turn(me);
        // Same timing as fetch-add; share the path by computing inline.
        let t = core.time[me];
        let c = &self.cfg.cost;
        let o_sw = self.cfg.overheads.per_op_ns;
        let mut queue_ns = 0;
        if me == target {
            core.set_time(me, t + o_sw + c.o_intra_ns);
        } else if self.map.colocated(me_p, ProcId(target)) && !self.cfg.overheads.intra_via_nic {
            let ready = t + o_sw + c.o_intra_ns;
            let node = self.map.node_of(me_p).index();
            let start = Self::reserve_bus(&mut core, node, ready, c.gap_intra_ns);
            queue_ns = start - ready;
            core.set_time(me, start + c.gap_intra_ns + 2 * c.l_intra_ns);
        } else {
            let ready = t + o_sw + c.o_inter_ns;
            let src_node = self.map.node_of(me_p).index();
            let gap = c.gap_nic_ns + self.cfg.overheads.nic_busy_extra_ns;
            let inj = Self::reserve_nic(&mut core, src_node, ready, gap);
            queue_ns = inj - ready;
            let req_at = inj + gap + c.l_inter_ns;
            core.set_time(me, req_at + gap + c.l_inter_ns);
        }
        self.stats
            .amos
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.record_amo(&core, EventKind::AmoCas, me, target, offset, t, queue_ns);
        let cell = &mut core.segs[target][seg.0];
        assert!(offset + 8 <= cell.len(), "AMO out of segment bounds");
        let old = u64::from_ne_bytes(cell[offset..offset + 8].try_into().expect("8 bytes"));
        if old == expected {
            cell[offset..offset + 8].copy_from_slice(&new.to_ne_bytes());
        }
        self.finish_op(core);
        old
    }

    fn flag_add(&self, me: ProcId, target: ProcId, flag: FlagId, delta: u64) {
        let (me, target) = (me.index(), target.index());
        let mut core = self.lock_turn(me);
        self.flag_add_body(&mut core, me, target, flag, delta);
        self.finish_op(core);
    }

    fn flag_wait_ge(&self, me: ProcId, flag: FlagId, at_least: u64) {
        let me = me.index();
        let mut core = self.lock_turn(me);
        let t_entry = core.time[me];
        if self.flag_wait_enter(&mut core, me, flag, at_least) {
            self.finish_op(core);
            return;
        }
        let mut woken = Vec::new();
        core.apply_due_events(&mut woken);
        self.notify(&core, &woken);
        loop {
            if let Some(msg) = &core.poisoned {
                panic!("{msg}");
            }
            if matches!(core.state[me], ImgState::Alive) {
                break;
            }
            if core.is_deadlocked() {
                let msg = core.deadlock_report();
                core.poisoned = Some(msg.clone());
                self.notify_everyone();
                panic!("{msg}");
            }
            self.cvs[me].wait(&mut core);
        }
        self.record_wait_span(&core, me, t_entry, flag, at_least);
        self.finish_op(core);
    }

    fn flag_read(&self, me: ProcId, flag: FlagId) -> u64 {
        let me = me.index();
        let mut core = self.lock_turn(me);
        let polled = core.time[me] + self.cfg.cost.poll_ns;
        core.set_time(me, polled);
        let v = core.flags[me][flag.0];
        self.finish_op(core);
        v
    }

    fn quiet(&self, me: ProcId) {
        let me = me.index();
        let mut core = self.core.lock();
        let t = core.time[me];
        let settled = t.max(core.last_arrival[me]);
        core.set_time(me, settled);
        self.cfg
            .tracer
            .record(me, Event::span(EventKind::Quiet, t, core.time[me] - t));
        self.notify(&core, &[]);
        drop(core);
    }

    fn compute(&self, me: ProcId, ns: u64) {
        let me = me.index();
        let mut core = self.core.lock();
        self.compute_body(&mut core, me, ns);
        let mut woken = Vec::new();
        core.apply_due_events(&mut woken);
        self.notify(&core, &woken);
        drop(core);
    }

    fn now_ns(&self, me: ProcId) -> u64 {
        self.core.lock().time[me.index()]
    }

    fn poison(&self, msg: &str) {
        let mut core = self.core.lock();
        if core.poisoned.is_none() {
            core.poisoned = Some(msg.to_string());
        }
        drop(core);
        self.notify_everyone();
    }

    fn image_done(&self, me: ProcId) {
        let me = me.index();
        let mut core = self.core.lock();
        core.set_done(me);
        let mut woken = Vec::new();
        core.apply_due_events(&mut woken);
        if core.is_deadlocked() {
            let msg = core.deadlock_report();
            core.poisoned = Some(msg);
            self.notify_everyone();
        } else {
            self.notify(&core, &woken);
        }
        drop(core);
    }

    fn health(&self) -> Result<(), RecoveryError> {
        match &self.core.lock().poisoned {
            Some(msg) => Err(RecoveryError::Poisoned(msg.clone())),
            None => Ok(()),
        }
    }

    fn alive_images(&self) -> Vec<ProcId> {
        self.core
            .lock()
            .state
            .iter()
            .enumerate()
            .filter(|(_, s)| !matches!(s, ImgState::Done))
            .map(|(i, _)| ProcId(i))
            .collect()
    }

    fn generation(&self) -> u64 {
        self.heal.lock().generation
    }

    fn heal(&self, me: ProcId) -> Result<(), RecoveryError> {
        // A retired image must not join the survivor rendezvous: it would
        // be counted against the quorum and stall the reset.
        if matches!(self.core.lock().state[me.index()], ImgState::Done) {
            return Err(RecoveryError::HealFailed(format!(
                "image {} is retired and cannot heal",
                me.index()
            )));
        }
        let mut hs = self.heal.lock();
        hs.waiting += 1;
        let round = hs.round;
        // Survivors expected in this round: every non-retired image. The
        // count is stable here — kills commit before recovery begins.
        let expected = self
            .core
            .lock()
            .state
            .iter()
            .filter(|s| !matches!(s, ImgState::Done))
            .count();
        if hs.waiting >= expected {
            // Last survivor in: perform the global reset exactly once.
            let mut guard = self.core.lock();
            let core = &mut *guard;
            let n = core.state.len();
            core.sched.clear();
            for i in 0..n {
                if !matches!(core.state[i], ImgState::Done) {
                    core.state[i] = ImgState::Alive;
                    core.sched.insert(i, (core.time[i], core.prio[i]));
                }
                core.flags[i] = vec![0; crate::bootstrap::NUM_FLAGS];
                core.segs[i].truncate(crate::bootstrap::NUM_SEGS);
                core.segs[i][crate::bootstrap::SEG.0].fill(0);
                core.last_arrival[i] = 0;
            }
            core.events.clear();
            core.poisoned = None;
            drop(guard);
            hs.waiting = 0;
            hs.round += 1;
            hs.generation += 1;
            drop(hs);
            self.heal_cv.notify_all();
            self.notify_everyone();
        } else {
            while hs.round == round {
                self.heal_cv.wait(&mut hs);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmd::run_spmd;
    use caf_topology::{presets, Placement};

    // NOTE: fabric allocation is image-local, so these tests either use the
    // pre-created bootstrap resources (race-free by construction) or
    // synchronize between allocation and first remote access, exactly as
    // the runtime's team formation does for real programs.

    const SPARE_FLAG: FlagId = FlagId(2);
    #[allow(dead_code)]
    const SPARE_FLAG2: FlagId = FlagId(3);
    const BSEG: SegmentId = crate::bootstrap::SEG;

    fn sim(nodes: usize, cores: usize, images: usize, per_node: usize) -> Arc<SimFabric> {
        let map = ImageMap::new(
            presets::mini(nodes, cores),
            images,
            &Placement::Block { per_node },
        );
        SimFabric::new(
            map,
            SimConfig {
                cost: presets::whale_cost(),
                overheads: SoftwareOverheads::NONE,
                ..SimConfig::default()
            },
        )
    }

    #[test]
    fn single_image_put_get_roundtrip() {
        let f = sim(1, 1, 1, 1);
        let me = ProcId(0);
        let seg = f.alloc_segment(me, 64);
        f.put(me, me, seg, 8, &[1, 2, 3, 4]);
        let mut out = [0u8; 4];
        f.get(me, me, seg, 8, &mut out);
        assert_eq!(out, [1, 2, 3, 4]);
        assert!(f.now_ns(me) > 0);
        f.image_done(me);
    }

    #[test]
    fn two_images_flag_synchronization_and_data() {
        let f = sim(1, 2, 2, 2);
        let f2 = f.clone();
        run_spmd(f, move |me| {
            if me == ProcId(0) {
                f2.put(me, ProcId(1), BSEG, 0, &7u64.to_ne_bytes());
                f2.flag_add(me, ProcId(1), SPARE_FLAG, 1);
            } else {
                f2.flag_wait_ge(me, SPARE_FLAG, 1);
                let mut out = [0u8; 8];
                f2.get(me, me, BSEG, 0, &mut out);
                assert_eq!(u64::from_ne_bytes(out), 7);
            }
            f2.image_done(me);
        });
    }

    #[test]
    fn intra_node_notification_arrival_time_matches_model() {
        // One sender, one receiver on the same node, nothing else: arrival =
        // o_intra + gap_intra + l_intra; receiver time = arrival (wait poll
        // cost added before blocking).
        let f = sim(1, 2, 2, 2);
        let c = presets::whale_cost();
        let expected_arrival = c.o_intra_ns + c.gap_intra_ns + c.intra_payload_ns(8) + c.l_intra_ns;
        let f2 = f.clone();
        run_spmd(f.clone(), move |me| {
            if me == ProcId(0) {
                f2.flag_add(me, ProcId(1), SPARE_FLAG, 1);
            } else {
                f2.flag_wait_ge(me, SPARE_FLAG, 1);
                assert_eq!(f2.now_ns(me), expected_arrival);
            }
            f2.image_done(me);
        });
    }

    #[test]
    fn inter_node_notification_is_much_slower() {
        let f = sim(2, 1, 2, 1);
        let c = presets::whale_cost();
        // o_inter + gap_nic (+8B payload ~5ns) + l_inter + gap_nic(recv) ...
        let min_expected = c.o_inter_ns + c.gap_nic_ns + c.l_inter_ns;
        let f2 = f.clone();
        run_spmd(f.clone(), move |me| {
            if me == ProcId(0) {
                f2.flag_add(me, ProcId(1), SPARE_FLAG, 1);
            } else {
                f2.flag_wait_ge(me, SPARE_FLAG, 1);
                let t = f2.now_ns(me);
                assert!(t >= min_expected, "t={t} < {min_expected}");
                assert!(t < 2 * min_expected, "t={t} unexpectedly large");
            }
            f2.image_done(me);
        });
    }

    #[test]
    fn same_node_notifications_serialize_on_the_bus() {
        // 7 senders notify image 0, all on one node: arrivals must be spaced
        // by at least gap_intra (the §IV-A serialization effect).
        let f = sim(1, 8, 8, 8);
        let c = presets::whale_cost();
        let f2 = f.clone();
        run_spmd(f.clone(), move |me| {
            if me == ProcId(0) {
                f2.flag_wait_ge(me, SPARE_FLAG, 7);
                let t = f2.now_ns(me);
                // 7 serialized bus slots of gap_intra each, plus o + l.
                let min = c.o_intra_ns + 7 * c.gap_intra_ns + c.l_intra_ns;
                assert!(t >= min, "t={t} < serialized bound {min}");
            } else {
                f2.flag_add(me, ProcId(0), SPARE_FLAG, 1);
            }
            f2.image_done(me);
        });
    }

    #[test]
    fn cross_node_notifications_proceed_in_parallel() {
        // 7 senders on 7 *different* nodes notify image 0: the receiver NIC
        // serializes landings (gap_nic each), but the wires run in parallel,
        // so total ≈ l_inter + 7·gap_nic, far below 7 serialized wire trips.
        let f = sim(8, 1, 8, 1);
        let c = presets::whale_cost();
        let f2 = f.clone();
        run_spmd(f.clone(), move |me| {
            if me == ProcId(0) {
                f2.flag_wait_ge(me, SPARE_FLAG, 7);
                let t = f2.now_ns(me);
                let serial_bound = 7 * (c.o_inter_ns + c.l_inter_ns);
                assert!(
                    t < serial_bound,
                    "t={t} not parallel (bound {serial_bound})"
                );
            } else {
                f2.flag_add(me, ProcId(0), SPARE_FLAG, 1);
            }
            f2.image_done(me);
        });
    }

    #[test]
    fn determinism_same_program_same_virtual_times() {
        let run = || {
            let f = sim(2, 4, 8, 4);
            let f2 = f.clone();
            let times = std::sync::Arc::new(Mutex::new(vec![0u64; 8]));
            let t2 = times.clone();
            run_spmd(f.clone(), move |me| {
                // All-to-one then one-to-all.
                if me == ProcId(0) {
                    f2.flag_wait_ge(me, SPARE_FLAG, 7);
                    for j in 1..8 {
                        f2.flag_add(me, ProcId(j), SPARE_FLAG, 1);
                    }
                } else {
                    f2.flag_add(me, ProcId(0), SPARE_FLAG, 1);
                    f2.flag_wait_ge(me, SPARE_FLAG, 1);
                }
                t2.lock()[me.index()] = f2.now_ns(me);
                f2.image_done(me);
            });
            let v = times.lock().clone();
            v
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn batched_am_delivery_matches_unbatched_oracle() {
        use crate::am::Am;
        use crate::batch::AmPolicy;
        use crate::ArcFabric;
        // 7 images storm image 0 with small put+flag AMs. The batched run
        // coalesces each sender's storm into one AmArrive event; the
        // unbatched policy replays them one fabric op at a time. Final data
        // and flag state must match bit-for-bit, and the batched schedule
        // must be deterministic.
        let run = |policy: AmPolicy| {
            let f = sim(2, 4, 8, 4);
            let f2 = f.clone();
            let out = Arc::new(Mutex::new((vec![0u8; 7 * 8], 0u64, vec![0u64; 8])));
            let o2 = out.clone();
            run_spmd(f.clone(), move |me| {
                if me == ProcId(0) {
                    f2.flag_wait_ge(me, SPARE_FLAG, 7 * 3);
                    let mut buf = vec![0u8; 7 * 8];
                    f2.get(me, me, BSEG, 0, &mut buf);
                    let mut g = o2.lock();
                    g.0 = buf;
                    g.1 = f2.flag_read(me, SPARE_FLAG);
                } else {
                    let af: ArcFabric = f2.clone();
                    let mut am = Am::new(af, me, policy);
                    let base = (me.index() - 1) * 8;
                    for round in 1..=3u64 {
                        let v = me.index() as u64 * 100 + round;
                        am.put(ProcId(0), BSEG, base, &v.to_le_bytes());
                        am.flag_add(ProcId(0), SPARE_FLAG, 1);
                    }
                    am.quiet();
                }
                o2.lock().2[me.index()] = f2.now_ns(me);
                f2.image_done(me);
            });
            let g = out.lock().clone();
            g
        };
        let wide = AmPolicy {
            batch_bytes: 1 << 20,
            batch_ops: 64,
            flush_age_ns: u64::MAX,
        };
        let batched = run(wide);
        let oracle = run(AmPolicy::unbatched());
        assert_eq!(batched.0, oracle.0, "payload bytes diverge");
        assert_eq!(batched.1, oracle.1, "flag totals diverge");
        // Virtual times differ between policies (batches travel as one
        // transfer) but the batched schedule itself must be reproducible.
        assert_eq!(batched, run(wide), "batched run is not deterministic");
    }

    #[test]
    fn deadlock_is_detected_and_panics_everywhere() {
        let f = sim(1, 2, 2, 2);
        let mut handles = Vec::new();
        for i in 0..2 {
            let f = f.clone();
            handles.push(std::thread::spawn(move || {
                let me = ProcId(i);
                // Both images wait; nobody notifies: deadlock.
                f.flag_wait_ge(me, SPARE_FLAG, 1);
                f.image_done(me);
            }));
        }
        let mut panics = 0;
        for h in handles {
            if h.join().is_err() {
                panics += 1;
            }
        }
        assert_eq!(panics, 2, "both images must observe the deadlock");
    }

    #[test]
    fn compute_advances_virtual_time_scaled() {
        let map = ImageMap::new(presets::mini(1, 1), 1, &Placement::Packed);
        let f = SimFabric::new(
            map,
            SimConfig {
                cost: presets::whale_cost(),
                overheads: SoftwareOverheads {
                    per_op_ns: 0,
                    per_wait_ns: 0,
                    compute_milli: 2000,
                    intra_via_nic: false,
                    nic_busy_extra_ns: 0,
                    nic_loopback_extra_ns: 0,
                },
                ..SimConfig::default()
            },
        );
        f.compute(ProcId(0), 1000);
        assert_eq!(f.now_ns(ProcId(0)), 2000);
        f.image_done(ProcId(0));
    }

    #[test]
    fn quiet_waits_for_outstanding_puts() {
        let f = sim(2, 1, 2, 1);
        let f2 = f.clone();
        run_spmd(f.clone(), move |me| {
            if me == ProcId(0) {
                let before = f2.now_ns(me);
                f2.put(me, ProcId(1), BSEG, 0, &[1u8; 8]);
                // The descriptor post returns quickly...
                let posted = f2.now_ns(me);
                assert!(posted - before < f2.cost().l_inter_ns);
                // ...but quiet() must cover the full wire latency.
                f2.quiet(me);
                assert!(f2.now_ns(me) >= before + f2.cost().l_inter_ns);
            }
            f2.image_done(me);
        });
    }

    #[test]
    fn put_nb_returns_before_wire_and_put_wait_covers_it() {
        let f = sim(2, 1, 2, 1);
        let f2 = f.clone();
        run_spmd(f.clone(), move |me| {
            if me == ProcId(0) {
                let before = f2.now_ns(me);
                let tok = f2.put_nb(me, ProcId(1), BSEG, 0, &[3u8; 8]);
                // Injection costs only the descriptor post...
                let posted = f2.now_ns(me);
                assert!(posted - before < f2.cost().l_inter_ns);
                assert!(!f2.put_test(me, tok), "wire latency not yet elapsed");
                // ...and put_wait covers the full wire latency.
                f2.put_wait(me, tok);
                assert!(f2.now_ns(me) >= before + f2.cost().l_inter_ns);
                assert!(f2.put_test(me, tok));
                f2.flag_add(me, ProcId(1), SPARE_FLAG, 1);
            } else {
                f2.flag_wait_ge(me, SPARE_FLAG, 1);
                let mut out = [0u8; 8];
                f2.get(me, me, BSEG, 0, &mut out);
                assert_eq!(out, [3u8; 8]);
            }
            f2.image_done(me);
        });
        let s = f.stats().snapshot();
        assert_eq!(s.puts_nb_injected, 1);
        assert_eq!(s.puts_nb_completed, 1, "landing drains by run end");
    }

    #[test]
    fn intra_node_put_nb_completes_at_injection() {
        let f = sim(1, 2, 2, 2);
        let f2 = f.clone();
        run_spmd(f.clone(), move |me| {
            if me == ProcId(0) {
                f2.put_nb(me, ProcId(1), BSEG, 0, &[9u8; 16]);
                let s = f2.stats().snapshot();
                assert_eq!(s.puts_nb_injected, 1);
                assert_eq!(s.puts_nb_completed, 1, "CPU-driven copy is done");
                f2.flag_add(me, ProcId(1), SPARE_FLAG, 1);
            } else {
                f2.flag_wait_ge(me, SPARE_FLAG, 1);
            }
            f2.image_done(me);
        });
    }

    #[test]
    fn put_nb_determinism_same_virtual_times() {
        // The satellite determinism guarantee: a program full of nonblocking
        // puts commits in the same virtual-time order on every run.
        let run = || {
            let f = sim(2, 4, 8, 4);
            let f2 = f.clone();
            let times = std::sync::Arc::new(Mutex::new(vec![0u64; 8]));
            let t2 = times.clone();
            run_spmd(f.clone(), move |me| {
                if me == ProcId(0) {
                    f2.flag_wait_ge(me, SPARE_FLAG, 7);
                    for j in 1..8 {
                        f2.flag_add(me, ProcId(j), SPARE_FLAG, 1);
                    }
                } else {
                    // Stream chunks at image 0, then announce them.
                    let mut tok = crate::PutToken::DONE;
                    for c in 0..4usize {
                        tok = f2.put_nb(me, ProcId(0), BSEG, 8 * c, &[me.index() as u8; 8]);
                    }
                    f2.put_wait(me, tok);
                    f2.flag_add(me, ProcId(0), SPARE_FLAG, 1);
                    f2.flag_wait_ge(me, SPARE_FLAG, 1);
                }
                t2.lock()[me.index()] = f2.now_ns(me);
                f2.image_done(me);
            });
            let v = times.lock().clone();
            v
        };
        assert_eq!(run(), run());
    }

    /// All-to-one then one-to-all under a given chaos config; returns the
    /// final per-image virtual times (a schedule fingerprint).
    fn chaos_fingerprint(chaos: Option<ChaosConfig>) -> Vec<u64> {
        fingerprint(false, chaos)
    }

    fn fingerprint(legacy_queue: bool, chaos: Option<ChaosConfig>) -> Vec<u64> {
        let map = ImageMap::new(presets::mini(2, 4), 8, &Placement::Block { per_node: 4 });
        let f = SimFabric::new(
            map,
            SimConfig {
                cost: presets::whale_cost(),
                overheads: SoftwareOverheads::NONE,
                chaos,
                legacy_queue,
                ..SimConfig::default()
            },
        );
        let f2 = f.clone();
        let times = std::sync::Arc::new(Mutex::new(vec![0u64; 8]));
        let t2 = times.clone();
        run_spmd(f.clone(), move |me| {
            if me == ProcId(0) {
                f2.flag_wait_ge(me, SPARE_FLAG, 7);
                for j in 1..8 {
                    f2.flag_add(me, ProcId(j), SPARE_FLAG, 1);
                }
            } else {
                f2.put_nb(me, ProcId(0), BSEG, 8 * me.index(), &[me.index() as u8; 8]);
                f2.flag_add(me, ProcId(0), SPARE_FLAG, 1);
                f2.flag_wait_ge(me, SPARE_FLAG, 1);
            }
            t2.lock()[me.index()] = f2.now_ns(me);
            f2.image_done(me);
        });
        let v = times.lock().clone();
        v
    }

    #[test]
    fn sharded_queue_matches_legacy_bit_for_bit() {
        // The tentpole determinism guarantee: the sharded per-node event
        // core and the pre-scale global heap produce identical schedules
        // (virtual-time fingerprints), with and without chaos reordering.
        assert_eq!(fingerprint(true, None), fingerprint(false, None));
        for seed in [3u64, 11, 29] {
            let chaos = ChaosConfig::from_seed(seed);
            assert_eq!(
                fingerprint(true, Some(chaos)),
                fingerprint(false, Some(chaos)),
                "schedules diverged for chaos seed {seed}"
            );
        }
    }

    #[test]
    fn bootstrap_slot_cap_bounds_the_segment() {
        let map = ImageMap::new(presets::mini(1, 1), 1, &Placement::Packed);
        let f = SimFabric::new(
            map,
            SimConfig {
                cost: presets::whale_cost(),
                bootstrap_slots: Some(4),
                ..SimConfig::default()
            },
        );
        let me = ProcId(0);
        // Low offsets work; the segment is exactly 4 slots.
        f.put(me, me, BSEG, 0, &[7u8; 8]);
        let cap = 4 * crate::bootstrap::SLOT_BYTES;
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            f.put(me, me, BSEG, cap, &[1u8]);
        }));
        assert!(r.is_err(), "past-the-cap put must hit the bounds assert");
    }

    #[test]
    fn sim_stats_track_events_and_commits() {
        let f = sim(2, 1, 2, 1);
        let f2 = f.clone();
        run_spmd(f.clone(), move |me| {
            if me == ProcId(0) {
                f2.flag_add(me, ProcId(1), SPARE_FLAG, 1);
            } else {
                f2.flag_wait_ge(me, SPARE_FLAG, 1);
            }
            f2.image_done(me);
        });
        let s = f.stats().snapshot();
        // One inter-node flag_add = a Landing plus its FlagArrive.
        assert_eq!(s.sim_events_pushed, 2);
        assert_eq!(s.sim_events_popped, 2, "queue drains by run end");
        assert!(s.sim_queue_hwm >= 1);
        assert_eq!(s.sim_wakeups, 1, "the waiter wakes exactly once");
        // flag_add + flag_wait are the only turn-taking ops here.
        assert_eq!(s.sim_commits, 2);
    }

    #[test]
    fn chaos_same_seed_same_schedule() {
        let a = chaos_fingerprint(Some(ChaosConfig::from_seed(11)));
        let b = chaos_fingerprint(Some(ChaosConfig::from_seed(11)));
        assert_eq!(a, b, "a chaos seed must fully determine the schedule");
    }

    #[test]
    fn chaos_different_seeds_differ_and_off_matches_default() {
        let a = chaos_fingerprint(Some(ChaosConfig::from_seed(1)));
        let b = chaos_fingerprint(Some(ChaosConfig::from_seed(2)));
        assert_ne!(a, b, "different seeds should perturb virtual times");
        // ChaosConfig::off leaves every knob at zero: identical schedule
        // (and virtual times) to the plain scheduler.
        assert_eq!(
            chaos_fingerprint(Some(ChaosConfig::off(5))),
            chaos_fingerprint(None)
        );
    }

    #[test]
    fn chaos_faults_terminate_and_slow_the_victims() {
        let chaos = ChaosConfig {
            stalled_image: Some(3),
            stall_ns: 10_000,
            completion_delay_ns: 2_000,
            duplicate_completions: true,
            ..ChaosConfig::off(9)
        };
        let t = chaos_fingerprint(Some(chaos));
        let base = chaos_fingerprint(None);
        assert!(
            t[3] > base[3],
            "stalled image should finish later ({} vs {})",
            t[3],
            base[3]
        );
    }

    #[test]
    #[should_panic(expected = "sync flag counter overflow")]
    fn flag_counter_overflow_is_caught() {
        let f = sim(1, 1, 1, 1);
        let me = ProcId(0);
        f.flag_add(me, me, SPARE_FLAG, u64::MAX);
        f.flag_add(me, me, SPARE_FLAG, 1);
    }

    #[test]
    fn amo_fetch_add_accumulates_and_returns_old() {
        let f = sim(1, 4, 4, 4);
        let f2 = f.clone();
        let olds = std::sync::Arc::new(Mutex::new(Vec::new()));
        let olds2 = olds.clone();
        run_spmd(f.clone(), move |me| {
            let old = f2.amo_fetch_add_u64(me, ProcId(0), BSEG, 0, 1);
            olds2.lock().push(old);
            f2.flag_add(me, ProcId(0), SPARE_FLAG, 1);
            if me == ProcId(0) {
                f2.flag_wait_ge(me, SPARE_FLAG, 4);
                let mut out = [0u8; 8];
                f2.get(me, me, BSEG, 0, &mut out);
                assert_eq!(u64::from_ne_bytes(out), 4);
            }
            f2.image_done(me);
        });
        let mut seen = olds.lock().clone();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3], "AMO must hand out distinct olds");
    }

    #[test]
    fn amo_cas_swaps_only_on_match() {
        let f = sim(1, 1, 1, 1);
        let me = ProcId(0);
        let seg = f.alloc_segment(me, 8);
        assert_eq!(f.amo_cas_u64(me, me, seg, 0, 0, 42), 0);
        assert_eq!(f.amo_cas_u64(me, me, seg, 0, 0, 99), 42); // no swap
        let mut out = [0u8; 8];
        f.get(me, me, seg, 0, &mut out);
        assert_eq!(u64::from_ne_bytes(out), 42);
        f.image_done(me);
    }

    #[test]
    fn stats_count_hierarchy_levels() {
        let f = sim(2, 2, 4, 2);
        let f2 = f.clone();
        run_spmd(f.clone(), move |me| {
            if me == ProcId(1) {
                f2.flag_add(me, ProcId(0), SPARE_FLAG, 1); // intra (node 0)
            }
            if me == ProcId(2) {
                f2.flag_add(me, ProcId(0), SPARE_FLAG, 1); // inter (node 1 -> 0)
            }
            if me == ProcId(0) {
                f2.flag_wait_ge(me, SPARE_FLAG, 2);
            }
            f2.image_done(me);
        });
        let s = f.stats().snapshot();
        assert_eq!(s.flags_intra, 1);
        assert_eq!(s.flags_inter, 1);
    }
}
