//! Plain-text table rendering for the experiment harnesses: every
//! regenerated figure/table prints through this, so outputs are uniform
//! and grep-able in `bench_output.txt`.

/// A simple aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a data row (must match the header count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Append a footnote printed under the table.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string (also used by tests).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let hdr: Vec<String> = self
            .headers
            .iter()
            .zip(&widths)
            .map(|(h, w)| format!("{h:>w$}"))
            .collect();
        out.push_str(&hdr.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(hdr.join("  ").len()));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }

    /// Print to stdout; additionally, when the `CAF_BENCH_CSV` environment
    /// variable names a directory, write the table there as
    /// `<slug-of-title>.csv` so figures can be re-plotted from files.
    pub fn print(&self) {
        print!("{}", self.render());
        if let Ok(dir) = std::env::var("CAF_BENCH_CSV") {
            if let Err(e) = self.write_csv(&dir) {
                eprintln!("warning: could not write CSV to {dir}: {e}");
            }
        }
    }

    /// The CSV rendition (header row + data rows, comma-separated with
    /// naive quoting — cells never contain commas in our harnesses).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// File-name slug of the title (lowercase alphanumerics and dashes).
    pub fn slug(&self) -> String {
        let mut s: String = self
            .title
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '-'
                }
            })
            .collect();
        while s.contains("--") {
            s = s.replace("--", "-");
        }
        s.trim_matches('-').chars().take(60).collect()
    }

    /// Write the CSV into `dir` (created if missing).
    pub fn write_csv(&self, dir: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = std::path::Path::new(dir).join(format!("{}.csv", self.slug()));
        std::fs::write(path, self.to_csv())
    }
}

/// Format a nanosecond latency as microseconds with 2 decimals.
pub fn us(ns: f64) -> String {
    format!("{:.2}", ns / 1000.0)
}

/// Format a speedup ratio with 1 decimal and an `x` suffix.
pub fn speedup(base: f64, improved: f64) -> String {
    format!("{:.1}x", base / improved)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["n", "latency_us"]);
        t.row(&["8".into(), "1.25".into()]);
        t.row(&["128".into(), "10.50".into()]);
        t.note("virtual time");
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("  8"));
        assert!(s.contains("128"));
        assert!(s.contains("note: virtual time"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn csv_and_slug() {
        let mut t = Table::new("EXP-X1: demo table (us)", &["n", "v"]);
        t.row(&["8".into(), "1.25".into()]);
        assert_eq!(t.slug(), "exp-x1-demo-table-us");
        assert_eq!(t.to_csv(), "n,v\n8,1.25\n");
        let dir = std::env::temp_dir().join("caf_csv_test");
        t.write_csv(dir.to_str().unwrap()).unwrap();
        let written = std::fs::read_to_string(dir.join("exp-x1-demo-table-us.csv")).unwrap();
        assert_eq!(written, t.to_csv());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(us(1250.0), "1.25");
        assert_eq!(speedup(26_000.0, 1_000.0), "26.0x");
    }
}
