//! A real shared-memory fabric: images are OS threads, flags are atomics,
//! puts are relaxed-atomic memcpys with release/acquire edges provided by
//! the flag operations.
//!
//! This fabric validates the collective algorithms under genuine concurrency
//! (the simulator, being turn-based, cannot exhibit real races) and powers
//! the wall-clock criterion benches. Because the host is one shared-memory
//! machine, the *inter-node* half of the hierarchy is optional theater:
//! with [`ThreadConfig::inject_internode_delay`] set, operations that cross
//! simulated node boundaries busy-wait the modeled wire latency, so even a
//! laptop run shows a two-level cost structure.

use crate::am::AmOp;
use crate::seg::{FlagId, SegmentId, SharedBytes};
use crate::stats::FabricStats;
use crate::{Fabric, PutToken};
use caf_topology::{CostParams, ImageMap, ProcId, SoftwareOverheads};
use caf_trace::{Event, EventKind, Tracer};
use crossbeam::utils::{Backoff, CachePadded};
use parking_lot::{Condvar, Mutex, RwLock};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration for a [`ThreadFabric`].
#[derive(Clone, Debug)]
pub struct ThreadConfig {
    /// Cost parameters; only consulted when delay injection is on.
    pub cost: CostParams,
    /// Software overheads; kept for symmetry with the simulator (the thread
    /// fabric does not inject per-op CPU overhead — real instructions cost
    /// real time).
    pub overheads: SoftwareOverheads,
    /// Busy-wait the modeled `l_inter` on operations that cross simulated
    /// node boundaries, making wall-clock runs hierarchy-sensitive.
    pub inject_internode_delay: bool,
    /// Scale factor for injected delays, in milli-units (1000 = modeled
    /// latency as-is; 100 = 10× faster, keeping benches quick).
    pub delay_scale_milli: u64,
    /// Trace sink. The default [`Tracer::off`] records nothing; an enabled
    /// tracer captures every fabric operation with wall-clock stamps
    /// (nanoseconds since fabric creation).
    pub tracer: Tracer,
}

impl Default for ThreadConfig {
    fn default() -> Self {
        Self {
            cost: CostParams::default(),
            overheads: SoftwareOverheads::NONE,
            inject_internode_delay: false,
            delay_scale_milli: 1000,
            tracer: Tracer::off(),
        }
    }
}

/// Per-image storage.
struct ImageSlot {
    segs: RwLock<Vec<Arc<SharedBytes>>>,
    flags: RwLock<Vec<Arc<CachePadded<AtomicU64>>>>,
}

/// The real-threads fabric. See the module docs.
pub struct ThreadFabric {
    map: ImageMap,
    cfg: ThreadConfig,
    stats: FabricStats,
    start: Instant,
    slots: Vec<ImageSlot>,
    /// Parked waiters count; `flag_add` only takes the wake lock when
    /// someone may be parked.
    parked: AtomicUsize,
    wake_lock: Mutex<()>,
    wake_cv: Condvar,
    /// Set when an image died; waits panic instead of spinning forever.
    poisoned: Mutex<Option<String>>,
    poison_flag: std::sync::atomic::AtomicBool,
    /// Serializes system-ring trace records (the ring is single-writer;
    /// unlike the simulator, thread-fabric deliveries race each other).
    trace_sys_lock: Mutex<()>,
    /// Per-image wall-clock deadline (ns since `start`) by which every
    /// nonblocking put that image injected has covered its modeled wire
    /// latency; `quiet` spins up to it when delay injection is on.
    nb_deadline: Vec<CachePadded<AtomicU64>>,
}

impl ThreadFabric {
    /// Build a fabric for the images of `map`.
    pub fn new(map: ImageMap, cfg: ThreadConfig) -> Arc<Self> {
        let n = map.n_images();
        let slots = (0..n)
            .map(|_| ImageSlot {
                // Bootstrap resources: segment 0 and the control flags.
                segs: RwLock::new(vec![Arc::new(SharedBytes::new(
                    n * crate::bootstrap::SLOT_BYTES,
                ))]),
                flags: RwLock::new(
                    (0..crate::bootstrap::NUM_FLAGS)
                        .map(|_| Arc::new(CachePadded::new(AtomicU64::new(0))))
                        .collect(),
                ),
            })
            .collect();
        Arc::new(Self {
            map,
            cfg,
            stats: FabricStats::default(),
            start: Instant::now(),
            slots,
            parked: AtomicUsize::new(0),
            wake_lock: Mutex::new(()),
            wake_cv: Condvar::new(),
            poisoned: Mutex::new(None),
            poison_flag: std::sync::atomic::AtomicBool::new(false),
            trace_sys_lock: Mutex::new(()),
            nb_deadline: (0..n)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
        })
    }

    /// Convenience constructor with default configuration (no injection).
    pub fn with_defaults(map: ImageMap) -> Arc<Self> {
        Self::new(map, ThreadConfig::default())
    }

    fn seg_of(&self, img: usize, seg: SegmentId) -> Arc<SharedBytes> {
        let segs = self.slots[img].segs.read();
        segs.get(seg.0)
            .unwrap_or_else(|| panic!("image {img} has no {seg:?} (out of {})", segs.len()))
            .clone()
    }

    fn flag_cell(&self, img: usize, flag: FlagId) -> Arc<CachePadded<AtomicU64>> {
        let flags = self.slots[img].flags.read();
        flags
            .get(flag.0)
            .unwrap_or_else(|| panic!("image {img} has no {flag:?} (out of {})", flags.len()))
            .clone()
    }

    /// Wall timestamp for trace records, or 0 when tracing is off — spares
    /// the clock read on every op in untraced builds (with the `trace`
    /// feature off, `enabled()` is a constant `false` and this folds away).
    #[inline]
    fn trace_now(&self) -> u64 {
        if self.cfg.tracer.enabled() {
            self.start.elapsed().as_nanos() as u64
        } else {
            0
        }
    }

    /// Record a span that started at `t0` and ends now, tagging locality
    /// from the `me`/`peer` placement.
    #[inline]
    fn trace_span(&self, kind: EventKind, me: ProcId, peer: ProcId, t0: u64, bytes: u64) {
        if !self.cfg.tracer.enabled() {
            return;
        }
        let t1 = self.trace_now();
        let ev = Event::span(kind, t0, t1.saturating_sub(t0))
            .a(peer.index() as u64)
            .b(bytes);
        self.cfg.tracer.record(
            me.index(),
            if me == peer {
                ev.self_target()
            } else {
                ev.intra(self.map.colocated(me, peer))
            },
        );
    }

    /// Busy-wait the injected inter-node delay, if enabled.
    fn maybe_inject(&self, crossing_nodes: bool) {
        if !self.cfg.inject_internode_delay || !crossing_nodes {
            return;
        }
        let ns = self.cfg.cost.l_inter_ns * self.cfg.delay_scale_milli / 1000;
        if ns == 0 {
            return;
        }
        let deadline = Instant::now() + Duration::from_nanos(ns);
        while Instant::now() < deadline {
            std::hint::spin_loop();
        }
    }

    /// Wall ns since fabric creation (independent of the tracer — the
    /// nonblocking-put deadlines need it even in untraced builds).
    #[inline]
    fn wall_now(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Spin until the wall clock reaches `deadline_ns` (0 = nothing owed).
    fn spin_until(&self, deadline_ns: u64) {
        while self.wall_now() < deadline_ns {
            std::hint::spin_loop();
        }
    }
}

impl Fabric for ThreadFabric {
    fn n_images(&self) -> usize {
        self.map.n_images()
    }

    fn image_map(&self) -> &ImageMap {
        &self.map
    }

    fn cost(&self) -> &CostParams {
        &self.cfg.cost
    }

    fn overheads(&self) -> &SoftwareOverheads {
        &self.cfg.overheads
    }

    fn stats(&self) -> &FabricStats {
        &self.stats
    }

    fn tracer(&self) -> &Tracer {
        &self.cfg.tracer
    }

    fn alloc_segment(&self, me: ProcId, bytes: usize) -> SegmentId {
        let mut segs = self.slots[me.index()].segs.write();
        let id = segs.len();
        segs.push(Arc::new(SharedBytes::new(bytes)));
        SegmentId(id)
    }

    fn alloc_flags(&self, me: ProcId, count: usize) -> FlagId {
        let mut flags = self.slots[me.index()].flags.write();
        let id = flags.len();
        for _ in 0..count {
            flags.push(Arc::new(CachePadded::new(AtomicU64::new(0))));
        }
        FlagId(id)
    }

    fn put(&self, me: ProcId, dst: ProcId, seg: SegmentId, offset: usize, bytes: &[u8]) {
        let intra = self.map.colocated(me, dst);
        if me != dst {
            self.stats.record_put(intra, bytes.len());
        }
        let t0 = self.trace_now();
        self.maybe_inject(!intra);
        self.seg_of(dst.index(), seg).write(offset, bytes);
        self.trace_span(EventKind::Put, me, dst, t0, bytes.len() as u64);
    }

    fn am_deliver(&self, me: ProcId, dst: ProcId, ops: &[AmOp]) {
        let intra = self.map.colocated(me, dst);
        let t0 = self.trace_now();
        // One injected wire delay covers the whole batch — the thread
        // fabric's version of "many small AMs, one frame" — and the flag
        // wake pass runs once after every op has applied.
        self.maybe_inject(!intra);
        let mut bumped = false;
        for op in ops {
            match op {
                AmOp::Put { seg, off, data } => {
                    self.seg_of(dst.index(), *seg).write(*off, data);
                }
                AmOp::AmoAdd { seg, off, delta } => {
                    self.seg_of(dst.index(), *seg)
                        .as_atomic_u64(*off)
                        .fetch_add(*delta, Ordering::AcqRel);
                }
                AmOp::FlagAdd { flag, delta } | AmOp::PutFlag { flag, delta, .. } => {
                    if let AmOp::PutFlag { seg, off, data, .. } = op {
                        self.seg_of(dst.index(), *seg).write(*off, data);
                    }
                    // Release, like flag_add: a waiter that Acquires the
                    // flag sees every payload applied earlier in the batch.
                    let old = self
                        .flag_cell(dst.index(), *flag)
                        .fetch_add(*delta, Ordering::Release);
                    assert!(
                        old.checked_add(*delta).is_some(),
                        "sync flag counter overflow: image {} flag {} \
                         (cumulative counter wrapped adding {delta})",
                        dst.index(),
                        flag.0
                    );
                    bumped = true;
                }
            }
        }
        let wire: u64 = ops.iter().map(|op| op.wire_len() as u64).sum();
        self.trace_span(EventKind::Put, me, dst, t0, wire);
        if bumped && self.parked.load(Ordering::SeqCst) > 0 {
            let _g = self.wake_lock.lock();
            self.wake_cv.notify_all();
        }
    }

    fn put_nb(
        &self,
        me: ProcId,
        dst: ProcId,
        seg: SegmentId,
        offset: usize,
        bytes: &[u8],
    ) -> PutToken {
        // The asynchronous hand-off: copy now (relaxed stores; the release
        // edge comes from the subsequent flag_add or fence), but do *not*
        // busy-wait the injected wire latency here. The modeled latency is
        // deferred to `put_wait`/`quiet`, so k pipelined chunks to one peer
        // pay one wire delay instead of k — the very overlap the pipelined
        // collectives are after.
        let intra = self.map.colocated(me, dst);
        let t0 = self.trace_now();
        self.seg_of(dst.index(), seg).write(offset, bytes);
        if me == dst {
            self.trace_span(EventKind::PutNb, me, dst, t0, bytes.len() as u64);
            return PutToken::DONE;
        }
        self.stats.record_put_nb(intra, bytes.len());
        // On shared memory the payload is physically resident as soon as the
        // copy returns; completion == injection here (the simulator is where
        // the two genuinely diverge).
        self.stats.record_put_nb_complete();
        let mut arrival = 0u64;
        if self.cfg.inject_internode_delay && !intra {
            let ns = self.cfg.cost.l_inter_ns * self.cfg.delay_scale_milli / 1000;
            if ns > 0 {
                arrival = self.wall_now() + ns;
                self.nb_deadline[me.index()].fetch_max(arrival, Ordering::Relaxed);
            }
        }
        self.trace_span(EventKind::PutNb, me, dst, t0, bytes.len() as u64);
        PutToken {
            arrival_ns: arrival,
        }
    }

    fn put_test(&self, me: ProcId, token: PutToken) -> bool {
        let _ = me;
        token.arrival_ns == 0 || self.wall_now() >= token.arrival_ns
    }

    fn put_wait(&self, me: ProcId, token: PutToken) {
        let _ = me;
        self.spin_until(token.arrival_ns);
        std::sync::atomic::fence(Ordering::SeqCst);
    }

    fn get(&self, me: ProcId, src: ProcId, seg: SegmentId, offset: usize, out: &mut [u8]) {
        let intra = self.map.colocated(me, src);
        if me != src {
            self.stats.record_get(intra, out.len());
        }
        let t0 = self.trace_now();
        self.maybe_inject(!intra);
        self.seg_of(src.index(), seg).read(offset, out);
        self.trace_span(EventKind::Get, me, src, t0, out.len() as u64);
    }

    fn amo_fetch_add_u64(
        &self,
        me: ProcId,
        target: ProcId,
        seg: SegmentId,
        offset: usize,
        delta: u64,
    ) -> u64 {
        self.stats.amos.fetch_add(1, Ordering::Relaxed);
        let t0 = self.trace_now();
        self.maybe_inject(!self.map.colocated(me, target));
        let old = self
            .seg_of(target.index(), seg)
            .as_atomic_u64(offset)
            .fetch_add(delta, Ordering::AcqRel);
        self.trace_span(EventKind::AmoFetchAdd, me, target, t0, offset as u64);
        old
    }

    fn amo_cas_u64(
        &self,
        me: ProcId,
        target: ProcId,
        seg: SegmentId,
        offset: usize,
        expected: u64,
        new: u64,
    ) -> u64 {
        self.stats.amos.fetch_add(1, Ordering::Relaxed);
        let t0 = self.trace_now();
        self.maybe_inject(!self.map.colocated(me, target));
        let old = match self
            .seg_of(target.index(), seg)
            .as_atomic_u64(offset)
            .compare_exchange(expected, new, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(v) | Err(v) => v,
        };
        self.trace_span(EventKind::AmoCas, me, target, t0, offset as u64);
        old
    }

    fn flag_add(&self, me: ProcId, target: ProcId, flag: FlagId, delta: u64) {
        let intra = self.map.colocated(me, target);
        if me != target {
            self.stats.record_flag(intra);
        }
        let t0 = self.trace_now();
        self.maybe_inject(!intra);
        // Release: orders all prior (relaxed) payload stores before the
        // notification, so a waiter that Acquires the flag sees the payload.
        let old = self
            .flag_cell(target.index(), flag)
            .fetch_add(delta, Ordering::Release);
        assert!(
            old.checked_add(delta).is_some(),
            "sync flag counter overflow: image {} flag {} \
             (cumulative counter wrapped adding {delta})",
            target.index(),
            flag.0
        );
        if self.cfg.tracer.enabled() {
            // Delivery is synchronous on shared memory: the add and its
            // landing are one instant. Record both views so the critical-
            // path walk works identically on thread traces.
            let t1 = self.trace_now();
            let ev = Event::instant(EventKind::FlagAdd, t0)
                .a(target.index() as u64)
                .b(flag.0 as u64)
                .c(delta)
                .d(t1);
            self.cfg.tracer.record(
                me.index(),
                if me == target {
                    ev.self_target()
                } else {
                    ev.intra(intra)
                },
            );
            let _g = self.trace_sys_lock.lock();
            self.cfg.tracer.record_system(
                Event::instant(EventKind::FlagDeliver, t1)
                    .a(me.index() as u64)
                    .b(flag.0 as u64)
                    .c(t0)
                    .d(target.index() as u64)
                    .intra(intra || me == target),
            );
        }
        if self.parked.load(Ordering::SeqCst) > 0 {
            let _g = self.wake_lock.lock();
            self.wake_cv.notify_all();
        }
    }

    fn flag_wait_ge(&self, me: ProcId, flag: FlagId, at_least: u64) {
        self.stats.flag_waits.fetch_add(1, Ordering::Relaxed);
        let t0 = self.trace_now();
        let cell = self.flag_cell(me.index(), flag);
        let backoff = Backoff::new();
        loop {
            if cell.load(Ordering::Acquire) >= at_least {
                if self.cfg.tracer.enabled() {
                    let t1 = self.trace_now();
                    self.cfg.tracer.record(
                        me.index(),
                        Event::span(EventKind::FlagWait, t0, t1.saturating_sub(t0))
                            .a(flag.0 as u64)
                            .b(at_least),
                    );
                }
                return;
            }
            if self.poison_flag.load(Ordering::Acquire) {
                let msg = self.poisoned.lock().clone().unwrap_or_default();
                panic!("fabric poisoned while image {me:?} waited: {msg}");
            }
            if backoff.is_completed() {
                // Park with a timeout: a lost wakeup (adder saw parked == 0
                // just before we registered) resolves within one tick.
                self.parked.fetch_add(1, Ordering::SeqCst);
                let mut g = self.wake_lock.lock();
                if cell.load(Ordering::Acquire) < at_least {
                    self.wake_cv.wait_for(&mut g, Duration::from_micros(200));
                }
                drop(g);
                self.parked.fetch_sub(1, Ordering::SeqCst);
            } else {
                backoff.snooze();
            }
        }
    }

    fn flag_read(&self, me: ProcId, flag: FlagId) -> u64 {
        self.flag_cell(me.index(), flag).load(Ordering::Acquire)
    }

    fn quiet(&self, me: ProcId) {
        // Blocking operations complete synchronously; nonblocking puts may
        // still owe their modeled wire latency when delay injection is on.
        self.spin_until(self.nb_deadline[me.index()].load(Ordering::Relaxed));
        // The fence keeps the memory-model promise explicit.
        std::sync::atomic::fence(Ordering::SeqCst);
    }

    fn compute(&self, _me: ProcId, _ns: u64) {
        // Real computation takes real wall time; nothing to account.
    }

    fn now_ns(&self, _me: ProcId) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    fn image_done(&self, _me: ProcId) {}

    fn poison(&self, msg: &str) {
        {
            let mut p = self.poisoned.lock();
            if p.is_none() {
                *p = Some(msg.to_string());
            }
        }
        self.poison_flag.store(true, Ordering::Release);
        let _g = self.wake_lock.lock();
        self.wake_cv.notify_all();
    }

    fn health(&self) -> Result<(), crate::RecoveryError> {
        if self.poison_flag.load(Ordering::Acquire) {
            let msg = self.poisoned.lock().clone().unwrap_or_default();
            return Err(crate::RecoveryError::Poisoned(msg));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmd::run_spmd;
    use caf_topology::{presets, Placement};

    const SPARE_FLAG: FlagId = FlagId(2);
    #[allow(dead_code)]
    const SPARE_FLAG2: FlagId = FlagId(3);
    const BSEG: SegmentId = crate::bootstrap::SEG;

    fn fabric(nodes: usize, cores: usize, images: usize) -> Arc<ThreadFabric> {
        let map = ImageMap::new(presets::mini(nodes, cores), images, &Placement::Packed);
        ThreadFabric::with_defaults(map)
    }

    #[test]
    fn put_then_flag_then_read_many_rounds() {
        // Release/acquire discipline: receiver must always see the payload
        // that the flag announces. Repeated to give races a chance.
        let f = fabric(1, 2, 2);
        let f2 = f.clone();
        run_spmd(f.clone(), move |me| {
            for round in 1..=200u64 {
                if me == ProcId(0) {
                    f2.put(me, ProcId(1), BSEG, 0, &round.to_ne_bytes());
                    f2.flag_add(me, ProcId(1), SPARE_FLAG, 1);
                    // Wait for ack before overwriting.
                    f2.flag_wait_ge(me, SPARE_FLAG2, round);
                } else {
                    f2.flag_wait_ge(me, SPARE_FLAG, round);
                    let mut out = [0u8; 8];
                    f2.get(me, me, BSEG, 0, &mut out);
                    assert_eq!(u64::from_ne_bytes(out), round);
                    f2.flag_add(me, ProcId(0), SPARE_FLAG2, 1);
                }
            }
            f2.image_done(me);
        });
    }

    #[test]
    fn concurrent_amo_increments_are_exact() {
        let n = 4;
        let f = fabric(1, n, n);
        let f2 = f.clone();
        run_spmd(f.clone(), move |me| {
            for _ in 0..1000 {
                f2.amo_fetch_add_u64(me, ProcId(0), BSEG, 0, 1);
            }
            f2.image_done(me);
        });
        // Check the final value from outside.
        let mut out = [0u8; 8];
        f.seg_of(0, BSEG).read(0, &mut out);
        assert_eq!(u64::from_ne_bytes(out), 4000);
    }

    #[test]
    fn parked_waiter_is_woken() {
        let f = fabric(1, 2, 2);
        let f2 = f.clone();
        run_spmd(f.clone(), move |me| {
            if me == ProcId(0) {
                // Sleep long enough that image 1 parks before the add.
                std::thread::sleep(Duration::from_millis(20));
                f2.flag_add(me, ProcId(1), SPARE_FLAG, 1);
            } else {
                f2.flag_wait_ge(me, SPARE_FLAG, 1);
            }
            f2.image_done(me);
        });
    }

    #[test]
    fn injected_delay_slows_internode_ops() {
        let map = ImageMap::new(presets::mini(2, 1), 2, &Placement::Packed);
        let cfg = ThreadConfig {
            inject_internode_delay: true,
            delay_scale_milli: 10_000, // 10x the modeled 1.8us = 18us
            ..ThreadConfig::default()
        };
        let f = ThreadFabric::new(map, cfg);
        let seg = f.alloc_segment(ProcId(0), 8);
        f.alloc_segment(ProcId(1), 8);
        let t0 = Instant::now();
        for _ in 0..50 {
            f.put(ProcId(0), ProcId(1), seg, 0, &[0u8; 8]);
        }
        let cross = t0.elapsed();
        assert!(
            cross >= Duration::from_micros(50 * 15),
            "injection too weak: {cross:?}"
        );
    }

    #[test]
    fn stats_split_by_node() {
        let f = fabric(2, 2, 4);
        f.alloc_segment(ProcId(0), 16);
        let seg = SegmentId(0);
        f.put(ProcId(0), ProcId(1), seg, 0, &[1u8; 4]); // intra
        f.put(ProcId(0), ProcId(2), seg, 0, &[1u8; 4]); // inter
        f.put(ProcId(0), ProcId(0), seg, 0, &[1u8; 4]); // self: uncounted
        let s = f.stats().snapshot();
        assert_eq!(s.puts_intra, 1);
        assert_eq!(s.puts_inter, 1);
        assert_eq!(s.bytes_intra, 4);
        assert_eq!(s.bytes_inter, 4);
    }

    #[test]
    fn flag_read_does_not_block() {
        let f = fabric(1, 1, 1);
        let flag = f.alloc_flags(ProcId(0), 2);
        assert_eq!(f.flag_read(ProcId(0), flag), 0);
        f.flag_add(ProcId(0), ProcId(0), flag.nth(1), 5);
        assert_eq!(f.flag_read(ProcId(0), flag.nth(1)), 5);
        assert_eq!(f.flag_read(ProcId(0), flag), 0);
    }

    #[test]
    #[should_panic(expected = "has no seg")]
    fn unknown_segment_panics() {
        let f = fabric(1, 1, 1);
        f.put(ProcId(0), ProcId(0), SegmentId(3), 0, &[0]);
    }

    #[test]
    fn wall_clock_advances() {
        let f = fabric(1, 1, 1);
        let a = f.now_ns(ProcId(0));
        std::thread::sleep(Duration::from_millis(2));
        assert!(f.now_ns(ProcId(0)) > a);
    }
}
