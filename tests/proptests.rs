//! Property-based tests over the whole stack: placement/hierarchy algebra,
//! collective correctness against serial oracles for arbitrary team
//! splits, and LU against arbitrary well-conditioned systems.
//!
//! SPMD cases are kept small (≤ 12 images) and the proptest case counts
//! modest — each case spins up a simulated cluster.

use caf::collectives::util::{binomial_children, binomial_parent, ceil_log2, floor_pow2};
use caf::runtime::{run, RunConfig};
use caf::topology::{presets, HierarchyView, ImageMap, MachineModel, Placement, ProcId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn placement_is_injective_and_in_bounds(
        nodes in 1usize..10,
        cores in 1usize..9,
        frac in 1usize..=100,
        cyclic in any::<bool>(),
    ) {
        let machine = MachineModel::new("pt", nodes, 1, cores);
        let total = machine.total_cores();
        let images = (total * frac).div_ceil(100).clamp(1, total);
        let placement = if cyclic { Placement::Cyclic } else { Placement::Packed };
        let map = ImageMap::new(machine, images, &placement);
        let mut seen = std::collections::HashSet::new();
        for i in 0..images {
            let loc = map.location(ProcId(i));
            prop_assert!(loc.node.index() < nodes);
            prop_assert!(seen.insert((loc.node, loc.core)), "two images on one core");
        }
        let on_nodes: usize = (0..nodes)
            .map(|nd| map.images_on_node(caf::topology::NodeId(nd)).len())
            .sum();
        prop_assert_eq!(on_nodes, images);
    }

    #[test]
    fn hierarchy_partitions_any_member_subset(
        nodes in 1usize..6,
        cores in 1usize..6,
        selector in proptest::collection::vec(any::<bool>(), 1..30),
    ) {
        let machine = MachineModel::new("pt", nodes, 1, cores);
        let total = machine.total_cores();
        let map = ImageMap::new(machine, total, &Placement::Packed);
        let members: Vec<ProcId> = selector
            .iter()
            .enumerate()
            .take(total)
            .filter(|(_, &b)| b)
            .map(|(i, _)| ProcId(i))
            .collect();
        prop_assume!(!members.is_empty());
        let h = HierarchyView::build(&map, &members);
        // Every rank in exactly one set; leaders are set minima.
        let mut counted = 0;
        for set in h.sets() {
            counted += set.len();
            prop_assert_eq!(set.leader, set.ranks[0]);
            for &r in &set.ranks {
                prop_assert_eq!(h.leader_of(r), set.leader);
                prop_assert_eq!(map.node_of(members[r]), set.node);
            }
        }
        prop_assert_eq!(counted, members.len());
        prop_assert_eq!(h.leaders().len(), h.n_nodes());
    }

    #[test]
    fn binomial_tree_shape_invariants(n in 1usize..600) {
        let mut reached = vec![false; n];
        reached[0] = true;
        // BFS from the root must reach everyone exactly once.
        let mut frontier = vec![0usize];
        let mut depth = 0;
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &v in &frontier {
                for c in binomial_children(v, n) {
                    prop_assert!(!reached[c], "rank {c} reached twice");
                    reached[c] = true;
                    prop_assert_eq!(binomial_parent(c), v);
                    next.push(c);
                }
            }
            frontier = next;
            depth += 1;
            prop_assert!(depth <= ceil_log2(n) + 1);
        }
        prop_assert!(reached.iter().all(|&r| r));
        prop_assert!(floor_pow2(n) <= n && 2 * floor_pow2(n) > n);
    }
}

proptest! {
    // SPMD cases are expensive; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn co_sum_matches_serial_fold_for_arbitrary_splits(
        images in 2usize..12,
        per_node in 1usize..5,
        colors in proptest::collection::vec(0i64..3, 12),
        values in proptest::collection::vec(-1000i64..1000, 12),
    ) {
        let nodes = images.div_ceil(per_node);
        let machine = presets::mini(nodes, per_node);
        let cfg = RunConfig::sim_packed(machine, images)
            .with_placement(Placement::Block { per_node });
        let colors = std::sync::Arc::new(colors);
        let values = std::sync::Arc::new(values);
        let c2 = colors.clone();
        let v2 = values.clone();
        let out = run(cfg, move |img| {
            let me = img.this_image() - 1;
            let team = img.form_team(c2[me]);
            let (_t, sum) = img.change_team(team, |img| {
                let me0 = img.image_index_in_initial(img.this_image()) - 1;
                let mut v = vec![v2[me0]];
                img.co_sum(&mut v);
                v[0]
            });
            sum
        });
        for me in 0..images {
            let expect: i64 = (0..images)
                .filter(|&j| colors[j] == colors[me])
                .map(|j| values[j])
                .sum();
            prop_assert_eq!(out[me], expect, "image {}", me + 1);
        }
    }

    #[test]
    fn broadcast_delivers_arbitrary_payload_everywhere(
        images in 2usize..10,
        per_node in 1usize..5,
        root in 0usize..10,
        payload in proptest::collection::vec(any::<u64>(), 1..20),
    ) {
        let root = root % images + 1;
        let nodes = images.div_ceil(per_node);
        let cfg = RunConfig::sim_packed(presets::mini(nodes, per_node), images)
            .with_placement(Placement::Block { per_node });
        let payload = std::sync::Arc::new(payload);
        let p2 = payload.clone();
        let out = run(cfg, move |img| {
            let mut buf = if img.this_image() == root {
                p2.to_vec()
            } else {
                vec![0u64; p2.len()]
            };
            img.co_broadcast(&mut buf, root);
            buf
        });
        for b in out {
            prop_assert_eq!(&b, &*payload);
        }
    }

    #[test]
    fn lu_solves_arbitrary_seeds_and_shapes(
        seed in any::<u64>(),
        n_blocks in 2usize..7,
        nb in 2usize..6,
        images in prop::sample::select(vec![1usize, 2, 4, 6]),
    ) {
        let n = n_blocks * nb + (seed % 3) as usize; // exercise partial blocks
        let nodes = images.min(2);
        let per = images.div_ceil(nodes);
        let cfg = RunConfig::sim_packed(presets::mini(nodes, per), images);
        let hpl = caf::hpl::HplConfig { n, nb, seed };
        let out = run(cfg, move |img| {
            let o = caf::hpl::factorize(img, &hpl);
            caf::hpl::residual_check(img, &hpl, &o)
        });
        let r = out[0].expect("image 1 verifies");
        prop_assert!(r < 1e-9, "residual {} for n={} nb={} images={}", r, n, nb, images);
    }
}
