//! Per-image event ring: a single-writer, lock-free, overwrite-oldest
//! buffer of encoded [`Event`]s.
//!
//! Each image thread owns exactly one ring and is its only writer, so a
//! push is eight relaxed word stores followed by one `Release` head
//! bump — no CAS, no lock, no allocation. Readers (exporters, the
//! deadlock reporter) `Acquire` the head and decode the retained window;
//! a reader racing a *live* writer may observe the newest slot torn, in
//! which case [`Event::decode`] on a half-written kind word can return
//! `None` and the slot is skipped. Every consumer in this workspace reads
//! either after the run (exporters) or while the writer is provably
//! blocked on the same mutex that ordered its last push (the simulator's
//! deadlock reporter), so in practice snapshots are exact.

use crate::event::{Event, EVENT_WORDS};
use std::sync::atomic::{AtomicU64, Ordering};

/// Fixed-capacity single-writer ring of encoded events.
pub struct EventRing {
    cap: usize,
    /// Total events ever pushed; the ring retains the last `cap`.
    head: AtomicU64,
    slots: Box<[AtomicU64]>,
}

impl EventRing {
    /// Ring retaining the last `cap` events (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "ring capacity must be at least 1");
        let slots = (0..cap * EVENT_WORDS).map(|_| AtomicU64::new(0)).collect();
        Self {
            cap,
            head: AtomicU64::new(0),
            slots,
        }
    }

    /// Append one event. Pushes must not race each other: call from the
    /// single owning writer, or serialize writers with an external lock
    /// (as the thread fabric does for its system ring).
    pub fn push(&self, ev: &Event) {
        let h = self.head.load(Ordering::Relaxed);
        let base = (h as usize % self.cap) * EVENT_WORDS;
        for (i, w) in ev.encode().iter().enumerate() {
            self.slots[base + i].store(*w, Ordering::Relaxed);
        }
        self.head.store(h + 1, Ordering::Release);
    }

    /// Total events ever pushed (including overwritten ones).
    pub fn total(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        (self.total() as usize).min(self.cap)
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Retained events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        let h = self.head.load(Ordering::Acquire);
        let n = (h as usize).min(self.cap);
        let first = h - n as u64;
        let mut out = Vec::with_capacity(n);
        for i in 0..n as u64 {
            let base = ((first + i) as usize % self.cap) * EVENT_WORDS;
            let mut w = [0u64; EVENT_WORDS];
            for (j, slot) in w.iter_mut().enumerate() {
                *slot = self.slots[base + j].load(Ordering::Relaxed);
            }
            if let Some(ev) = Event::decode(&w) {
                out.push(ev);
            }
        }
        out
    }

    /// The last `n` retained events, oldest first.
    pub fn last(&self, n: usize) -> Vec<Event> {
        let mut all = self.snapshot();
        if all.len() > n {
            all.drain(..all.len() - n);
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(t: u64) -> Event {
        Event::instant(EventKind::FlagAdd, t).a(t * 10)
    }

    #[test]
    fn push_and_snapshot_in_order() {
        let r = EventRing::new(8);
        for t in 0..5 {
            r.push(&ev(t));
        }
        let s = r.snapshot();
        assert_eq!(s.len(), 5);
        assert_eq!(
            s.iter().map(|e| e.t_ns).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert_eq!(r.total(), 5);
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let r = EventRing::new(4);
        for t in 0..10 {
            r.push(&ev(t));
        }
        let s = r.snapshot();
        assert_eq!(
            s.iter().map(|e| e.t_ns).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        assert_eq!(r.total(), 10);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn last_n_takes_the_tail() {
        let r = EventRing::new(8);
        for t in 0..6 {
            r.push(&ev(t));
        }
        let s = r.last(2);
        assert_eq!(s.iter().map(|e| e.t_ns).collect::<Vec<_>>(), vec![4, 5]);
        assert_eq!(r.last(100).len(), 6);
    }
}
