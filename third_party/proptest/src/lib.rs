//! Offline shim for the `proptest` API subset used by this workspace:
//! the `proptest!` macro with optional `#![proptest_config(..)]`,
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, and strategies for
//! integer ranges, `any::<T>()`, `Just`, tuples, `prop_flat_map`,
//! `prop_map`, and `collection::vec`.
//!
//! Sampling is deterministic: each test's RNG is seeded from the test
//! name, so failures reproduce exactly across runs and machines. There is
//! no shrinking — a failing case reports its inputs instead.

pub mod strategy;

pub mod test_runner {
    /// Per-test configuration; only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 32 }
        }
    }

    /// Deterministic SplitMix64 sampler seeded from the test name.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the test name gives a stable per-test seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: h | 1 }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Debug + Sized {
        fn generate(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn generate(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn generate(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy produced by [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::generate(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length specifications accepted by [`vec`]: a fixed `usize`, a
    /// half-open range, or an inclusive range.
    pub trait SizeRange {
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl SizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.end > self.start, "empty vec length range");
            (self.start, self.end - 1)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { elem, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt::Debug;

    /// Uniform choice from a fixed list of values.
    #[derive(Clone, Debug)]
    pub struct Select<T: Clone + Debug> {
        options: Vec<T>,
    }

    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace alias matching `proptest::prelude::prop::*`.
    pub mod prop {
        pub use crate::{collection, sample, strategy};
    }
}

/// Define property tests. Each argument is sampled from its strategy for
/// `cases` iterations; `prop_assert*` failures report the sampled inputs.
#[macro_export]
macro_rules! proptest {
    (@impl ($cases:expr)
        $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases: u32 = $cases;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..__cases {
                    let mut __inputs = ::std::string::String::new();
                    $(
                        let __sampled = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                        __inputs.push_str(&::std::format!("{} = {:?}; ", stringify!($arg), &__sampled));
                        let $arg = __sampled;
                    )*
                    let __result: ::std::result::Result<(), ::std::string::String> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__msg) = __result {
                        panic!(
                            "proptest '{}' case {}/{} failed: {}\n  inputs: {}",
                            stringify!($name), __case + 1, __cases, __msg, __inputs
                        );
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{@impl (($cfg).cases) $($rest)*}
    };
    ($($rest:tt)*) => {
        $crate::proptest!{@impl ($crate::test_runner::ProptestConfig::default().cases) $($rest)*}
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err(::std::format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($left), stringify!($right), __l, __r));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err(::std::format!(
                        "{}\n  left: {:?}\n right: {:?}",
                        ::std::format!($($fmt)+), __l, __r));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err(::std::format!(
                        "assertion failed: `{} != {}`\n  both: {:?}",
                        stringify!($left),
                        stringify!($right),
                        __l
                    ));
                }
            }
        }
    };
}

/// Skip the current case when its sampled inputs are uninteresting.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_stay_in_bounds(a in 3usize..10, b in -5i64..5, c in 1u8..=4) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((1..=4).contains(&c));
        }

        #[test]
        fn flat_map_and_vec(pair in (1usize..4, 2usize..5).prop_flat_map(|(n, m)| {
            (Just(n), Just(m), crate::collection::vec(0u64..100, n * m))
        })) {
            let (n, m, v) = pair;
            prop_assert_eq!(v.len(), n * m);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn assume_skips(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut r1 = crate::test_runner::TestRng::for_test("t");
        let mut r2 = crate::test_runner::TestRng::for_test("t");
        for _ in 0..50 {
            assert_eq!((0u64..1000).sample(&mut r1), (0u64..1000).sample(&mut r2));
        }
    }
}
