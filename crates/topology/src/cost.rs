//! The communication cost model consumed by the virtual-time fabric.
//!
//! The paper's methodology rests on one quantitative observation (§IV-A): the
//! cost of a notification depends on *where* it goes. On a shared-memory node
//! all notifications contend for the same memory system and, in the worst
//! case, serialize; across nodes, messages traverse independent NICs in
//! parallel but pay a much larger base latency. We capture this with a
//! LogGP-style model, split into an intra-node and an inter-node half, plus
//! explicit *serialization gaps* for the shared resources (node memory bus,
//! per-node NIC).
//!
//! All times are in **nanoseconds** of virtual time; bandwidths are expressed
//! as per-byte costs so the fabric never divides.

use serde::{Deserialize, Serialize};

/// Per-stack software overheads, used to model the comparator systems of the
/// paper's evaluation (§V): GASNet over IB verbs has the thinnest software
/// path, UHCAF's GASNet-RDMA path adds runtime bookkeeping, CAF 2.0 adds a
/// source-to-source translation layer, and two-sided MPI adds matching/
/// rendezvous logic.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SoftwareOverheads {
    /// Extra CPU nanoseconds the initiator pays per one-sided operation.
    pub per_op_ns: u64,
    /// Extra nanoseconds per remote *wait* (flag poll / completion check).
    pub per_wait_ns: u64,
    /// Multiplier (×1000, i.e. fixed-point milli-units) applied to local
    /// compute time: 1000 = native speed. Models e.g. the GFortran backend
    /// producing slower numerical code than OpenUH in Figure 1.
    pub compute_milli: u64,
    /// The runtime does **not** exploit shared memory: even same-node
    /// one-sided operations go through the NIC loopback path (GASNet/IB
    /// conduits without an shm transport, and the pre-teams UHCAF runtime,
    /// behave this way). This is exactly the deficiency the paper's
    /// hierarchy-aware methodology removes, so 1-level baseline stacks set
    /// it and the 2-level runtime clears it.
    pub intra_via_nic: bool,
    /// Extra per-message NIC occupancy injected by this stack's software
    /// path (progress engine, active-message handling), ns. Raw IB verbs
    /// drive the HCA at its hardware message rate (0 extra); layered
    /// runtimes serialize additional per-message work on the node's
    /// injection path.
    pub nic_busy_extra_ns: u64,
    /// Additional NIC occupancy for **same-node loopback** operations (only
    /// reachable with `intra_via_nic`): the HCA loopback + active-message
    /// handler path is markedly slower than a plain RDMA post, and it is
    /// precisely this serialized cost the paper's methodology avoids by
    /// using shared memory within the node.
    pub nic_loopback_extra_ns: u64,
}

impl SoftwareOverheads {
    /// No software overhead at all (idealized hardware-direct stack).
    pub const NONE: SoftwareOverheads = SoftwareOverheads {
        per_op_ns: 0,
        per_wait_ns: 0,
        compute_milli: 1000,
        intra_via_nic: false,
        nic_busy_extra_ns: 0,
        nic_loopback_extra_ns: 0,
    };

    /// Scale a compute duration by this stack's compute efficiency.
    #[inline]
    pub fn scale_compute(&self, ns: u64) -> u64 {
        // compute_milli is a slowdown factor in milli-units: 2000 = 2x slower.
        ns.saturating_mul(self.compute_milli) / 1000
    }
}

impl Default for SoftwareOverheads {
    fn default() -> Self {
        Self::NONE
    }
}

/// LogGP-style communication parameters with a memory-hierarchy split.
///
/// For a message of `s` bytes from image `a` to image `b`:
///
/// * **intra-node** (`node(a) == node(b)`): the initiator occupies the CPU
///   for `o_intra`, the node's memory system is busy for
///   `gap_intra + s·G_intra` (this is the serialization the paper's §IV-A
///   analysis hinges on), and the payload becomes visible to `b` after an
///   additional `l_intra`.
/// * **inter-node**: the initiator occupies the CPU for `o_inter`, the
///   sender's NIC is busy for `gap_nic + s·G_inter`, the receiver's NIC is
///   busy for `gap_nic`, and the payload lands after the wire latency
///   `l_inter`.
///
/// On top of this hardware model, a [`SoftwareOverheads`] describes the
/// software stack driving it.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Intra-node (cross-socket) visibility latency, ns.
    pub l_intra_ns: u64,
    /// Intra-node initiator CPU overhead per operation, ns.
    pub o_intra_ns: u64,
    /// Node memory-system serialization gap per message, ns. This is what
    /// makes n·log n dissemination notifications expensive inside one node.
    pub gap_intra_ns: u64,
    /// Intra-node per-byte cost (1/bandwidth), picoseconds per byte.
    pub g_intra_ps_per_byte: u64,

    /// Same-socket visibility latency, ns (≤ `l_intra_ns`; equal on
    /// machines where the socket level is not modeled). Supports the
    /// paper's §VII future-work multi-level hierarchy.
    pub l_socket_ns: u64,
    /// Same-socket serialization gap per message, ns (its own resource —
    /// same-socket traffic does not occupy the node-wide bus).
    pub gap_socket_ns: u64,

    /// Cross-process same-node visibility latency through a mapped shared
    /// segment, ns (≤ `l_intra_ns`: no kernel hop, just a store + fence).
    /// This is the tier the runtime's `CAF_SOCKET_SHM` transport realizes.
    pub l_shm_ns: u64,
    /// Shared-segment serialization gap per message, ns — cheaper than
    /// `gap_intra_ns` because there is no loopback/AM handler on the path,
    /// only cache-coherency traffic.
    pub gap_shm_ns: u64,
    /// Shared-segment per-byte cost (1/bandwidth), picoseconds per byte.
    /// A mapped memcpy runs at memory speed, so ≤ `g_intra_ps_per_byte`.
    pub g_shm_ps_per_byte: u64,

    /// Inter-node wire latency, ns (≈ half RTT of a small RDMA put).
    pub l_inter_ns: u64,
    /// Inter-node initiator CPU overhead per operation, ns.
    pub o_inter_ns: u64,
    /// Per-node NIC serialization gap per message, ns (raw hardware
    /// message rate; stacks add `SoftwareOverheads::nic_busy_extra_ns`).
    pub gap_nic_ns: u64,
    /// Inter-node per-byte cost, picoseconds per byte.
    pub g_inter_ps_per_byte: u64,

    /// Cost of one local flag poll iteration, ns (progress-engine spin).
    pub poll_ns: u64,
    /// Per-core compute throughput used to convert flop counts to time,
    /// in flops per microsecond (e.g. 3400 ≙ 3.4 GFLOP/s).
    pub flops_per_us: u64,
}

impl CostParams {
    /// Payload time for `bytes` over the intra-node memory system, ns.
    #[inline]
    pub fn intra_payload_ns(&self, bytes: usize) -> u64 {
        (bytes as u64).saturating_mul(self.g_intra_ps_per_byte) / 1000
    }

    /// Payload time for `bytes` over the network, ns.
    #[inline]
    pub fn inter_payload_ns(&self, bytes: usize) -> u64 {
        (bytes as u64).saturating_mul(self.g_inter_ps_per_byte) / 1000
    }

    /// Convert a flop count into compute nanoseconds at this machine's
    /// per-core throughput.
    #[inline]
    pub fn flops_to_ns(&self, flops: u64) -> u64 {
        // flops / (flops_per_us) us = flops * 1000 / flops_per_us ns
        flops.saturating_mul(1000) / self.flops_per_us.max(1)
    }

    /// The pipeline chunk size (bytes) the large-message collectives should
    /// use on this machine: big enough that the per-chunk fixed costs
    /// (wire latency, NIC gap, flag traffic) are amortized — we target a
    /// serialization time of ~4 wire latencies per chunk — but small enough
    /// that the inter-node and intra-node stages genuinely overlap. Rounded
    /// to a power of two and clamped to [1 KiB, 256 KiB]; 16 KiB on the
    /// whale preset.
    pub fn pipeline_chunk_bytes(&self) -> usize {
        let g = self.g_inter_ps_per_byte.max(1);
        let raw = (4 * self.l_inter_ns).saturating_mul(1000) / g;
        (raw as usize).next_power_of_two().clamp(1024, 256 * 1024)
    }

    /// The payload size (bytes) above which the pipelined large-message
    /// collectives beat the latency-optimal trees on this machine: below
    /// two chunks there is nothing to pipeline, so the store-and-forward
    /// trees (whose per-hop latency is lower) win.
    pub fn pipeline_crossover_bytes(&self) -> usize {
        2 * self.pipeline_chunk_bytes()
    }

    /// A sanity-check helper: end-to-end unloaded latency of a small put.
    pub fn small_put_latency_ns(&self, same_node: bool) -> u64 {
        if same_node {
            self.o_intra_ns + self.gap_intra_ns + self.l_intra_ns
        } else {
            self.o_inter_ns + self.gap_nic_ns + self.l_inter_ns
        }
    }

    /// Payload time for `bytes` through a mapped shared segment, ns.
    /// Falls back to the generic intra-node bandwidth when the shm tier is
    /// not calibrated (0), so old parameter sets stay meaningful.
    #[inline]
    pub fn shm_payload_ns(&self, bytes: usize) -> u64 {
        let g = if self.g_shm_ps_per_byte == 0 {
            self.g_intra_ps_per_byte
        } else {
            self.g_shm_ps_per_byte
        };
        (bytes as u64).saturating_mul(g) / 1000
    }

    /// End-to-end unloaded latency of a small put through the shared-memory
    /// tier (cross-process, same node). Uncalibrated parameter sets (0)
    /// fall back to the generic intra-node tier.
    pub fn shm_put_latency_ns(&self) -> u64 {
        if self.l_shm_ns == 0 && self.gap_shm_ns == 0 {
            return self.small_put_latency_ns(true);
        }
        self.o_intra_ns + self.gap_shm_ns + self.l_shm_ns
    }
}

impl Default for CostParams {
    /// Defaults match the `whale` preset (the paper's cluster); see
    /// [`crate::presets`].
    fn default() -> Self {
        crate::presets::whale_cost()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CostParams {
        CostParams {
            l_intra_ns: 100,
            o_intra_ns: 30,
            gap_intra_ns: 50,
            g_intra_ps_per_byte: 250, // 4 GB/s
            l_socket_ns: 100,
            gap_socket_ns: 50,
            l_shm_ns: 60,
            gap_shm_ns: 25,
            g_shm_ps_per_byte: 200,
            l_inter_ns: 1800,
            o_inter_ns: 400,
            gap_nic_ns: 500,
            g_inter_ps_per_byte: 714, // 1.4 GB/s
            poll_ns: 20,
            flops_per_us: 3400,
        }
    }

    #[test]
    fn payload_costs_scale_linearly() {
        let p = params();
        assert_eq!(p.intra_payload_ns(0), 0);
        assert_eq!(p.intra_payload_ns(4000), 1000); // 4 KB at 4 GB/s = 1 us
        assert_eq!(p.inter_payload_ns(1400), 999); // ~1 us at 1.4 GB/s
    }

    #[test]
    fn inter_node_put_much_slower_than_intra() {
        let p = params();
        assert!(p.small_put_latency_ns(false) > 10 * p.small_put_latency_ns(true) / 2);
        assert_eq!(p.small_put_latency_ns(true), 180);
        assert_eq!(p.small_put_latency_ns(false), 2700);
    }

    #[test]
    fn flops_conversion() {
        let p = params();
        // 3.4 Gflop at 3.4 GFLOP/s = 1 second.
        assert_eq!(p.flops_to_ns(3_400_000_000), 1_000_000_000);
        assert_eq!(p.flops_to_ns(0), 0);
    }

    #[test]
    fn software_overhead_compute_scaling() {
        let native = SoftwareOverheads::NONE;
        assert_eq!(native.scale_compute(12345), 12345);
        let slow = SoftwareOverheads {
            per_op_ns: 0,
            per_wait_ns: 0,
            compute_milli: 2500,
            intra_via_nic: false,
            nic_busy_extra_ns: 0,
            nic_loopback_extra_ns: 0,
        };
        assert_eq!(slow.scale_compute(1000), 2500);
    }

    #[test]
    fn pipeline_chunk_is_sane() {
        let p = params();
        // 4·1800ns at 1.4 GB/s ≈ 10 KB → rounds to 16 KiB.
        assert_eq!(p.pipeline_chunk_bytes(), 16 * 1024);
        assert_eq!(p.pipeline_crossover_bytes(), 32 * 1024);
        // Degenerate parameters stay within the clamp.
        let mut fast = params();
        fast.g_inter_ps_per_byte = u64::MAX;
        assert_eq!(fast.pipeline_chunk_bytes(), 1024);
        let mut slow_wire = params();
        slow_wire.l_inter_ns = u64::MAX / 8000;
        assert_eq!(slow_wire.pipeline_chunk_bytes(), 256 * 1024);
    }

    #[test]
    fn shm_tier_is_the_cheapest_level() {
        for c in [
            params(),
            crate::presets::whale_cost(),
            crate::presets::numa_cost(),
        ] {
            assert!(
                c.shm_put_latency_ns() <= c.small_put_latency_ns(true),
                "shm tier must not be slower than the generic intra tier"
            );
            assert!(c.shm_payload_ns(4096) <= c.intra_payload_ns(4096));
        }
        // Uncalibrated sets degrade to the intra tier, not to zero cost.
        let mut flat = params();
        flat.l_shm_ns = 0;
        flat.gap_shm_ns = 0;
        flat.g_shm_ps_per_byte = 0;
        assert_eq!(flat.shm_put_latency_ns(), flat.small_put_latency_ns(true));
        assert_eq!(flat.shm_payload_ns(4000), flat.intra_payload_ns(4000));
    }

    #[test]
    fn default_params_are_whale() {
        let d = CostParams::default();
        assert_eq!(d, crate::presets::whale_cost());
        // Shape guard: the network must be at least 10x the intra latency,
        // otherwise the hierarchy-aware methodology has nothing to exploit.
        assert!(d.l_inter_ns >= 10 * d.l_intra_ns);
    }

    #[test]
    fn no_overflow_on_huge_payload() {
        let p = params();
        // Should saturate, not panic.
        let _ = p.inter_payload_ns(usize::MAX);
        let _ = SoftwareOverheads {
            per_op_ns: 0,
            per_wait_ns: 0,
            compute_milli: u64::MAX,
            intra_via_nic: false,
            nic_busy_extra_ns: 0,
            nic_loopback_extra_ns: 0,
        }
        .scale_compute(u64::MAX);
    }
}
