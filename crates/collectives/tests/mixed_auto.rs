//! Cumulative-flag-counter tests under *mixed* per-call algorithms: with
//! `Auto` and a tiny crossover, consecutive collectives on the same team
//! alternate between the latency-optimal and the pipelined/Rabenseifner
//! trees. Because broadcast/reduce waits use cumulative per-image flag
//! counters (never `episode × expected` thresholds), switching trees
//! mid-run must not desynchronize any image — every round must still
//! produce exact results, on hierarchical and flat shapes, under the
//! default schedule and under chaos schedules.

use caf_collectives::{BcastAlgo, CollectiveConfig, ReduceAlgo, SizePolicy, TeamComm};
use caf_fabric::{run_spmd, ArcFabric, ChaosConfig, SimConfig, SimFabric};
use caf_topology::{presets, HierarchyView, ImageMap, Placement, ProcId};

const ROUNDS: u64 = 6;
/// Large enough to clear the tiny crossover below and span several
/// pipeline chunks; small stays one element.
const BIG: usize = 192;

/// Crossovers far below the cost-model defaults so both sides of the
/// `Auto` split are exercised within one short run. 8-byte payloads stay
/// on the latency tree; `BIG * 8` bytes take the pipelined tree in
/// `BIG * 8 / 64 = 24` chunks.
fn tiny_policy() -> SizePolicy {
    SizePolicy {
        chunk_bytes: 64,
        bcast_crossover_bytes: 256,
        reduce_crossover_bytes: 256,
    }
}

fn fabric(nodes: usize, cores: usize, images: usize, chaos: Option<ChaosConfig>) -> ArcFabric {
    let map = ImageMap::new(presets::mini(nodes, cores), images, &Placement::Packed);
    SimFabric::new(
        map,
        SimConfig {
            chaos,
            ..SimConfig::default()
        },
    )
}

/// Alternate small and large reductions and broadcasts for several rounds
/// on one team, asserting exact values every round. Any counter
/// desynchronization between the trees shows up as a wrong value or a
/// hang (caught by the sim's deadlock detector).
fn mixed_rounds(fabric: ArcFabric, images: usize) {
    let f2 = fabric.clone();
    run_spmd(fabric, move |me| {
        let mut boot = 0u64;
        let mut comm =
            TeamComm::create_initial(f2.clone(), me, CollectiveConfig::auto(), &mut boot);
        comm.set_size_policy(tiny_policy());
        let n = images as i64;
        for round in 0..ROUNDS as i64 {
            // Small reduce: latency tree.
            let mut small = vec![me.index() as i64 + round];
            comm.co_sum(&mut small);
            assert_eq!(small[0], n * (n - 1) / 2 + n * round, "round {round}");

            // Large reduce: pipelined / Rabenseifner tree on the same
            // flags the small reduce just bumped.
            let mut big: Vec<i64> = (0..BIG as i64).map(|k| k + me.index() as i64).collect();
            comm.co_sum(&mut big);
            for (k, v) in big.iter().enumerate() {
                assert_eq!(*v, n * k as i64 + n * (n - 1) / 2, "round {round} elem {k}");
            }

            // Small broadcast with a rotating root (0-based team rank).
            let root = (round as usize) % images;
            let mut one = vec![if me.index() == root { 77 + round } else { -1 }];
            comm.co_broadcast(&mut one, root);
            assert_eq!(one[0], 77 + round, "round {round}");

            // Large broadcast from the same root: pipelined tree.
            let mut wide: Vec<i64> = if me.index() == root {
                (0..BIG as i64).map(|k| k * 3 + round).collect()
            } else {
                vec![0; BIG]
            };
            comm.co_broadcast(&mut wide, root);
            for (k, v) in wide.iter().enumerate() {
                assert_eq!(*v, k as i64 * 3 + round, "round {round} elem {k}");
            }

            comm.barrier();
        }
        f2.image_done(me);
    });
}

#[test]
fn the_tiny_policy_really_splits_the_auto_trees() {
    // Pin the premise of this file: under `tiny_policy`, the small and
    // large payloads above resolve to *different* algorithms, so the
    // mixed-rounds test genuinely switches trees mid-run.
    let map = ImageMap::new(presets::mini(2, 4), 8, &Placement::Packed);
    let members: Vec<ProcId> = (0..8).map(ProcId).collect();
    let hier = HierarchyView::build(&map, &members);
    let p = tiny_policy();
    assert_eq!(
        BcastAlgo::Auto.resolve_sized(&hier, 8, &p),
        BcastAlgo::TwoLevel
    );
    assert_eq!(
        BcastAlgo::Auto.resolve_sized(&hier, BIG * 8, &p),
        BcastAlgo::TwoLevelPipelined
    );
    assert_eq!(
        ReduceAlgo::Auto.resolve_sized(&hier, 8, &p),
        ReduceAlgo::TwoLevel
    );
    assert_eq!(
        ReduceAlgo::Auto.resolve_sized(&hier, BIG * 8, &p),
        ReduceAlgo::TwoLevelPipelined
    );
    // On a flat team (one rank per node) the large side goes to
    // Rabenseifner instead.
    let flat_map = ImageMap::new(presets::mini(8, 1), 8, &Placement::Packed);
    let flat = HierarchyView::build(&flat_map, &members);
    assert_eq!(
        ReduceAlgo::Auto.resolve_sized(&flat, BIG * 8, &p),
        ReduceAlgo::Rabenseifner
    );
}

#[test]
fn auto_switching_trees_mid_run_keeps_counters_coherent_hierarchical() {
    mixed_rounds(fabric(2, 4, 8, None), 8);
}

#[test]
fn auto_switching_trees_mid_run_keeps_counters_coherent_flat() {
    // Flat shape (one rank per node): the large-reduce side is
    // Rabenseifner, which has the most intricate flag usage
    // (reduce-scatter + allgather phases).
    mixed_rounds(fabric(8, 1, 8, None), 8);
}

#[test]
fn mixed_auto_rounds_survive_chaos_schedules() {
    // The same mixed-size sequence under adversarial schedules: jitter
    // and reordering must never surface a counter desync (the collectives
    // are fully flag-synchronized, so chaos cannot change their results).
    for seed in [3, 17, 4242] {
        mixed_rounds(fabric(2, 4, 8, Some(ChaosConfig::from_seed(seed))), 8);
    }
}
