//! Ready-made machine models and calibrated cost parameters.
//!
//! The headline preset is [`whale`], a model of the paper's evaluation
//! platform (§V): *"a cluster of 44 nodes connected via a 4xDDR InfiniBand
//! switch, with dual quad-core AMD Opteron processors running at 2.2 GHz"*.
//! Cost constants are calibrated from that hardware generation's published
//! LogGP-style measurements (see DESIGN.md §6); every experiment harness
//! prints the parameter set it ran with.

use crate::cost::{CostParams, SoftwareOverheads};
use crate::machine::MachineModel;

/// The paper's cluster: 44 nodes × 2 sockets × 4 cores (352 cores total),
/// 4xDDR InfiniBand interconnect.
pub fn whale() -> MachineModel {
    MachineModel::new("whale", 44, 2, 4)
}

/// Calibrated communication/compute parameters for [`whale`].
///
/// * intra-node: ~0.10 µs store visibility, ~0.10 µs memory-system gap per
///   contended message (this gap is what serializes same-node
///   notifications), ~4 GB/s effective memcpy bandwidth;
/// * inter-node: ~1.8 µs RDMA put latency, ~0.15 µs hardware NIC gap per
///   message (software stacks add their own per-message occupancy),
///   ~1.4 GB/s effective 4xDDR IB bandwidth;
/// * compute: 2.2 GHz Opteron ≈ 3.4 GFLOP/s/core on DGEMM-shaped code.
pub const fn whale_cost() -> CostParams {
    CostParams {
        l_intra_ns: 100,
        o_intra_ns: 30,
        gap_intra_ns: 100,
        g_intra_ps_per_byte: 250,
        // Socket level not distinguished on the whale model (the paper's
        // evaluation treats the node as one shared-memory level).
        l_socket_ns: 100,
        gap_socket_ns: 100,
        // Cross-process traffic through a mapped shared segment: no AM
        // handler, no loopback — a store-and-fence plus coherency traffic,
        // at full memcpy bandwidth (~5 GB/s on this hardware generation).
        l_shm_ns: 80,
        gap_shm_ns: 40,
        g_shm_ps_per_byte: 200,
        l_inter_ns: 1_800,
        o_inter_ns: 400,
        gap_nic_ns: 150,
        g_inter_ps_per_byte: 714,
        poll_ns: 20,
        flops_per_us: 3_400,
    }
}

/// A machine with `n` single-core nodes: the *flat hierarchy* of §V-A,
/// where every image is alone on its node and the two-level algorithm must
/// degrade to pure dissemination.
pub fn flat(n: usize) -> MachineModel {
    MachineModel::new(format!("flat{n}"), n, 1, 1)
}

/// A single shared-memory node with `cores` cores (`sockets` sockets): the
/// pure intra-node case where the linear barrier beats dissemination.
pub fn smp(sockets: usize, cores_per_socket: usize) -> MachineModel {
    MachineModel::new(
        format!("smp{}x{}", sockets, cores_per_socket),
        1,
        sockets,
        cores_per_socket,
    )
}

/// A small model handy for tests: `nodes` nodes × 1 socket × `cores` cores.
pub fn mini(nodes: usize, cores: usize) -> MachineModel {
    MachineModel::new(format!("mini{}x{}", nodes, cores), nodes, 1, cores)
}

/// A NUMA-heavy machine for the §VII multi-level ablation: `nodes` wide
/// nodes of 4 sockets × 8 cores (32 cores per node).
pub fn numa(nodes: usize) -> MachineModel {
    MachineModel::new(format!("numa{nodes}x4x8"), nodes, 4, 8)
}

/// Cost parameters with a pronounced socket level for [`numa`]: same-socket
/// notifications are ~3x cheaper than cross-socket ones, so a socket-aware
/// barrier has something to exploit.
pub const fn numa_cost() -> CostParams {
    CostParams {
        l_intra_ns: 180,
        o_intra_ns: 30,
        gap_intra_ns: 90,
        g_intra_ps_per_byte: 350,
        l_socket_ns: 60,
        gap_socket_ns: 25,
        l_shm_ns: 120,
        gap_shm_ns: 45,
        g_shm_ps_per_byte: 280,
        l_inter_ns: 1_800,
        o_inter_ns: 400,
        gap_nic_ns: 150,
        g_inter_ps_per_byte: 714,
        poll_ns: 20,
        flops_per_us: 3_400,
    }
}

/// Software-stack overheads used to model the comparator systems of §V.
/// Derived from the paper's qualitative ordering: GASNet-IB verbs is the
/// thinnest path ("TDLB … only marginally more expensive than the low-level
/// dissemination algorithm implemented directly over the IB verbs"), the
/// UHCAF GASNet-RDMA path adds runtime bookkeeping, CAF 2.0 adds a
/// source-to-source layer, and MVAPICH/Open MPI pay two-sided matching.
pub mod stacks {
    use super::SoftwareOverheads;

    /// Direct InfiniBand verbs (GASNet IB conduit): thinnest software
    /// path, but every operation — even same-node — goes through the HCA.
    pub const GASNET_IB: SoftwareOverheads = SoftwareOverheads {
        per_op_ns: 150,
        per_wait_ns: 80,
        compute_milli: 1000,
        intra_via_nic: true,
        nic_busy_extra_ns: 0,
        nic_loopback_extra_ns: 0,
    };

    /// The paper's hierarchy-aware UHCAF runtime: GASNet RDMA across
    /// nodes, genuine shared memory within a node.
    pub const UHCAF: SoftwareOverheads = SoftwareOverheads {
        per_op_ns: 450,
        per_wait_ns: 150,
        compute_milli: 1000,
        intra_via_nic: false,
        nic_busy_extra_ns: 650,
        nic_loopback_extra_ns: 0,
    };

    /// The pre-teams ("1-level") UHCAF runtime: same software thickness,
    /// but same-node images are treated like remote ones — all traffic
    /// takes the NIC loopback. This is the paper's baseline.
    pub const UHCAF_FLAT: SoftwareOverheads = SoftwareOverheads {
        per_op_ns: 450,
        per_wait_ns: 150,
        compute_milli: 1000,
        intra_via_nic: true,
        // Inter-node path identical to the 2-level runtime's; the loopback
        // AM path per same-node message is the serialization the paper's
        // 26x barrier win comes from.
        nic_busy_extra_ns: 650,
        nic_loopback_extra_ns: 1_150,
    };

    /// Rice CAF 2.0 (ROSE source-to-source) with the OpenUH backend:
    /// same compute quality, heavier runtime path.
    pub const CAF20_OPENUH: SoftwareOverheads = SoftwareOverheads {
        per_op_ns: 800,
        per_wait_ns: 250,
        compute_milli: 1_080,
        intra_via_nic: true,
        nic_busy_extra_ns: 800,
        nic_loopback_extra_ns: 1_200,
    };

    /// Rice CAF 2.0 with the GFortran 4.4 backend: Figure 1 shows its
    /// compute-bound HPL at roughly a third of UHCAF's rate (29.48 vs 95
    /// GFLOP/s at 256 images), dominated by weaker generated code.
    pub const CAF20_GFORTRAN: SoftwareOverheads = SoftwareOverheads {
        per_op_ns: 800,
        per_wait_ns: 250,
        compute_milli: 2_900,
        intra_via_nic: true,
        nic_busy_extra_ns: 800,
        nic_loopback_extra_ns: 1_200,
    };

    /// GASNet RDMA-put path without the UHCAF runtime above it (the
    /// paper's "GASNet RDMA dissemination" comparator).
    pub const GASNET_RDMA: SoftwareOverheads = SoftwareOverheads {
        per_op_ns: 280,
        per_wait_ns: 110,
        compute_milli: 1000,
        intra_via_nic: true,
        nic_busy_extra_ns: 450,
        nic_loopback_extra_ns: 450,
    };

    /// MVAPICH two-sided MPI (`MPI_Barrier` comparator): leaner than
    /// untuned Open MPI on InfiniBand.
    pub const MVAPICH: SoftwareOverheads = SoftwareOverheads {
        per_op_ns: 850,
        per_wait_ns: 300,
        compute_milli: 1_100,
        intra_via_nic: true,
        nic_busy_extra_ns: 700,
        nic_loopback_extra_ns: 500,
    };

    /// Two-sided MPI (untuned Open MPI in Figure 1): message matching and
    /// rendezvous on the critical path, GCC-compiled compute slightly below
    /// OpenUH's.
    pub const OPEN_MPI: SoftwareOverheads = SoftwareOverheads {
        per_op_ns: 1_000,
        per_wait_ns: 350,
        compute_milli: 1_150,
        intra_via_nic: true,
        nic_busy_extra_ns: 800,
        nic_loopback_extra_ns: 700,
    };

    /// Open MPI with the `hierarch`/`sm` modules enabled: hierarchy-aware
    /// collectives over shared memory within the node.
    pub const OPEN_MPI_HIER: SoftwareOverheads = SoftwareOverheads {
        per_op_ns: 1_000,
        per_wait_ns: 350,
        compute_milli: 1_150,
        intra_via_nic: false,
        nic_busy_extra_ns: 800,
        nic_loopback_extra_ns: 0,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whale_matches_paper_hardware() {
        let m = whale();
        assert_eq!(m.nodes, 44);
        assert_eq!(m.cores_per_node(), 8);
        assert_eq!(m.total_cores(), 352);
    }

    #[test]
    fn whale_cost_hierarchy_gap_is_an_order_of_magnitude() {
        let c = whale_cost();
        assert!(c.l_inter_ns / c.l_intra_ns >= 10);
        assert!(c.gap_nic_ns >= c.gap_intra_ns);
    }

    #[test]
    fn flat_machines_have_one_core_per_node() {
        let m = flat(16);
        assert_eq!(m.nodes, 16);
        assert_eq!(m.cores_per_node(), 1);
    }

    #[test]
    fn smp_is_one_node() {
        let m = smp(2, 8);
        assert_eq!(m.nodes, 1);
        assert_eq!(m.cores_per_node(), 16);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // the constants ARE the test
    fn stack_overheads_ordered_by_software_thickness() {
        use stacks::*;
        assert!(GASNET_IB.per_op_ns < UHCAF.per_op_ns);
        assert!(UHCAF.per_op_ns < CAF20_OPENUH.per_op_ns);
        assert!(CAF20_OPENUH.per_op_ns <= CAF20_GFORTRAN.per_op_ns);
        assert!(CAF20_GFORTRAN.per_op_ns <= OPEN_MPI.per_op_ns);
        // GFortran backend computes markedly slower — the Figure 1 gap.
        assert!(CAF20_GFORTRAN.compute_milli > 2 * UHCAF.compute_milli);
    }
}
