//! The `Team` value — the runtime face of the paper's `team_type`.
//!
//! A `Team` wraps a [`TeamComm`] (the mapping array, hierarchy view, and
//! synchronization resources) and carries the Fortran-level identity: the
//! `team_number` passed to `form team` and the nesting depth. As in
//! Fortran, each image holds its **own** team value; what is shared is the
//! underlying communication structure, addressed symmetrically through
//! per-member resource tables.

use caf_collectives::TeamComm;

/// The initial team's number, as in Fortran 2015 (`team_number()` returns
/// −1 when the current team is the initial team).
pub const INITIAL_TEAM_NUMBER: i64 = -1;

/// One image's handle to a team. Obtain via `ImageCtx::form_team`; enter
/// with `ImageCtx::change_team`; query with `ImageCtx::this_image` etc.
pub struct Team {
    pub(crate) comm: TeamComm,
    pub(crate) number: i64,
    pub(crate) depth: usize,
}

impl Team {
    /// The team number given at formation (−1 for the initial team) — the
    /// Fortran `team_number()` intrinsic.
    pub fn team_number(&self) -> i64 {
        self.number
    }

    /// Nesting depth: 0 for the initial team, parent depth + 1 otherwise.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of images in this team (`num_images(team=...)`).
    pub fn num_images(&self) -> usize {
        self.comm.size()
    }

    /// This image's 1-based index within the team (`this_image(team=...)`).
    pub fn this_image(&self) -> usize {
        self.comm.rank() + 1
    }

    /// The underlying communication structure (algorithm queries, direct
    /// collective calls, statistics).
    pub fn comm(&self) -> &TeamComm {
        &self.comm
    }

    /// Mutable access to the communication structure, for calling
    /// collectives on a team without entering it (e.g. `sync team`).
    pub fn comm_mut(&mut self) -> &mut TeamComm {
        &mut self.comm
    }
}

impl std::fmt::Debug for Team {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Team")
            .field("number", &self.number)
            .field("depth", &self.depth)
            .field("size", &self.comm.size())
            .field("this_image", &self.this_image())
            .finish()
    }
}
