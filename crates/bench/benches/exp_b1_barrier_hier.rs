//! EXP-B1 — barrier latency with dense nodes (8 images/node), §V-A.
//!
//! Paper claims reproduced here:
//! * TDLB yields **up to 26×** over the pure dissemination barrier that
//!   UHCAF previously used (abstract, §I, §VII);
//! * TDLB "is only **marginally more expensive** than the low-level
//!   dissemination algorithm implemented directly over the IB verbs"
//!   (§V-A) — compare the `UHCAF-TDLB` and `GASNet-IB` columns.
//!
//! Rows sweep the team size at 8 images per node on the modeled 44-node
//! cluster; entries are modeled microseconds per barrier.

use caf_bench::{barrier_comparators, print_cost_preamble, scaled};
use caf_microbench::{barrier_latency, report, trace_table, MicroConfig, Table};
use caf_trace::{episode_window, extract, EventKind, Tracer};

/// When `CAF_TRACE_DIR` names a directory, rerun a small TDLB sweep with
/// capture on, dump the Chrome trace JSON there, and print the per-phase
/// latency table plus the final episode's critical path (see
/// EXPERIMENTS.md, "Reading a trace").
fn dump_trace(dir: &str, n: usize) {
    let tracer = Tracer::for_images(n);
    let mut mc = MicroConfig::whale(n, 8).with_tracer(tracer.clone());
    mc.warmup = 1;
    mc.iters = 4;
    barrier_latency(&mc);
    let events = tracer.events();
    if events.is_empty() {
        eprintln!(
            "CAF_TRACE_DIR is set but no events were captured; rebuild with \
             `--features trace` to compile-in capture"
        );
        return;
    }
    std::fs::create_dir_all(dir).expect("create CAF_TRACE_DIR");
    let path = std::path::Path::new(dir).join(format!("exp_b1_tdlb_{n}images.trace.json"));
    let map = caf_topology::ImageMap::new(
        caf_topology::presets::whale(),
        n,
        &caf_topology::Placement::Block { per_node: 8 },
    );
    let json =
        caf_trace::chrome_trace_json(&events, |i| map.node_of(caf_topology::ProcId(i)).index());
    std::fs::write(&path, json).expect("write trace JSON");
    println!(
        "\nwrote Chrome trace ({} events) to {} (open in Perfetto / chrome://tracing)",
        events.len(),
        path.display()
    );
    trace_table("EXP-B1: traced barrier phase latencies", &events).print();
    let last_epoch = events
        .iter()
        .filter(|e| e.kind == EventKind::Barrier)
        .map(|e| e.c)
        .max()
        .unwrap_or(0);
    if let Some(cp) =
        episode_window(&events, EventKind::Barrier, last_epoch).and_then(|w| extract(&events, w))
    {
        print!("{}", cp.render());
    }
}

fn main() {
    print_cost_preamble("EXP-B1");
    let comps = barrier_comparators();
    let sizes: Vec<usize> = if caf_bench::quick_mode() {
        vec![16, 64]
    } else {
        vec![8, 16, 32, 64, 128, 256, 352]
    };
    let iters = scaled(10, 3);

    let mut headers: Vec<&str> = vec!["images(nodes)"];
    headers.extend(comps.iter().map(|c| c.name));
    headers.push("TDLB-speedup");
    let mut table = Table::new(
        "EXP-B1: barrier latency, 8 images/node (modeled us)",
        &headers,
    );

    let mut max_speedup: f64 = 0.0;
    let mut worst_vs_ib: f64 = 0.0;
    for &n in &sizes {
        let mut row = vec![format!("{}({})", n, n / 8)];
        let mut tdlb = f64::NAN;
        let mut uhcaf_dissem = f64::NAN;
        let mut gasnet_ib = f64::NAN;
        for c in &comps {
            let mut mc = MicroConfig::whale(n, 8)
                .with_stack(c.stack)
                .with_collectives(c.collectives);
            mc.iters = iters;
            let stats = barrier_latency(&mc);
            row.push(report::us(stats.ns_per_op));
            match c.name {
                "UHCAF-TDLB" => tdlb = stats.ns_per_op,
                "UHCAF-dissem" => uhcaf_dissem = stats.ns_per_op,
                "GASNet-IB" => gasnet_ib = stats.ns_per_op,
                _ => {}
            }
        }
        row.push(report::speedup(uhcaf_dissem, tdlb));
        max_speedup = max_speedup.max(uhcaf_dissem / tdlb);
        worst_vs_ib = worst_vs_ib.max(tdlb / gasnet_ib);
        table.row(&row);
    }
    table.note(format!(
        "measured max TDLB speedup over UHCAF dissemination: {max_speedup:.1}x \
         (paper: up to 26x)"
    ));
    table.note(format!(
        "TDLB vs GASNet-IB dissemination worst ratio: {worst_vs_ib:.2}x \
         (paper: 'only marginally more expensive')"
    ));
    table.print();

    if let Ok(dir) = std::env::var("CAF_TRACE_DIR") {
        dump_trace(&dir, 32);
    }
}
