//! The fixed-size trace event: one cache line of plain-old-data words so
//! recording is a handful of relaxed stores into a ring slot.
//!
//! Field meaning is per kind (`a`–`d` are overloaded):
//!
//! | kind | `a` | `b` | `c` | `d` |
//! |---|---|---|---|---|
//! | `Put` / `Get` | peer image | bytes | queue ns | service ns |
//! | `PutNb` | peer image | bytes | queue ns | service ns |
//! | `AmoFetchAdd` / `AmoCas` | peer image | byte offset | queue ns | service ns |
//! | `FlagAdd` | dst image | flag id | delta | modeled arrival t |
//! | `FlagWait` | flag id | target value | — | — |
//! | `FlagDeliver` | src image | flag id | post t | dst image |
//! | `Quiet` / `Compute` | — | — | — | — |
//! | `Barrier` | algo code | team tag | epoch | — |
//! | `BarrierRound` | round k | partner image | epoch | — |
//! | `TdlbGather` / `TdlbRelease` | slave count | team tag | epoch | — |
//! | `TdlbDissem` | leader count | team tag | epoch | — |
//! | `Bcast` / `Reduce` | algo code | team tag | epoch | bytes |
//! | `BcastStage` / `ReduceStage` | stage index | team tag | epoch | — |
//! | `FormTeam` | team tag | size | color | — |
//! | `ChangeTeam` / `EndTeam` | team tag | — | — | — |
//! | `SyncImages` | partner count | — | — | — |
//! | `SyncMemory` | — | — | — | — |
//! | `EventPost` | dst image | event index | — | — |
//! | `EventWait` | event index | until count | — | — |
//!
//! Timestamps are whatever the owning fabric's clock produces: virtual
//! nanoseconds under `SimFabric`, wall nanoseconds under `ThreadFabric`.

/// Words per encoded event (64 bytes).
pub const EVENT_WORDS: usize = 8;

/// Image index stored for simulator-side (system) events, e.g.
/// [`EventKind::FlagDeliver`] records made while applying the event queue.
pub const SYSTEM_IMG: u32 = u32::MAX;

/// `flags` bit: the operation stayed within one node.
pub const FLAG_INTRA: u32 = 1 << 0;

/// `flags` bit: the operation targeted the issuing image itself.
pub const FLAG_SELF: u32 = 1 << 1;

/// `flags` bits 2–3: hierarchy level of a collective phase span.
pub const LEVEL_SHIFT: u32 = 2;
const LEVEL_MASK: u32 = 0b11 << LEVEL_SHIFT;

/// Hierarchy level a collective phase span belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// The whole operation, across every level.
    Whole,
    /// Intra-node (shared-memory) portion.
    Intra,
    /// Inter-node (network) portion.
    Inter,
}

impl Level {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Level::Whole => "whole",
            Level::Intra => "intra",
            Level::Inter => "inter",
        }
    }
}

/// What a trace event records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u32)]
pub enum EventKind {
    /// One-sided remote write.
    Put = 1,
    /// One-sided remote read.
    Get = 2,
    /// Atomic fetch-and-add on a remote segment word.
    AmoFetchAdd = 3,
    /// Atomic compare-and-swap on a remote segment word.
    AmoCas = 4,
    /// Notification: add to a (possibly remote) sync flag.
    FlagAdd = 5,
    /// Blocking wait until a local flag reaches a target.
    FlagWait = 6,
    /// Simulator-side: the instant a flag add landed at its target.
    FlagDeliver = 7,
    /// Completion fence for outstanding one-sided ops.
    Quiet = 8,
    /// Modeled local computation.
    Compute = 9,
    /// Nonblocking one-sided remote write (injection span; completion is
    /// observed through `quiet`/`put_wait`).
    PutNb = 10,
    /// A whole barrier episode.
    Barrier = 16,
    /// One dissemination round inside a barrier.
    BarrierRound = 17,
    /// TDLB phase 1: leader collecting its node's slave notifications.
    TdlbGather = 18,
    /// TDLB phase 2: dissemination among node leaders.
    TdlbDissem = 19,
    /// TDLB phase 3: leader releasing its node's slaves.
    TdlbRelease = 20,
    /// A whole broadcast episode.
    Bcast = 21,
    /// One stage of a two-level broadcast.
    BcastStage = 22,
    /// A whole allreduce episode.
    Reduce = 23,
    /// One stage of a two-level reduction.
    ReduceStage = 24,
    /// `form_team`: collective subteam construction.
    FormTeam = 32,
    /// `change_team`: entering a team's execution scope.
    ChangeTeam = 33,
    /// `end_team`: leaving a team's execution scope.
    EndTeam = 34,
    /// `sync images`: pairwise image synchronization.
    SyncImages = 35,
    /// `sync memory`: local completion fence.
    SyncMemory = 36,
    /// `event post` on a (possibly remote) event variable.
    EventPost = 37,
    /// `event wait` on a local event variable.
    EventWait = 38,
}

impl EventKind {
    /// Decode from the stored discriminant.
    pub fn from_u32(v: u32) -> Option<Self> {
        Some(match v {
            1 => Self::Put,
            2 => Self::Get,
            3 => Self::AmoFetchAdd,
            4 => Self::AmoCas,
            5 => Self::FlagAdd,
            6 => Self::FlagWait,
            7 => Self::FlagDeliver,
            8 => Self::Quiet,
            9 => Self::Compute,
            10 => Self::PutNb,
            16 => Self::Barrier,
            17 => Self::BarrierRound,
            18 => Self::TdlbGather,
            19 => Self::TdlbDissem,
            20 => Self::TdlbRelease,
            21 => Self::Bcast,
            22 => Self::BcastStage,
            23 => Self::Reduce,
            24 => Self::ReduceStage,
            32 => Self::FormTeam,
            33 => Self::ChangeTeam,
            34 => Self::EndTeam,
            35 => Self::SyncImages,
            36 => Self::SyncMemory,
            37 => Self::EventPost,
            38 => Self::EventWait,
            _ => return None,
        })
    }

    /// Stable display name (also the Chrome trace event name).
    pub fn name(self) -> &'static str {
        match self {
            Self::Put => "put",
            Self::Get => "get",
            Self::AmoFetchAdd => "amo_fadd",
            Self::AmoCas => "amo_cas",
            Self::FlagAdd => "flag_add",
            Self::FlagWait => "flag_wait",
            Self::FlagDeliver => "flag_deliver",
            Self::Quiet => "quiet",
            Self::Compute => "compute",
            Self::PutNb => "put_nb",
            Self::Barrier => "barrier",
            Self::BarrierRound => "barrier_round",
            Self::TdlbGather => "tdlb_gather",
            Self::TdlbDissem => "tdlb_dissem",
            Self::TdlbRelease => "tdlb_release",
            Self::Bcast => "bcast",
            Self::BcastStage => "bcast_stage",
            Self::Reduce => "reduce",
            Self::ReduceStage => "reduce_stage",
            Self::FormTeam => "form_team",
            Self::ChangeTeam => "change_team",
            Self::EndTeam => "end_team",
            Self::SyncImages => "sync_images",
            Self::SyncMemory => "sync_memory",
            Self::EventPost => "event_post",
            Self::EventWait => "event_wait",
        }
    }
}

/// One trace record. See the module docs for per-kind field meaning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Start timestamp (fabric clock, nanoseconds).
    pub t_ns: u64,
    /// Span duration; 0 for instant events.
    pub dur_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// `FLAG_*` bits plus the encoded [`Level`].
    pub flags: u32,
    /// Recording image, or [`SYSTEM_IMG`] for simulator-side records.
    pub img: u32,
    /// Per-kind operand (see module docs).
    pub a: u64,
    /// Per-kind operand.
    pub b: u64,
    /// Per-kind operand.
    pub c: u64,
    /// Per-kind operand.
    pub d: u64,
}

impl Event {
    /// An instant event at `t_ns` with zeroed operands.
    pub fn instant(kind: EventKind, t_ns: u64) -> Self {
        Self {
            t_ns,
            dur_ns: 0,
            kind,
            flags: 0,
            img: 0,
            a: 0,
            b: 0,
            c: 0,
            d: 0,
        }
    }

    /// A span covering `[t_ns, t_ns + dur_ns)`.
    pub fn span(kind: EventKind, t_ns: u64, dur_ns: u64) -> Self {
        Self {
            dur_ns,
            ..Self::instant(kind, t_ns)
        }
    }

    /// Set operand `a`.
    pub fn a(mut self, v: u64) -> Self {
        self.a = v;
        self
    }

    /// Set operand `b`.
    pub fn b(mut self, v: u64) -> Self {
        self.b = v;
        self
    }

    /// Set operand `c`.
    pub fn c(mut self, v: u64) -> Self {
        self.c = v;
        self
    }

    /// Set operand `d`.
    pub fn d(mut self, v: u64) -> Self {
        self.d = v;
        self
    }

    /// Mark the op intra-node (`true`) or inter-node (`false`).
    pub fn intra(mut self, intra: bool) -> Self {
        if intra {
            self.flags |= FLAG_INTRA;
        }
        self
    }

    /// Mark the op as targeting the issuing image itself.
    pub fn self_target(mut self) -> Self {
        self.flags |= FLAG_SELF | FLAG_INTRA;
        self
    }

    /// Tag the hierarchy level of a collective phase.
    pub fn level(mut self, level: Level) -> Self {
        self.flags = (self.flags & !LEVEL_MASK)
            | (match level {
                Level::Whole => 0,
                Level::Intra => 1,
                Level::Inter => 2,
            } << LEVEL_SHIFT);
        self
    }

    /// The op stayed within one node.
    pub fn is_intra(&self) -> bool {
        self.flags & FLAG_INTRA != 0
    }

    /// The op targeted the issuing image.
    pub fn is_self(&self) -> bool {
        self.flags & FLAG_SELF != 0
    }

    /// Hierarchy level tag of a collective phase span.
    pub fn hierarchy_level(&self) -> Level {
        match (self.flags & LEVEL_MASK) >> LEVEL_SHIFT {
            1 => Level::Intra,
            2 => Level::Inter,
            _ => Level::Whole,
        }
    }

    /// End timestamp (`t_ns + dur_ns`).
    pub fn end_ns(&self) -> u64 {
        self.t_ns + self.dur_ns
    }

    /// Encode into ring-slot words.
    pub fn encode(&self) -> [u64; EVENT_WORDS] {
        [
            self.t_ns,
            self.dur_ns,
            (self.kind as u64) | ((self.flags as u64) << 32),
            self.img as u64,
            self.a,
            self.b,
            self.c,
            self.d,
        ]
    }

    /// Decode from ring-slot words; `None` for an unknown kind word
    /// (e.g. a torn or never-written slot).
    pub fn decode(w: &[u64; EVENT_WORDS]) -> Option<Self> {
        let kind = EventKind::from_u32((w[2] & 0xFFFF_FFFF) as u32)?;
        Some(Self {
            t_ns: w[0],
            dur_ns: w[1],
            kind,
            flags: (w[2] >> 32) as u32,
            img: w[3] as u32,
            a: w[4],
            b: w[5],
            c: w[6],
            d: w[7],
        })
    }

    /// Compact single-line rendering for diagnostics (deadlock reports).
    pub fn render(&self) -> String {
        let locality = if self.is_self() {
            " self"
        } else if self.is_intra() {
            " intra"
        } else {
            ""
        };
        let dur = if self.dur_ns > 0 {
            format!(" dur={}ns", self.dur_ns)
        } else {
            String::new()
        };
        format!(
            "t={}ns {}{}{} a={} b={} c={} d={}",
            self.t_ns,
            self.kind.name(),
            locality,
            dur,
            self.a,
            self.b,
            self.c,
            self.d
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let ev = Event::span(EventKind::Put, 123, 456)
            .a(7)
            .b(4096)
            .c(11)
            .d(22)
            .intra(true);
        let mut ev = ev;
        ev.img = 3;
        assert_eq!(Event::decode(&ev.encode()), Some(ev));
    }

    #[test]
    fn unknown_kind_decodes_to_none() {
        let w = [0u64, 0, 999, 0, 0, 0, 0, 0];
        assert_eq!(Event::decode(&w), None);
    }

    #[test]
    fn level_tagging_roundtrip() {
        for level in [Level::Whole, Level::Intra, Level::Inter] {
            let ev = Event::instant(EventKind::TdlbDissem, 0).level(level);
            assert_eq!(ev.hierarchy_level(), level);
        }
        // Level bits do not clobber locality bits.
        let ev = Event::instant(EventKind::TdlbGather, 0)
            .intra(true)
            .level(Level::Intra);
        assert!(ev.is_intra());
        assert_eq!(ev.hierarchy_level(), Level::Intra);
    }
}
