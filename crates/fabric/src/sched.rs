//! An indexed binary min-heap over alive images, keyed `(time, prio, rank)`.
//!
//! The conservative simulator needs three queries on every scheduling
//! decision: the argmin image (`next_eligible`), whether a given image *is*
//! that argmin (`may_commit`), and the minimal alive clock (the event-drain
//! bound). The pre-scale core answered all three with O(n) scans per
//! commit — fine at whale's 352 images, ruinous at a million. This index
//! answers all three in O(1) (peeks) and pays O(log n) only when a key
//! actually changes: clock advance, block, wake, death, or a chaos
//! priority reshuffle.
//!
//! The heap stores image ranks; `pos[i]` is the back-pointer that makes
//! targeted `update`/`remove` possible. Keys are `(time, prio)` with the
//! rank itself as the final tie-break, so the argmin is *exactly* the
//! image `min_by_key` would have picked on a linear scan (lowest rank wins
//! ties) — the property the bit-for-bit oracle guarantee rests on.

/// Sentinel for "image not in the heap" (Blocked or Done).
const ABSENT: u32 = u32::MAX;

/// Positional min-heap over image ranks; see the module docs.
#[derive(Debug)]
pub(crate) struct SchedIndex {
    /// Heap of image ranks, ordered by `(keys[rank], rank)`.
    heap: Vec<u32>,
    /// `pos[rank]` = index into `heap`, or [`ABSENT`].
    pos: Vec<u32>,
    /// `(time, prio)` per image — the first two key components.
    keys: Vec<(u64, u64)>,
}

impl SchedIndex {
    /// An empty index with capacity for images `0..n`.
    pub(crate) fn new(n: usize) -> Self {
        Self {
            heap: Vec::with_capacity(n),
            pos: vec![ABSENT; n],
            keys: vec![(0, 0); n],
        }
    }

    /// Number of images currently in the index (= alive images).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no image is alive.
    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Is image `i` present (alive)?
    pub(crate) fn contains(&self, i: usize) -> bool {
        self.pos[i] != ABSENT
    }

    /// The argmin image by `(time, prio, rank)`, in O(1).
    pub(crate) fn peek(&self) -> Option<usize> {
        self.heap.first().map(|&i| i as usize)
    }

    /// The minimal alive clock, in O(1). The heap root minimizes
    /// `(time, prio, rank)` lexicographically, so its `time` component is
    /// the global minimum over alive images.
    pub(crate) fn peek_time(&self) -> Option<u64> {
        self.heap.first().map(|&i| self.keys[i as usize].0)
    }

    /// Insert image `i` with key `(time, prio)`. Must not already be
    /// present.
    pub(crate) fn insert(&mut self, i: usize, key: (u64, u64)) {
        debug_assert_eq!(self.pos[i], ABSENT, "image {i} already in SchedIndex");
        self.keys[i] = key;
        let slot = self.heap.len();
        self.heap.push(i as u32);
        self.pos[i] = slot as u32;
        self.sift_up(slot);
    }

    /// Remove image `i` (block or death). No-op when absent.
    pub(crate) fn remove(&mut self, i: usize) {
        let slot = self.pos[i];
        if slot == ABSENT {
            return;
        }
        let slot = slot as usize;
        self.pos[i] = ABSENT;
        let last = self.heap.pop().expect("non-empty: contains i");
        if slot < self.heap.len() {
            self.heap[slot] = last;
            self.pos[last as usize] = slot as u32;
            // The moved element may need to go either way.
            self.sift_down(slot);
            self.sift_up(self.pos[last as usize] as usize);
        }
    }

    /// Re-key image `i` (clock advance). Must be present.
    pub(crate) fn update(&mut self, i: usize, key: (u64, u64)) {
        debug_assert_ne!(self.pos[i], ABSENT, "image {i} not in SchedIndex");
        self.keys[i] = key;
        let slot = self.pos[i] as usize;
        self.sift_down(slot);
        self.sift_up(self.pos[i] as usize);
    }

    /// Drop every member (heal rebuild).
    pub(crate) fn clear(&mut self) {
        for &i in &self.heap {
            self.pos[i as usize] = ABSENT;
        }
        self.heap.clear();
    }

    /// Re-key every member at once (chaos priority reshuffle) and restore
    /// the heap property bottom-up in O(n).
    pub(crate) fn refresh(&mut self, key_of: impl Fn(usize) -> (u64, u64)) {
        for slot in 0..self.heap.len() {
            let i = self.heap[slot] as usize;
            self.keys[i] = key_of(i);
        }
        for slot in (0..self.heap.len() / 2).rev() {
            self.sift_down(slot);
        }
    }

    #[inline]
    fn less(&self, a: u32, b: u32) -> bool {
        let (ta, pa) = self.keys[a as usize];
        let (tb, pb) = self.keys[b as usize];
        (ta, pa, a) < (tb, pb, b)
    }

    fn sift_up(&mut self, mut slot: usize) {
        while slot > 0 {
            let parent = (slot - 1) / 2;
            if self.less(self.heap[slot], self.heap[parent]) {
                self.heap.swap(slot, parent);
                self.pos[self.heap[slot] as usize] = slot as u32;
                self.pos[self.heap[parent] as usize] = parent as u32;
                slot = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut slot: usize) {
        let len = self.heap.len();
        loop {
            let l = 2 * slot + 1;
            if l >= len {
                break;
            }
            let r = l + 1;
            let mut best = l;
            if r < len && self.less(self.heap[r], self.heap[l]) {
                best = r;
            }
            if self.less(self.heap[best], self.heap[slot]) {
                self.heap.swap(slot, best);
                self.pos[self.heap[slot] as usize] = slot as u32;
                self.pos[self.heap[best] as usize] = best as u32;
                slot = best;
            } else {
                break;
            }
        }
    }

    /// Debug invariant: every heap slot's back-pointer is consistent and
    /// every parent precedes its children.
    #[cfg(test)]
    fn check_invariants(&self) {
        for (slot, &i) in self.heap.iter().enumerate() {
            assert_eq!(self.pos[i as usize] as usize, slot);
            if slot > 0 {
                let parent = (slot - 1) / 2;
                assert!(
                    !self.less(i, self.heap[parent]),
                    "heap property violated at slot {slot}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force reference: argmin by `(time, prio, rank)` over members.
    fn ref_argmin(members: &[(usize, (u64, u64))]) -> Option<usize> {
        members
            .iter()
            .min_by_key(|(i, (t, p))| (*t, *p, *i))
            .map(|(i, _)| *i)
    }

    #[test]
    fn peek_matches_linear_scan_under_random_churn() {
        let n = 64;
        let mut idx = SchedIndex::new(n);
        let mut members: Vec<(usize, (u64, u64))> = Vec::new();
        // Deterministic splitmix64 churn.
        let mut s: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut rnd = || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for step in 0..4000 {
            let i = (rnd() % n as u64) as usize;
            match rnd() % 3 {
                0 => {
                    if !idx.contains(i) {
                        let key = (rnd() % 100, rnd() % 4);
                        idx.insert(i, key);
                        members.push((i, key));
                    }
                }
                1 => {
                    idx.remove(i);
                    members.retain(|(j, _)| *j != i);
                }
                _ => {
                    if idx.contains(i) {
                        let key = (rnd() % 100, rnd() % 4);
                        idx.update(i, key);
                        for m in members.iter_mut() {
                            if m.0 == i {
                                m.1 = key;
                            }
                        }
                    }
                }
            }
            idx.check_invariants();
            assert_eq!(idx.peek(), ref_argmin(&members), "step {step}");
            assert_eq!(
                idx.peek_time(),
                members.iter().map(|(_, (t, _))| *t).min(),
                "step {step}"
            );
            assert_eq!(idx.len(), members.len());
        }
    }

    #[test]
    fn refresh_rekeys_everything() {
        let n = 16;
        let mut idx = SchedIndex::new(n);
        for i in 0..n {
            idx.insert(i, (i as u64, 0));
        }
        assert_eq!(idx.peek(), Some(0));
        // Invert the ordering wholesale.
        idx.refresh(|i| ((n - i) as u64, 0));
        idx.check_invariants();
        assert_eq!(idx.peek(), Some(n - 1));
        assert_eq!(idx.peek_time(), Some(1));
    }

    #[test]
    fn rank_breaks_exact_ties_lowest_first() {
        let mut idx = SchedIndex::new(8);
        for i in [5usize, 2, 7, 3] {
            idx.insert(i, (42, 1));
        }
        assert_eq!(idx.peek(), Some(2), "lowest rank wins an exact tie");
        idx.remove(2);
        assert_eq!(idx.peek(), Some(3));
    }

    #[test]
    fn clear_empties_and_allows_reinsert() {
        let mut idx = SchedIndex::new(4);
        for i in 0..4 {
            idx.insert(i, (10 - i as u64, 0));
        }
        idx.clear();
        assert!(idx.is_empty());
        assert_eq!(idx.peek(), None);
        idx.insert(2, (1, 0));
        assert_eq!(idx.peek(), Some(2));
    }
}
