//! The dense kernels HPL needs, on raw column-major buffers: `dgemm`
//! (C −= A·B), `dtrsm` (unit-lower triangular solve), `dscal`/`dger`-style
//! panel updates, and `idamax`. Written for clarity with slice-based inner
//! loops the compiler vectorizes; flop counts are reported by the callers
//! for the simulator's time model.

/// `C[0..m, 0..n] -= A[0..m, 0..k] * B[0..k, 0..n]` on column-major
/// buffers with leading dimensions `lda`, `ldb`, `ldc`.
#[allow(clippy::too_many_arguments)]
pub fn dgemm_minus(
    m: usize,
    n: usize,
    k: usize,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    c: &mut [f64],
    ldc: usize,
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    assert!(lda >= m && ldc >= m && ldb >= k, "leading dims too small");
    for j in 0..n {
        let cj = &mut c[j * ldc..j * ldc + m];
        for l in 0..k {
            let blj = b[l + j * ldb];
            if blj == 0.0 {
                continue;
            }
            let al = &a[l * lda..l * lda + m];
            for i in 0..m {
                cj[i] -= al[i] * blj;
            }
        }
    }
}

/// Solve `L X = B` in place where `L` is `nb × nb` **unit lower**
/// triangular (column-major, leading dim `ldl`) and `B` is `nb × n`
/// (leading dim `ldb`). On return `B` holds `X` — the `U12` block step of
/// right-looking LU.
pub fn dtrsm_lower_unit(nb: usize, n: usize, l: &[f64], ldl: usize, b: &mut [f64], ldb: usize) {
    if nb == 0 || n == 0 {
        return;
    }
    assert!(ldl >= nb && ldb >= nb, "leading dims too small");
    for j in 0..n {
        for i in 0..nb {
            let xi = b[i + j * ldb];
            if xi == 0.0 {
                continue;
            }
            // Eliminate x_i from the rows below.
            let li = &l[i * ldl..i * ldl + nb];
            let bj = &mut b[j * ldb..j * ldb + nb];
            for r in i + 1..nb {
                bj[r] -= li[r] * xi;
            }
        }
    }
}

/// Index of the element with the largest absolute value (first on ties).
pub fn idamax(x: &[f64]) -> Option<usize> {
    if x.is_empty() {
        return None;
    }
    let mut best = 0;
    let mut bv = x[0].abs();
    for (i, &v) in x.iter().enumerate().skip(1) {
        if v.abs() > bv {
            bv = v.abs();
            best = i;
        }
    }
    Some(best)
}

/// Scale `x *= alpha`.
pub fn dscal(alpha: f64, x: &mut [f64]) {
    for v in x {
        *v *= alpha;
    }
}

/// Rank-1 update `A[0..m, 0..n] -= x[0..m] * y[0..n]^T` (column-major,
/// leading dim `lda`) — the in-panel trailing update.
pub fn dger_minus(m: usize, n: usize, x: &[f64], y: &[f64], a: &mut [f64], lda: usize) {
    if m == 0 || n == 0 {
        return;
    }
    assert!(lda >= m && x.len() >= m && y.len() >= n);
    for j in 0..n {
        let yj = y[j];
        if yj == 0.0 {
            continue;
        }
        let aj = &mut a[j * lda..j * lda + m];
        for i in 0..m {
            aj[i] -= x[i] * yj;
        }
    }
}

/// Flops of a `dgemm_minus` call (multiply + subtract).
pub fn dgemm_flops(m: usize, n: usize, k: usize) -> u64 {
    2 * (m as u64) * (n as u64) * (k as u64)
}

/// Flops of a `dtrsm_lower_unit` call.
pub fn dtrsm_flops(nb: usize, n: usize) -> u64 {
    (nb as u64) * (nb as u64) * (n as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn naive_mul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for l in 0..a.cols() {
                    s += a.get(i, l) * b.get(l, j);
                }
                c.set(i, j, s);
            }
        }
        c
    }

    #[test]
    fn dgemm_matches_naive() {
        let a = crate::matrix::hpl_matrix(1, 7);
        let b = crate::matrix::hpl_matrix(2, 7);
        let mut c = crate::matrix::hpl_matrix(3, 7);
        let expect = {
            let mut e = c.clone();
            let p = naive_mul(&a, &b);
            for j in 0..7 {
                for i in 0..7 {
                    e.set(i, j, e.get(i, j) - p.get(i, j));
                }
            }
            e
        };
        dgemm_minus(
            7,
            7,
            7,
            a.as_slice(),
            7,
            b.as_slice(),
            7,
            c.as_mut_slice(),
            7,
        );
        for j in 0..7 {
            for i in 0..7 {
                assert!((c.get(i, j) - expect.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn dgemm_rectangular_with_ld() {
        // 2x3 -= (2x1)*(1x3) inside larger buffers.
        let a = vec![1.0, 2.0, 99.0, 99.0]; // lda=4, col0 = [1,2]
        let b = vec![10.0, 99.0, 20.0, 99.0, 30.0, 99.0]; // ldb=2, row0 = 10,20,30
        let mut c = vec![0.0; 12]; // ldc=4
        dgemm_minus(2, 3, 1, &a, 4, &b, 2, &mut c, 4);
        assert_eq!(c[0], -10.0);
        assert_eq!(c[1], -20.0);
        assert_eq!(c[4], -20.0);
        assert_eq!(c[5], -40.0);
        assert_eq!(c[8], -30.0);
        assert_eq!(c[9], -60.0);
        assert_eq!(c[2], 0.0, "rows beyond m untouched");
    }

    #[test]
    fn dtrsm_solves_unit_lower_system() {
        // L = [[1,0],[0.5,1]]; B = L * X with X = [[2],[3]] => B = [[2],[4]].
        let l = vec![1.0, 0.5, 0.0, 1.0];
        let mut b = vec![2.0, 4.0];
        dtrsm_lower_unit(2, 1, &l, 2, &mut b, 2);
        assert!((b[0] - 2.0).abs() < 1e-14);
        assert!((b[1] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn dtrsm_random_roundtrip() {
        let n = 6;
        let src = crate::matrix::hpl_matrix(9, n);
        // Build unit-lower L from src.
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            l.set(j, j, 1.0);
            for i in j + 1..n {
                l.set(i, j, src.get(i, j));
            }
        }
        let x = crate::matrix::hpl_matrix(10, n);
        let b = naive_mul(&l, &x);
        let mut solve = b.clone();
        dtrsm_lower_unit(n, n, l.as_slice(), n, solve.as_mut_slice(), n);
        for j in 0..n {
            for i in 0..n {
                assert!(
                    (solve.get(i, j) - x.get(i, j)).abs() < 1e-10,
                    "({i},{j}): {} vs {}",
                    solve.get(i, j),
                    x.get(i, j)
                );
            }
        }
    }

    #[test]
    fn idamax_finds_largest_abs() {
        assert_eq!(idamax(&[1.0, -5.0, 3.0]), Some(1));
        assert_eq!(idamax(&[2.0, -2.0]), Some(0), "first on tie");
        assert_eq!(idamax(&[]), None);
    }

    #[test]
    fn dger_rank1() {
        let mut a = vec![0.0; 6]; // 2x3, lda 2
        dger_minus(2, 3, &[1.0, 2.0], &[10.0, 20.0, 30.0], &mut a, 2);
        assert_eq!(a, vec![-10.0, -20.0, -20.0, -40.0, -30.0, -60.0]);
    }

    #[test]
    fn dscal_scales() {
        let mut x = vec![1.0, -2.0];
        dscal(0.5, &mut x);
        assert_eq!(x, vec![0.5, -1.0]);
    }

    #[test]
    fn flop_counts() {
        assert_eq!(dgemm_flops(2, 3, 4), 48);
        assert_eq!(dtrsm_flops(4, 5), 80);
    }
}
