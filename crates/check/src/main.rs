//! The `caf-check` binary: sweep the built-in conformance program over
//! {default sim, chaos × seeds (with faults), real threads} × scenarios ×
//! the collective-algorithm matrix — plus the shared-memory column (real
//! multi-process fleets with the zero-copy shm tier on, diffed against
//! the sim oracle and the pure-wire fleet; part of every sweep, alone via
//! `--shm-only`) and, with `--socket`, the pure-wire backend column (this
//! binary re-executed per node via the hidden `--socket-child` mode).
//! Exit 0 on a clean sweep, 1 with a replayable report on the first
//! divergence.

use caf_check::{
    algo_matrix, check_am, check_legacy_queue, check_program, check_recover, check_shm,
    check_socket, conformance, socket_child_main, CheckOptions, Program, RecoverDrill, Scenario,
};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    deep: bool,
    seeds_per_cell: Option<usize>,
    socket: bool,
    socket_only: bool,
    shm_only: bool,
    recover: bool,
    recover_only: bool,
    kill_after_ms: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut deep = false;
    let mut seeds_per_cell = None;
    let mut socket = false;
    let mut socket_only = false;
    let mut shm_only = false;
    let mut recover = false;
    let mut recover_only = false;
    let mut kill_after_ms = 150;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => deep = false,
            "--deep" => deep = true,
            "--socket" => socket = true,
            "--socket-only" => {
                socket = true;
                socket_only = true;
            }
            "--shm-only" => shm_only = true,
            "--recover" => recover = true,
            "--recover-only" => {
                recover = true;
                recover_only = true;
            }
            "--kill-after-ms" => {
                let v = it.next().ok_or("--kill-after-ms needs a value")?;
                kill_after_ms = v
                    .parse()
                    .map_err(|e| format!("bad --kill-after-ms {v:?}: {e}"))?;
            }
            "--seeds" => {
                let v = it.next().ok_or("--seeds needs a value")?;
                seeds_per_cell = Some(v.parse().map_err(|e| format!("bad --seeds {v:?}: {e}"))?);
            }
            other => {
                return Err(format!(
                    "unknown argument {other:?}\n\
                     usage: caf-check [--quick|--deep] [--seeds N] [--socket|--socket-only]\n\
                     \x20      [--shm-only] [--recover|--recover-only] [--kill-after-ms T]\n\
                     env:   CAF_CHECK_SEED=N            replay exactly one chaos seed\n\
                     env:   CAF_CHECK_SOCKET_ALGOS=a,b  restrict the socket/shm columns' algo cells"
                ))
            }
        }
    }
    Ok(Args {
        deep,
        seeds_per_cell,
        socket,
        socket_only,
        shm_only,
        recover,
        recover_only,
        kill_after_ms,
    })
}

/// The socket backend column: the mini scenario across the full algorithm
/// matrix (or the `CAF_CHECK_SOCKET_ALGOS` subset), each cell one real
/// multi-process fleet diffed against the sim oracle.
fn run_socket_column() -> Result<usize, ExitCode> {
    let scn = Scenario::mini();
    let filter: Option<Vec<String>> = std::env::var("CAF_CHECK_SOCKET_ALGOS")
        .ok()
        .map(|s| s.split(',').map(|a| a.trim().to_string()).collect());
    let t0 = Instant::now();
    let mut cells = 0usize;
    for (name, algo) in &algo_matrix() {
        if let Some(keep) = &filter {
            if !keep.iter().any(|k| k == name) {
                continue;
            }
        }
        if let Err(failure) = check_socket(&scn, name, *algo) {
            eprintln!("{}", failure.render());
            return Err(ExitCode::FAILURE);
        }
        cells += 1;
    }
    println!(
        "caf-check: socket backend matched the sim oracle on {} \
         ({cells} algo configs, real multi-process fleets, {:.1}s)",
        scn.name,
        t0.elapsed().as_secs_f64()
    );
    Ok(cells)
}

/// The shared-memory column: the mini scenario across the full algorithm
/// matrix (or the `CAF_CHECK_SOCKET_ALGOS` subset), each cell a real
/// multi-process fleet with the zero-copy shm tier forced on, diffed
/// bit-for-bit against the sim oracle (with and without chaos seeds) and
/// against the identical pure-wire fleet.
fn run_shm_column() -> Result<usize, ExitCode> {
    let scn = Scenario::mini();
    let filter: Option<Vec<String>> = std::env::var("CAF_CHECK_SOCKET_ALGOS")
        .ok()
        .map(|s| s.split(',').map(|a| a.trim().to_string()).collect());
    let t0 = Instant::now();
    let mut cells = 0usize;
    let mut runs = 0usize;
    for (name, algo) in &algo_matrix() {
        if let Some(keep) = &filter {
            if !keep.iter().any(|k| k == name) {
                continue;
            }
        }
        match check_shm(&scn, name, *algo, &[5, 17]) {
            Ok(r) => runs += r.runs,
            Err(failure) => {
                eprintln!("{}", failure.render());
                return Err(ExitCode::FAILURE);
            }
        }
        cells += 1;
    }
    println!(
        "caf-check: shared-memory tier matched the sim oracle and the wire fleet \
         on {} ({cells} algo configs, {runs} runs, {:.1}s)",
        scn.name,
        t0.elapsed().as_secs_f64()
    );
    Ok(cells)
}

/// The kill-and-recover drill family on the mini scenario: one drill per
/// victim node (rank 0 hosts the team leader — its death exercises leader
/// re-election in the re-formed team), each a respawn-supervised fleet
/// whose recovered digests must match the undisturbed sim oracle.
fn run_recover_drills(kill_after_ms: u64) -> Result<(), ExitCode> {
    let scn = Scenario::mini();
    let matrix = algo_matrix();
    let (algo_name, algo) = &matrix[0];
    let t0 = Instant::now();
    let mut drills = 0usize;
    // The kill can only land while the fleet is inside the conformance
    // loop, so the loop must outlast --kill-after-ms in *this* build
    // profile: release runs a rep roughly 40x faster than debug.
    let reps = if cfg!(debug_assertions) { 16 } else { 640 };
    for kill_node in [1usize, 0] {
        let drill = RecoverDrill {
            kill_node,
            kill_after: Duration::from_millis(kill_after_ms),
            reps,
        };
        if let Err(failure) = check_recover(&scn, algo_name, *algo, &drill, 3) {
            eprintln!("{}", failure.render());
            return Err(ExitCode::FAILURE);
        }
        drills += 1;
    }
    println!(
        "caf-check: kill-and-recover drills clean on {} — {drills} drills, each a \
         respawned node rejoining mid-run with digests matching the undisturbed \
         oracle bit-for-bit ({:.1}s)",
        scn.name,
        t0.elapsed().as_secs_f64()
    );
    Ok(())
}

fn main() -> ExitCode {
    // Fleet-member mode: this very binary, re-executed by caf-launch.
    // Dispatch before normal parsing — children take no other flags.
    if std::env::args().any(|a| a == "--socket-child") {
        return ExitCode::from(socket_child_main() as u8);
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if args.recover_only {
        return match run_recover_drills(args.kill_after_ms) {
            Ok(()) => ExitCode::SUCCESS,
            Err(code) => code,
        };
    }
    if args.socket_only {
        return match run_socket_column() {
            Ok(_) => ExitCode::SUCCESS,
            Err(code) => code,
        };
    }
    if args.shm_only {
        return match run_shm_column() {
            Ok(_) => ExitCode::SUCCESS,
            Err(code) => code,
        };
    }
    // Quick: bounded sweep for CI (≤ ~1 min); deep: the nightly/manual
    // soak. Threads differencing runs only on the small scenario in quick
    // mode (real threads on shared CI cores are the slow part).
    let seeds_per_cell = args
        .seeds_per_cell
        .unwrap_or(if args.deep { 32 } else { 6 });
    let scenarios = [Scenario::mini(), Scenario::whale()];
    let matrix = algo_matrix();
    let prog: Program = Arc::new(conformance);

    let t0 = Instant::now();
    let (mut runs, mut chaos_runs, mut fault_runs) = (0usize, 0usize, 0usize);
    for scn in &scenarios {
        let cell_t0 = Instant::now();
        for (cell, (name, algo)) in matrix.iter().enumerate() {
            let opts = CheckOptions {
                // Distinct seeds per cell: the sweep explores
                // scenarios × algos × seeds_per_cell different schedules.
                seeds: (0..seeds_per_cell as u64)
                    .map(|k| 1 + cell as u64 * 1_000 + k)
                    .collect(),
                faults: true,
                threads: args.deep || scn.images <= 8,
                trace_window: 5,
            };
            match check_program(scn, name, *algo, &prog, &opts) {
                Ok(r) => {
                    runs += r.runs;
                    chaos_runs += r.chaos_runs;
                    fault_runs += r.fault_runs;
                }
                Err(failure) => {
                    eprintln!("{}", failure.render());
                    return ExitCode::FAILURE;
                }
            }
        }
        println!(
            "caf-check: scenario {} clean ({} algo configs, {:.1}s)",
            scn.name,
            matrix.len(),
            cell_t0.elapsed().as_secs_f64()
        );
    }
    println!(
        "caf-check: all outputs matched — {} runs ({} chaos, {} with faults) \
         across {} scenarios x {} algo configs in {:.1}s",
        runs,
        chaos_runs,
        fault_runs,
        scenarios.len(),
        matrix.len(),
        t0.elapsed().as_secs_f64()
    );
    // The legacy event-core column: the mini scenario across the full
    // algorithm matrix, diffing the sharded event core against the
    // pre-scale O(n) queue (`CAF_SIM_LEGACY_QUEUE=1` path) with and
    // without chaos. Cheap enough to run in every sweep, and the only
    // guard that the scale rewrite never drifts from the reference
    // scheduler.
    let legacy_t0 = Instant::now();
    let scn = Scenario::mini();
    let mut legacy_runs = 0usize;
    for (name, algo) in matrix.iter() {
        match check_legacy_queue(&scn, name, *algo, &prog, &[5, 17]) {
            Ok(r) => legacy_runs += r,
            Err(failure) => {
                eprintln!("{}", failure.render());
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "caf-check: legacy event core matched the sharded core — {} runs \
         across {} algo configs ({:.1}s)",
        legacy_runs,
        matrix.len(),
        legacy_t0.elapsed().as_secs_f64()
    );
    // The active-message column: the mini scenario across the full
    // algorithm matrix with the collectives' flag traffic routed through
    // the batching AM tier, diffed bit-for-bit against the unbatched run
    // of the same spec — without chaos and under two chaos seeds.
    let am_t0 = Instant::now();
    let mut am_runs = 0usize;
    for (name, algo) in matrix.iter() {
        match check_am(&scn, name, *algo, &prog, &[5, 17]) {
            Ok(r) => am_runs += r,
            Err(failure) => {
                eprintln!("{}", failure.render());
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "caf-check: am batching matched the unbatched oracle — {} runs \
         across {} algo configs ({:.1}s)",
        am_runs,
        matrix.len(),
        am_t0.elapsed().as_secs_f64()
    );
    // The shared-memory column runs in every sweep (`--quick` included):
    // real fleets with the shm tier on, diffed against the sim oracle and
    // the pure-wire fleet across the full algorithm matrix.
    if let Err(code) = run_shm_column() {
        return code;
    }
    if args.socket {
        if let Err(code) = run_socket_column() {
            return code;
        }
    }
    if args.recover {
        if let Err(code) = run_recover_drills(args.kill_after_ms) {
            return code;
        }
    }
    ExitCode::SUCCESS
}
