//! CAF locks: `type(lock_type) :: l[*]` with `lock`/`unlock` statements.
//!
//! A [`LockSet`] is a coarray of lock variables — each cell an independent
//! mutual-exclusion lock living on a specific image — built on remote
//! compare-and-swap. Lock acquisition spins with remote CAS; on the
//! simulator every retry advances virtual time (and pays NIC/bus costs), so
//! contention is costed realistically.

use crate::coarray::Coarray;
use crate::image::ImageCtx;
use caf_collectives::TeamComm;
use caf_fabric::ArcFabric;
use caf_topology::ProcId;

/// A coarray of `count` lock variables per image of the allocating team.
pub struct LockSet {
    cells: Coarray<u64>,
    /// 1-based ticket identifying this image in lock cells.
    ticket: u64,
    /// Locks currently held: (image1, idx), to catch double-unlock.
    held: Vec<(usize, usize)>,
}

/// RAII guard for a held lock; releases on drop… except that CAF unlock is
/// an explicit statement, so we expose explicit [`LockSet::unlock`] and the
/// guard-free style matches the language. (A closure API is on
/// [`ImageCtx::critical`].)
impl LockSet {
    pub(crate) fn allocate(
        fabric: ArcFabric,
        me: ProcId,
        comm: &mut TeamComm,
        count: usize,
    ) -> Self {
        assert!(count > 0, "lock set needs at least one lock");
        let cells = Coarray::allocate(fabric, me, comm, count);
        Self {
            ticket: comm.rank() as u64 + 1,
            cells,
            held: Vec::new(),
        }
    }

    /// Locks per image.
    pub fn count(&self) -> usize {
        self.cells.len()
    }

    /// `lock(l[image1](idx))`: acquire, spinning until free.
    ///
    /// # Panics
    /// Panics on attempted recursive acquisition of a lock this image
    /// already holds (Fortran makes this an error condition).
    pub fn lock(&mut self, image1: usize, idx: usize) {
        assert!(
            !self.held.contains(&(image1, idx)),
            "image already holds lock ({image1}, {idx})"
        );
        loop {
            let old = self.cells.atomic_cas(image1, idx, 0, self.ticket);
            if old == 0 {
                break;
            }
            assert_ne!(
                old, self.ticket,
                "lock ({image1}, {idx}) already held by this image"
            );
        }
        self.held.push((image1, idx));
    }

    /// `lock(l[image1](idx), acquired_lock=ok)`: one attempt, no spin.
    /// Returns whether the lock was acquired.
    pub fn try_lock(&mut self, image1: usize, idx: usize) -> bool {
        if self.held.contains(&(image1, idx)) {
            return false;
        }
        let old = self.cells.atomic_cas(image1, idx, 0, self.ticket);
        if old == 0 {
            self.held.push((image1, idx));
            true
        } else {
            false
        }
    }

    /// `unlock(l[image1](idx))`.
    ///
    /// # Panics
    /// Panics if this image does not hold the lock.
    pub fn unlock(&mut self, image1: usize, idx: usize) {
        let pos = self
            .held
            .iter()
            .position(|&h| h == (image1, idx))
            .unwrap_or_else(|| panic!("unlock of lock ({image1}, {idx}) not held by this image"));
        self.held.swap_remove(pos);
        let old = self.cells.atomic_cas(image1, idx, self.ticket, 0);
        assert_eq!(old, self.ticket, "lock ({image1}, {idx}) corrupted");
    }

    /// True when this image currently holds the given lock.
    pub fn holds(&self, image1: usize, idx: usize) -> bool {
        self.held.contains(&(image1, idx))
    }
}

impl ImageCtx {
    /// Allocate a coarray of `count` lock variables per image over the
    /// current team (CAF `type(lock_type) :: l(count)[*]`). Collective.
    pub fn locks(&mut self, count: usize) -> LockSet {
        let fabric = self.fabric().clone();
        let me = self.proc();
        LockSet::allocate(fabric, me, self.current_comm_mut(), count)
    }
}
