//! # caf-check
//!
//! Systematic correctness tooling for the PGAS runtime: seeded schedule
//! exploration, fault injection, and differential-oracle testing.
//!
//! The deterministic simulator ([`SimFabric`](caf_fabric::SimFabric))
//! executes one interleaving per program; the real-thread fabric executes
//! whatever the OS happens to produce. Neither systematically explores the
//! relaxed orderings one-sided PGAS communication permits — exactly where
//! runtimes of this kind historically break. This crate closes that gap
//! with three layers:
//!
//! 1. **Chaos scheduling** ([`caf_fabric::ChaosConfig`]) — perturbs the
//!    simulator's virtual-time commit order with seeded latency jitter,
//!    tie reordering, and PCT-style priorities; each `u64` seed names one
//!    reproducible schedule.
//! 2. **Fault injection** — stalled images, slow nodes, delayed and
//!    duplicated nonblocking-put completions, all as finite extra virtual
//!    time so every terminating program still terminates (genuine hangs
//!    become deadlock panics, which the harness catches and reports).
//! 3. **Differential oracle** ([`check_program`]) — one SPMD closure runs
//!    under {default sim, chaos × seeds, real threads} × a collective
//!    algorithm matrix; any output divergence is shrunk greedily to a
//!    minimal failing chaos config and reported with a replayable seed
//!    (`CAF_CHECK_SEED=<seed>`) and, when built with the `trace` feature,
//!    the recent per-image event window.
//!
//! The `caf-check` binary (`cargo xtask check --quick|--deep`) sweeps the
//! built-in conformance program over the full scenario × algorithm × seed
//! matrix; the library surface below is what its own tests (including the
//! planted-bug mutation smoke test) and other crates' chaos tests use.

#![warn(missing_docs)]

pub mod harness;
pub mod scenario;
pub mod socket;

pub use harness::{
    check_am, check_legacy_queue, check_program, CheckOptions, CheckReport, Failure, Program,
};
pub use scenario::{algo_by_name, algo_matrix, conformance, Scenario};
pub use socket::{
    check_recover, check_shm, check_socket, socket_child_main, socket_digests, RecoverDrill,
};
