//! Launch configuration: machine, placement, fabric choice, collectives.

use caf_collectives::CollectiveConfig;
use caf_fabric::{ArcFabric, ChaosConfig, SimConfig, SimFabric, ThreadConfig, ThreadFabric};
use caf_topology::{ImageMap, MachineModel, Placement};

/// Which communication substrate to run on.
#[derive(Clone, Debug)]
pub enum FabricChoice {
    /// The deterministic virtual-time simulator (`caf-fabric::SimFabric`) —
    /// the engine behind every reproduced experiment.
    Sim(SimConfig),
    /// Real shared-memory threads (`caf-fabric::ThreadFabric`).
    Threads(ThreadConfig),
}

/// Everything needed to launch an SPMD run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// The (possibly simulated) cluster.
    pub machine: MachineModel,
    /// Number of images to launch.
    pub images: usize,
    /// Image → core placement policy.
    pub placement: Placement,
    /// Communication substrate.
    pub fabric: FabricChoice,
    /// Team collective algorithms (inherited by subteams).
    pub collectives: CollectiveConfig,
}

impl RunConfig {
    /// Simulator fabric, packed placement, hierarchy-aware collectives.
    pub fn sim_packed(machine: MachineModel, images: usize) -> Self {
        Self {
            machine,
            images,
            placement: Placement::Packed,
            fabric: FabricChoice::Sim(SimConfig::default()),
            collectives: CollectiveConfig::auto(),
        }
    }

    /// Like [`sim_packed`](Self::sim_packed) but under the seeded chaos
    /// scheduler: the canonical [`ChaosConfig::from_seed`] perturbation,
    /// deterministic per seed. Used by `caf-check` and the chaos variants
    /// of the cross-crate conformance tests.
    pub fn sim_chaos(machine: MachineModel, images: usize, seed: u64) -> Self {
        Self::sim_packed(machine, images).with_chaos(ChaosConfig::from_seed(seed))
    }

    /// Install a specific chaos configuration (panics on a threads fabric,
    /// which has no virtual-time scheduler to perturb).
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        match &mut self.fabric {
            FabricChoice::Sim(cfg) => cfg.chaos = Some(chaos),
            FabricChoice::Threads(_) => {
                panic!("chaos scheduling is a SimFabric feature; use FabricChoice::Sim")
            }
        }
        self
    }

    /// Real-threads fabric, packed placement, hierarchy-aware collectives.
    pub fn threads_packed(machine: MachineModel, images: usize) -> Self {
        Self {
            machine,
            images,
            placement: Placement::Packed,
            fabric: FabricChoice::Threads(ThreadConfig::default()),
            collectives: CollectiveConfig::auto(),
        }
    }

    /// Replace the placement policy.
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Replace the collective configuration.
    pub fn with_collectives(mut self, collectives: CollectiveConfig) -> Self {
        self.collectives = collectives;
        self
    }

    /// Materialize the fabric described by this configuration.
    pub fn build_fabric(&self) -> ArcFabric {
        let map = ImageMap::new(self.machine.clone(), self.images, &self.placement);
        match &self.fabric {
            FabricChoice::Sim(cfg) => SimFabric::new(map, cfg.clone()),
            FabricChoice::Threads(cfg) => ThreadFabric::new(map, cfg.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caf_topology::presets;

    #[test]
    fn build_sim_fabric() {
        let cfg = RunConfig::sim_packed(presets::mini(2, 4), 8);
        let f = cfg.build_fabric();
        assert_eq!(f.n_images(), 8);
        assert_eq!(f.image_map().occupied_nodes(), 2);
    }

    #[test]
    fn build_thread_fabric_with_cyclic_placement() {
        let cfg =
            RunConfig::threads_packed(presets::mini(4, 2), 4).with_placement(Placement::Cyclic);
        let f = cfg.build_fabric();
        assert_eq!(f.image_map().occupied_nodes(), 4);
        assert_eq!(f.image_map().max_images_per_node(), 1);
    }

    #[test]
    fn with_collectives_overrides() {
        let cfg = RunConfig::sim_packed(presets::mini(1, 2), 2)
            .with_collectives(CollectiveConfig::one_level());
        assert_eq!(cfg.collectives, CollectiveConfig::one_level());
    }
}
