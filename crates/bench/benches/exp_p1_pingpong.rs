//! EXP-P1 (validation) — put latency and effective bandwidth across the
//! memory hierarchy, straight off the fabric: the osu-microbenchmark-style
//! curves that validate the cost model against its calibration targets
//! (DESIGN.md §6): ~0.1 µs intra-node visibility, ~1.8 µs inter-node put
//! latency, ~1.4 GB/s 4xDDR InfiniBand effective bandwidth, ~4 GB/s
//! intra-node copy bandwidth.
//!
//! Simulator rows report the deterministic modeled one-way time
//! (`sim_*_virt`, strict 10% gate in `cargo xtask bench-diff`) plus the
//! closed-form shared-memory-tier model (`model_shm_virt`). Socket rows
//! ping-pong the same program between two real `SocketFabric` processes
//! on this host, once through the zero-copy shared-memory tier
//! (`socket_shm_wall`) and once with `CAF_SOCKET_SHM=0` semantics forcing
//! every byte over the wire (`socket_wire_wall`) — noisy host wall clock,
//! gated loosely via `--wall-tolerance`. The acceptance check asserts the
//! shm tier lands small puts at least 4x faster than the wire path.
//!
//! Results go to `BENCH_pingpong.json` (override with `CAF_BENCH_OUT`);
//! CI reruns the quick points and diffs against the committed baseline.

use caf_bench::{print_cost_preamble, quick_mode};
use caf_fabric::socket::testing::{fleet, run_fleet};
use caf_fabric::{bootstrap, run_spmd, Fabric, FlagId, SimConfig, SimFabric, SocketConfig};
use caf_microbench::Table;
use caf_topology::{presets, ImageMap, Placement, ProcId};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

const PAYLOADS: [usize; 5] = [8, 256, 4096, 65536, 1 << 20];

struct Rec {
    op: &'static str,
    bytes: usize,
    algo: String,
    ns: f64,
}

/// Ping-pong `iters` rounds of `bytes` between images 0 and 1 of `map`;
/// returns modeled ns per one-way message.
fn pingpong(nodes: usize, cores: usize, bytes: usize, iters: u64) -> f64 {
    let map = ImageMap::new(presets::mini(nodes, cores), 2, &Placement::Packed);
    let fabric = SimFabric::new(
        map,
        SimConfig {
            cost: presets::whale_cost(),
            overheads: presets::stacks::UHCAF,
            ..SimConfig::default()
        },
    );
    let f = fabric.clone();
    let out = Arc::new(Mutex::new(0u64));
    let o2 = out.clone();
    run_spmd(fabric, move |me| {
        let seg = f.alloc_segment(me, bytes.max(8));
        // Identical allocation sequences give identical ids; the barrier
        // guarantees the peer's segment exists before the first put.
        bootstrap::control_barrier(&*f, me, &mut 0);
        let flag = FlagId(2);
        let payload = vec![0xA5u8; bytes];
        let peer = ProcId(1 - me.index());
        let t0 = f.now_ns(me);
        for round in 1..=iters {
            if me == ProcId(0) {
                f.put(me, peer, seg, 0, &payload);
                f.flag_add(me, peer, flag, 1);
                f.flag_wait_ge(me, flag, round);
            } else {
                f.flag_wait_ge(me, flag, round);
                f.put(me, peer, seg, 0, &payload);
                f.flag_add(me, peer, flag, 1);
            }
        }
        if me == ProcId(0) {
            *o2.lock() = f.now_ns(me) - t0;
        }
        f.image_done(me);
    });
    let total = *out.lock();
    total as f64 / (2 * iters) as f64
}

/// The same ping-pong on a real two-process-worth socket fleet (two
/// in-process `SocketFabric`s, one per node of the map, on this host):
/// returns measured host wall-clock ns per one-way put+flag. With `shm`
/// on, both sides map each other's shared segment and the entire exchange
/// is memcpy + atomics; with `shm` off the identical program pays the
/// full frame + ack protocol over loopback sockets.
fn socket_pingpong(shm: bool, bytes: usize, iters: u64) -> f64 {
    let map = ImageMap::new(presets::mini(2, 1), 2, &Placement::Packed);
    let cfg = SocketConfig {
        io_timeout: Duration::from_secs(30),
        flag_wait_timeout: Duration::from_secs(30),
        shm: shm && cfg!(unix),
        ..SocketConfig::default()
    };
    let fabrics = fleet(&map, &cfg);
    let out = Arc::new(Mutex::new(0f64));
    let o2 = out.clone();
    // Untimed rounds first: connection setup, segment faults, allocator
    // warm-up all land outside the measured window. The timed rounds run
    // as several chunks and the best chunk wins — a single descheduling
    // stall on a noisy shared runner then spoils one chunk, not the
    // measurement.
    let warmup = 16u64;
    let chunks = 4u64;
    let per_chunk = (iters / chunks).max(1);
    run_fleet(&fabrics, move |f, me| {
        let seg = f.alloc_segment(me, bytes.max(8));
        bootstrap::control_barrier(&*f, me, &mut 0);
        let flag = FlagId(2);
        let payload = vec![0xA5u8; bytes];
        let peer = ProcId(1 - me.index());
        let mut best = f64::INFINITY;
        let mut t0 = Instant::now();
        for round in 1..=(warmup + chunks * per_chunk) {
            if me == ProcId(0)
                && (round - 1) >= warmup
                && (round - 1 - warmup).is_multiple_of(per_chunk)
            {
                t0 = Instant::now();
            }
            if me == ProcId(0) {
                f.put(me, peer, seg, 0, &payload);
                f.flag_add(me, peer, flag, 1);
                f.flag_wait_ge(me, flag, round);
            } else {
                f.flag_wait_ge(me, flag, round);
                f.put(me, peer, seg, 0, &payload);
                f.flag_add(me, peer, flag, 1);
            }
            if me == ProcId(0) && round > warmup && (round - warmup).is_multiple_of(per_chunk) {
                best = best.min(t0.elapsed().as_secs_f64() * 1e9 / (2 * per_chunk) as f64);
            }
        }
        if me == ProcId(0) {
            *o2.lock() = best;
        }
        f.image_done(me);
    });
    let v = *out.lock();
    v
}

fn json_escape_free(s: &str) -> &str {
    assert!(
        s.chars()
            .all(|c| c.is_ascii_alphanumeric() || "_-.".contains(c)),
        "unexpected character in JSON field: {s}"
    );
    s
}

fn write_json(path: &str, recs: &[Rec]) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"exp_p1_pingpong\",\n");
    out.push_str("  \"machine\": \"whale-cost-model\",\n");
    out.push_str(&format!("  \"quick\": {},\n", quick_mode()));
    out.push_str("  \"unit\": \"virt_rows_modeled_one_way_ns_wall_rows_wall_one_way_ns\",\n");
    out.push_str("  \"results\": [\n");
    for (i, r) in recs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"op\": \"{}\", \"bytes\": {}, \"algo\": \"{}\", \"ns\": {:.4}}}{}\n",
            json_escape_free(r.op),
            r.bytes,
            json_escape_free(&r.algo),
            r.ns,
            if i + 1 < recs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("\nwrote {path} ({} results)", recs.len());
}

fn main() {
    print_cost_preamble("EXP-P1");
    let cost = presets::whale_cost();
    // Quick keeps the wire round counts CI-sized; full is the
    // committed-figure scale. Large payloads take fewer rounds.
    let iters = if quick_mode() { 200u64 } else { 2000 };
    let mut recs: Vec<Rec> = Vec::new();
    let mut t = Table::new(
        "EXP-P1 (model validation): one-way put latency, modeled tiers vs a real \
         two-process fleet on this host"
            .to_string(),
        &[
            "bytes",
            "sim intra us",
            "sim inter us",
            "model shm us",
            "socket shm us",
            "socket wire us",
            "wire/shm",
        ],
    );
    let mut ratio_8b = f64::NAN;
    for &bytes in &PAYLOADS {
        let rounds = if bytes >= 1 << 20 { iters / 8 } else { iters }.max(8);
        let intra = pingpong(1, 2, bytes, 20);
        let inter = pingpong(2, 1, bytes, 20);
        let model_shm = (cost.shm_put_latency_ns() + cost.shm_payload_ns(bytes)) as f64;
        let shm_wall = socket_pingpong(true, bytes, rounds);
        let wire_wall = socket_pingpong(false, bytes, rounds);
        let ratio = wire_wall / shm_wall;
        if bytes == 8 {
            ratio_8b = ratio;
        }
        for (algo, ns) in [
            ("sim_intra_virt", intra),
            ("sim_inter_virt", inter),
            ("model_shm_virt", model_shm),
            ("socket_shm_wall", shm_wall),
            ("socket_wire_wall", wire_wall),
        ] {
            recs.push(Rec {
                op: "pingpong",
                bytes,
                algo: algo.to_string(),
                ns,
            });
        }
        t.row(&[
            bytes.to_string(),
            format!("{:.2}", intra / 1000.0),
            format!("{:.2}", inter / 1000.0),
            format!("{:.2}", model_shm / 1000.0),
            format!("{:.2}", shm_wall / 1000.0),
            format!("{:.2}", wire_wall / 1000.0),
            format!("{ratio:.1}x"),
        ]);
    }
    t.note(
        "calibration targets: inter latency ~2-3 us (w/ software), intra bw ~4 GB/s; \
         socket columns are measured wall clock on this host",
    );
    t.print();

    let path = std::env::var("CAF_BENCH_OUT").unwrap_or_else(|_| {
        let root = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".into());
        format!("{root}/../../BENCH_pingpong.json")
    });
    write_json(&path, &recs);

    // Acceptance: the shared-memory tier must beat the wire by at least 4x
    // on small intranode puts. Only meaningful where the shm tier exists.
    if cfg!(unix) {
        assert!(
            ratio_8b >= 4.0,
            "shm tier is only {ratio_8b:.2}x faster than the wire at 8 B one-way \
             (need >= 4x)"
        );
        println!("acceptance: shm tier lands 8 B puts {ratio_8b:.1}x faster than the wire -- PASS");
    } else {
        println!("acceptance: skipped (no shared-memory tier on this platform)");
    }
}
