//! EXP-C1 — one-to-all broadcast (`co_broadcast`), §V-A / §VII:
//!
//! > "getting up to … 3-fold performance improvement[ ] over the default
//! > approach" (broadcast, §VII)
//!
//! The 1-level default is the flat binomial tree; the two-level algorithm
//! runs the binomial only among node leaders and fans out through shared
//! memory. Broadcast's tree is already log-depth, which is why the paper's
//! win here (3×) is far smaller than for barrier (26×) and reduction (74×)
//! — the shape this harness must reproduce.

use caf_bench::{print_cost_preamble, scaled};
use caf_microbench::{broadcast_latency, report, MicroConfig, Table};
use caf_runtime::{BcastAlgo, CollectiveConfig};
use caf_topology::presets::stacks;

/// Flat algorithms run on the 1-level runtime (UHCAF_FLAT), the two-level
/// algorithm on the hierarchy-aware runtime — the paper's "default" vs
/// "our approach" pairing.
fn run(n: usize, elems: usize, algo: BcastAlgo, iters: usize) -> f64 {
    let stack = match algo {
        BcastAlgo::TwoLevel => stacks::UHCAF,
        _ => stacks::UHCAF_FLAT,
    };
    let mut mc = MicroConfig::whale(n, 8)
        .with_stack(stack)
        .with_collectives(CollectiveConfig {
            bcast: algo,
            ..CollectiveConfig::default()
        });
    mc.iters = iters;
    broadcast_latency(&mc, elems).ns_per_op
}

fn main() {
    print_cost_preamble("EXP-C1");
    let iters = scaled(10, 3);
    let sizes: Vec<usize> = if caf_bench::quick_mode() {
        vec![16, 64]
    } else {
        vec![16, 32, 64, 128, 256, 352]
    };

    let mut t1 = Table::new(
        "EXP-C1a: co_broadcast latency vs team size, 16 elements, 8 images/node (modeled us)",
        &[
            "images(nodes)",
            "two-level",
            "flat-binomial",
            "flat-linear",
            "speedup",
        ],
    );
    let mut best: f64 = 0.0;
    for &n in &sizes {
        let two = run(n, 16, BcastAlgo::TwoLevel, iters);
        let bino = run(n, 16, BcastAlgo::FlatBinomial, iters);
        let lin = run(n, 16, BcastAlgo::FlatLinear, iters);
        best = best.max(bino / two);
        t1.row(&[
            format!("{}({})", n, n / 8),
            report::us(two),
            report::us(bino),
            report::us(lin),
            report::speedup(bino, two),
        ]);
    }
    t1.note(format!(
        "measured max two-level speedup over flat binomial: {best:.1}x (paper: up to 3x)"
    ));
    t1.print();

    let n = scaled(256, 64);
    let mut t2 = Table::new(
        format!(
            "EXP-C1b: co_broadcast latency vs payload, {n} images ({} nodes)",
            n / 8
        ),
        &["elements(f64)", "two-level", "flat-binomial", "speedup"],
    );
    for &elems in &[1usize, 16, 128, 1024, 8192] {
        let two = run(n, elems, BcastAlgo::TwoLevel, iters);
        let bino = run(n, elems, BcastAlgo::FlatBinomial, iters);
        t2.row(&[
            elems.to_string(),
            report::us(two),
            report::us(bino),
            report::speedup(bino, two),
        ]);
    }
    t2.print();
}
