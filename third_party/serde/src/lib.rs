//! Offline shim for `serde`: the workspace only uses
//! `#[derive(Serialize, Deserialize)]` as forward-looking annotations and
//! never serializes, so the derives are re-exported as no-ops and the
//! traits are empty markers.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (never implemented or required
/// by the no-op derive).
pub trait SerializeMarker {}

/// Marker stand-in for `serde::Deserialize` (never implemented or
/// required by the no-op derive).
pub trait DeserializeMarker {}
