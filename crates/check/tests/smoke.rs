//! Harness self-tests: the mutation smoke test (a deliberately planted
//! reordering bug must be caught, shrunk, and reported with a replayable
//! seed), its fixed twin (must survive the same sweep), and
//! fault-injection termination.

use caf_check::{check_program, conformance, CheckOptions, Program, Scenario};
use caf_collectives::CollectiveConfig;
use caf_fabric::{bootstrap, FlagId};
use caf_runtime::ImageCtx;
use caf_topology::{presets, ProcId};
use std::sync::Arc;

const ROUNDS: u64 = 8;
/// Bootstrap spare flag — free for program use (the control barrier owns
/// flags 0 and 1).
const FLAG: FlagId = FlagId(2);

fn fnv(h: &mut u64, x: u64) {
    for b in x.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

/// A two-image producer/consumer pipeline over raw fabric ops: image 1
/// streams one value per round into per-round slots of image 2's
/// bootstrap segment, announcing each with a flag increment.
///
/// `fixed = true` waits for the *cumulative* threshold `round + 1` — the
/// correct accumulating-flag protocol; every schedule yields the same
/// digest. `fixed = false` plants the classic stale-threshold bug (wait
/// `flag >= 1` every round): the wait passes as soon as any earlier
/// notification landed, so under an adversarial schedule the reader's get
/// commits before the writer's put and observes a zero slot.
fn pipeline(img: &mut ImageCtx, fixed: bool) -> u64 {
    let f = img.fabric().clone();
    let me = ProcId(img.this_image() - 1);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    if img.this_image() == 1 {
        for r in 0..ROUNDS {
            let slot = 8 * r as usize;
            f.put(
                me,
                ProcId(1),
                bootstrap::SEG,
                slot,
                &(1_000 + r).to_ne_bytes(),
            );
            f.flag_add(me, ProcId(1), FLAG, 1);
        }
    } else {
        for r in 0..ROUNDS {
            let need = if fixed { r + 1 } else { 1 }; // <- the mutation
            f.flag_wait_ge(me, FLAG, need);
            let mut buf = [0u8; 8];
            f.get(me, me, bootstrap::SEG, 8 * r as usize, &mut buf);
            fnv(&mut h, u64::from_ne_bytes(buf));
            img.compute(200);
        }
    }
    img.sync_all();
    h
}

fn pipeline_scenario() -> Scenario {
    Scenario {
        name: "pipe-2x1".into(),
        machine: presets::mini(2, 1),
        images: 2,
    }
}

fn sweep_opts() -> CheckOptions {
    CheckOptions {
        seeds: (1..=12).collect(),
        faults: false,
        threads: false, // the buggy variant is a data race on threads;
        // keep the mutation check fully deterministic
        trace_window: 4,
    }
}

#[test]
fn planted_reordering_bug_is_caught_and_shrunk() {
    let prog: Program = Arc::new(|img| pipeline(img, false));
    let failure = check_program(
        &pipeline_scenario(),
        "two_level",
        CollectiveConfig::two_level(),
        &prog,
        &sweep_opts(),
    )
    .expect_err("the stale-threshold bug must be caught by some chaos seed");
    let seed = failure.seed.expect("chaos failures carry a seed");
    let minimal = failure.minimal.expect("chaos failures are shrunk");
    assert_eq!(minimal.seed, seed, "shrinking must preserve the seed");
    let report = failure.render();
    assert!(
        report.contains(&format!("CAF_CHECK_SEED={seed}")),
        "report must show the replay command:\n{report}"
    );
    assert!(
        report.contains("minimal failing chaos config"),
        "report must show the shrunk config:\n{report}"
    );
    // The shrinker starts from a fault-free config here, so fault knobs
    // must stay off, and at least one jitter/reorder knob must survive
    // (a config with every knob off reproduces the oracle schedule).
    assert!(minimal.stalled_image.is_none() && minimal.slow_node.is_none());
    assert!(
        minimal.cpu_jitter_ns > 0 || minimal.net_jitter_ns > 0 || minimal.reorder,
        "an all-off config cannot fail: {minimal:?}"
    );
}

#[test]
fn the_fixed_pipeline_survives_the_same_sweep() {
    let prog: Program = Arc::new(|img| pipeline(img, true));
    // Correct cumulative thresholds: same seeds, plus the thread fabric
    // (the protocol is properly synchronized, so threads agree too).
    let opts = CheckOptions {
        threads: true,
        ..sweep_opts()
    };
    let report = check_program(
        &pipeline_scenario(),
        "two_level",
        CollectiveConfig::two_level(),
        &prog,
        &opts,
    )
    .unwrap_or_else(|f| panic!("fixed pipeline must pass:\n{}", f.render()));
    assert_eq!(report.chaos_runs, 12);
}

#[test]
fn all_fault_families_terminate_and_match_the_oracle() {
    // Seeds 0..12 put indices 2, 5, 8, 11 on the fault path (idx % 3 == 2),
    // i.e. seeds 2, 5, 8, 11 — families seed % 4 = 2, 1, 0, 3: completion
    // delay, slow node, stalled image, duplicated completions. Every run
    // must terminate (no hang survives the deadlock detector) and agree
    // with the oracle.
    let prog: Program = Arc::new(conformance);
    let report = check_program(
        &Scenario::tiny(),
        "auto",
        CollectiveConfig::auto(),
        &prog,
        &CheckOptions {
            seeds: (0..12).collect(),
            faults: true,
            threads: false,
            trace_window: 4,
        },
    )
    .unwrap_or_else(|f| panic!("fault sweep must pass:\n{}", f.render()));
    assert_eq!(report.fault_runs, 4, "all four fault families must run");
    assert_eq!(report.chaos_runs, 12);
}
