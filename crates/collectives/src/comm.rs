//! `TeamComm` — the communication structure behind the paper's `team_type`.
//!
//! One `TeamComm` exists per image per team. It owns:
//!
//! * the team's **image-index → process mapping** (`members`), exactly the
//!   mapping array the paper adds to OpenUH's `team_type`;
//! * the **hierarchy view** (intranode sets + leaders) computed once at
//!   formation, which every two-level collective consults;
//! * per-member **resource tables**: because fabric allocation is
//!   image-local, each member records its co-members' flag-block and
//!   segment ids, learned through an id exchange at formation time;
//! * per-collective **epoch counters**: all flags are accumulating
//!   `sync_flags` counters (never reset), so algorithms wait for
//!   `≥ epoch`-scaled thresholds — the paper's one-wait carry.
//!
//! # Formation
//!
//! The initial team ([`TeamComm::create_initial`]) bootstraps its id
//! exchange through the fabric's pre-created [`caf_fabric::bootstrap`]
//! resources. Subteams ([`TeamComm::create_sub`], the runtime's
//! `form_team`) exchange their fresh ids through the **parent** team's
//! machinery — mirroring how a real runtime coordinates team-scoped
//! symmetric allocations through the parent team.

use crate::config::{BarrierAlgo, BcastAlgo, CollectiveConfig, GatherAlgo, ReduceAlgo, SizePolicy};
use crate::util::ceil_log2;
use crate::value::{bytes_to_slice, slice_to_bytes, CoNumeric, CoOp, CoValue};
use caf_fabric::{bootstrap, Am, AmPolicy, ArcFabric, FlagId, PutToken, SegmentId};
use caf_topology::{HierarchyView, ProcId};
use caf_trace::Event;
use std::sync::Arc;

/// Bytes per member slot in a team's exchange segment (4 × u64).
pub(crate) const EXCH_SLOT: usize = 32;

/// Flag indices within a team's flag block.
pub(crate) mod flag {
    /// Barrier: central/TDLB gather counter (lives on the gather target).
    pub const COUNTER: usize = 0;
    /// Barrier: release notification (per member).
    pub const RELEASE: usize = 1;
    /// Multi-level barrier: socket-level gather counter.
    pub const S_COUNTER: usize = 2;
    /// Multi-level barrier: socket-level release.
    pub const S_RELEASE: usize = 3;
    /// Reduction: intra-node gather counter at the leader.
    pub const R_COUNTER: usize = 4;
    /// Reduction: intra-node result release.
    pub const R_RELEASE: usize = 5;
    /// Reduction: non-power-of-two fold-in notification.
    pub const R_PRE: usize = 6;
    /// Reduction: non-power-of-two fold-out notification.
    pub const R_POST: usize = 7;
    /// Broadcast: payload-arrived notification.
    pub const B_ARRIVE: usize = 8;
    /// Broadcast: consumption ack (flow control).
    pub const B_ACK: usize = 9;
    /// Team control barrier: gather counter (control plane only).
    pub const EXCH_COUNTER: usize = 10;
    /// Team control barrier: release.
    pub const EXCH_RELEASE: usize = 11;
    /// Broadcast: episode-completion release (the third wave; see
    /// `bcast.rs` — required because roots rotate call-to-call).
    pub const B_DONE: usize = 12;
    /// Control-plane allgather: tree-gather arrival counter.
    pub const EXCH_GATHER: usize = 13;
    /// Control-plane allgather: tree-broadcast arrival counter.
    pub const EXCH_BCAST: usize = 14;
    /// Gather: contribution-arrived counter.
    pub const GA_ARRIVE: usize = 15;
    /// Gather: completion release.
    pub const GA_DONE: usize = 16;
    /// Scatter: slice-arrived counter.
    pub const SC_ARRIVE: usize = 17;
    /// Scatter: consumption ack.
    pub const SC_ACK: usize = 18;
    /// Scatter: completion release.
    pub const SC_DONE: usize = 19;
    /// All-to-all: slice-arrived counter.
    pub const A2A_ARRIVE: usize = 20;
    /// First dissemination-round flag; round `k` is `DISSEM + k`.
    pub const DISSEM: usize = 21;
}

/// Per-team flag-block layout: 21 fixed flags, then `d` dissemination
/// flags, then `d` reduction-round flags, then `lm` per-set-position
/// chunk-stream flags (pipelined reduction: the leader must count each
/// slave's chunks separately — one shared counter cannot tell "slave A
/// sent two chunks" from "slaves A and B sent one each").
#[derive(Clone, Copy, Debug)]
pub(crate) struct FlagLayout {
    /// ⌈log₂ team size⌉, ≥ 1 slot even for singleton teams.
    pub d: usize,
    /// Largest intranode-set size (chunk-stream flag count).
    pub lm: usize,
}

impl FlagLayout {
    pub(crate) fn new(team_size: usize, local_max: usize) -> Self {
        Self {
            d: ceil_log2(team_size).max(1),
            lm: local_max.max(1),
        }
    }

    pub(crate) fn total(&self) -> usize {
        flag::DISSEM + 2 * self.d + self.lm
    }

    pub(crate) fn dissem(&self, k: usize) -> usize {
        debug_assert!(k < self.d);
        flag::DISSEM + k
    }

    pub(crate) fn r_arrive(&self, k: usize) -> usize {
        debug_assert!(k < self.d);
        flag::DISSEM + self.d + k
    }

    /// Chunk-stream flag for intranode set position `pos` (pipelined
    /// reduction gather).
    pub(crate) fn chunk(&self, pos: usize) -> usize {
        debug_assert!(pos < self.lm);
        flag::DISSEM + 2 * self.d + pos
    }
}

/// Resource ids of one co-member, learned at formation time.
#[derive(Clone, Copy, Debug)]
pub(crate) struct MemberRsrc {
    /// Base of the member's team flag block.
    pub flags: FlagId,
    /// The member's exchange segment.
    pub exch: SegmentId,
    /// The member's current scratch segment (valid when
    /// `TeamComm::scratch_slot_bytes > 0`).
    pub scratch: SegmentId,
    /// The member's gather/scatter region (valid when
    /// `TeamComm::gather_slot_bytes > 0`).
    pub gather: SegmentId,
}

/// Per-collective epoch counters (local to this image).
///
/// Every counter is **cumulative**: it records how many arrivals of its
/// kind this image has consumed (or must next wait for) over the team's
/// whole life, never a per-episode count. That is what lets successive
/// collective calls pick *different* algorithms (size-aware selection)
/// against the same accumulating flags: each call bumps the counters by
/// exactly the number of notifications its role in that call receives,
/// and roles are a deterministic function of (algorithm, team, length),
/// which all members compute identically.
#[derive(Clone, Debug, Default)]
pub(crate) struct Epochs {
    pub barrier: u64,
    pub reduce: u64,
    pub bcast: u64,
    pub exch: u64,
    /// Tree-allgather era (gather/bcast flag thresholds).
    pub exch_tree: u64,
    /// Cumulative fold-in payloads this image has consumed (`R_PRE`).
    pub r_pre: u64,
    /// Cumulative fold-out payloads this image has consumed (`R_POST`).
    pub r_post: u64,
    /// Cumulative intranode reduction contributions consumed (`R_COUNTER`).
    pub r_counter: u64,
    /// Cumulative intranode reduction releases consumed (`R_RELEASE`).
    pub r_release: u64,
    /// Cumulative per-round reduction-exchange arrivals (`r_arrive(k)`),
    /// grown on demand.
    pub r_rounds: Vec<u64>,
    /// Cumulative per-set-position chunk arrivals (`chunk(pos)`), grown on
    /// demand (pipelined reduction gather).
    pub chunk_streams: Vec<u64>,
    /// Cumulative number of broadcast payloads this image has consumed
    /// (differs from `bcast` on episodes where it was the root).
    pub bcast_arrived: u64,
    /// Cumulative number of broadcast acks this image must have collected
    /// before its next overwrite (varies with per-episode fan-out).
    pub bcast_acks: u64,
    /// Cumulative episode-completion releases this image must have seen
    /// (one per episode in which it was not the root).
    pub bcast_released: u64,
    /// Gather era.
    pub gather: u64,
    /// Cumulative gather contributions this image must have collected.
    pub gather_arrived: u64,
    /// Cumulative gather releases this image must have seen.
    pub gather_released: u64,
    /// Scatter era.
    pub scatter: u64,
    /// Cumulative scatter slices this image must have received.
    pub scatter_arrived: u64,
    /// Cumulative scatter acks the root side must have collected.
    pub scatter_acked: u64,
    /// Cumulative scatter releases this image must have seen.
    pub scatter_released: u64,
    /// All-to-all era.
    pub alltoall: u64,
}

impl Epochs {
    /// Bump and return the cumulative wait threshold for reduction-exchange
    /// round `k`.
    pub(crate) fn bump_r_round(&mut self, k: usize) -> u64 {
        if self.r_rounds.len() <= k {
            self.r_rounds.resize(k + 1, 0);
        }
        self.r_rounds[k] += 1;
        self.r_rounds[k]
    }

    /// Bump and return the cumulative wait threshold for the chunk stream
    /// of intranode set position `pos`.
    pub(crate) fn bump_chunk(&mut self, pos: usize) -> u64 {
        if self.chunk_streams.len() <= pos {
            self.chunk_streams.resize(pos + 1, 0);
        }
        self.chunk_streams[pos] += 1;
        self.chunk_streams[pos]
    }
}

/// The per-image communication context of one team. See the module docs.
pub struct TeamComm {
    pub(crate) fabric: ArcFabric,
    pub(crate) me: ProcId,
    pub(crate) rank: usize,
    pub(crate) members: Arc<Vec<ProcId>>,
    pub(crate) hier: Arc<HierarchyView>,
    /// Configuration as given (pre-resolution), inherited by subteams.
    raw_cfg: CollectiveConfig,
    /// Algorithms resolved against this team's hierarchy.
    pub(crate) barrier_algo: BarrierAlgo,
    pub(crate) reduce_algo: ReduceAlgo,
    pub(crate) bcast_algo: BcastAlgo,
    pub(crate) gather_algo: GatherAlgo,
    /// Size thresholds for the (hierarchy × message size) `Auto` policy,
    /// derived from the fabric's cost model at formation.
    pub(crate) policy: SizePolicy,
    pub(crate) layout: FlagLayout,
    pub(crate) rsrc: Vec<MemberRsrc>,
    pub(crate) epochs: Epochs,
    /// Current scratch slot size in bytes (0 = scratch not yet allocated).
    pub(crate) scratch_slot_bytes: usize,
    /// Current gather/scatter slot size in bytes (0 = not yet allocated).
    pub(crate) gather_slot_bytes: usize,
    /// Largest intranode-set size, fixed at formation (scratch layout).
    pub(crate) local_max: usize,
    /// Workhorse byte buffers (reused across collective calls).
    pub(crate) buf: Vec<u8>,
    pub(crate) buf2: Vec<u8>,
    /// Staging buffer for raw-byte assembly (control-plane allgather,
    /// gather/scatter forwarding) — grow-only capacity, so steady-state
    /// collective calls allocate nothing.
    pub(crate) stage: Vec<u8>,
    /// Active-message sender for the small-message hot paths, present when
    /// [`CollectiveConfig::am`] (or `CAF_AM=1`) enabled routing at
    /// formation. Behind a mutex because [`TeamComm::add_flag`] takes
    /// `&self`; only this image's thread ever takes it.
    pub(crate) am: Option<std::sync::Mutex<Am>>,
}

impl TeamComm {
    // ------------------------------------------------------------------
    // Formation
    // ------------------------------------------------------------------

    /// Create the initial team spanning every image of `fabric`.
    ///
    /// Collective: every image must call it, once, before any other team
    /// operation. `boot_epoch` is this image's bootstrap-barrier counter
    /// (start at 0 and reuse the same counter for any further
    /// `create_initial` on the same fabric).
    pub fn create_initial(
        fabric: ArcFabric,
        me: ProcId,
        cfg: CollectiveConfig,
        boot_epoch: &mut u64,
    ) -> Self {
        let n = fabric.n_images();
        let members: Arc<Vec<ProcId>> = Arc::new((0..n).map(ProcId).collect());
        let hier = Arc::new(HierarchyView::build(fabric.image_map(), &members));
        let local_max = hier.sets().iter().map(|s| s.len()).max().unwrap_or(1);
        let layout = FlagLayout::new(n, local_max);
        let flags = fabric.alloc_flags(me, layout.total());
        let exch = fabric.alloc_segment(me, n * EXCH_SLOT);

        // Publish (flags, exch) through the bootstrap segment; slot = sender.
        let mut slot = [0u8; bootstrap::SLOT_BYTES];
        slot[0..8].copy_from_slice(&(flags.0 as u64).to_ne_bytes());
        slot[8..16].copy_from_slice(&(exch.0 as u64).to_ne_bytes());
        for j in 0..n {
            fabric.put(
                me,
                ProcId(j),
                bootstrap::SEG,
                me.index() * bootstrap::SLOT_BYTES,
                &slot,
            );
        }
        bootstrap::control_barrier(&*fabric, me, boot_epoch);

        let mut all = vec![0u8; n * bootstrap::SLOT_BYTES];
        fabric.get(me, me, bootstrap::SEG, 0, &mut all);
        let rsrc: Vec<MemberRsrc> = (0..n)
            .map(|j| {
                let base = j * bootstrap::SLOT_BYTES;
                let f = u64::from_ne_bytes(all[base..base + 8].try_into().expect("8"));
                let e = u64::from_ne_bytes(all[base + 8..base + 16].try_into().expect("8"));
                MemberRsrc {
                    flags: FlagId(f as usize),
                    exch: SegmentId(e as usize),
                    scratch: SegmentId(usize::MAX),
                    gather: SegmentId(usize::MAX),
                }
            })
            .collect();
        // Nobody may reuse the bootstrap slots until everyone has read them.
        bootstrap::control_barrier(&*fabric, me, boot_epoch);

        Self::assemble(fabric, me, me.index(), members, hier, cfg, layout, rsrc)
    }

    /// Create a team spanning an explicit member list **without** a parent
    /// team — the formation path of `form_recovery_team()`. Every member
    /// passes the same `members` list (each survivor computes it locally
    /// from `Fabric::alive_images`, so no agreement protocol is needed)
    /// and a fresh `boot_epoch` counter matching the post-heal flag state.
    ///
    /// Identical in mechanism to [`TeamComm::create_initial`] — bootstrap
    /// slots indexed by global rank, two control barriers around the id
    /// exchange — except both barriers run only over `members`, with
    /// `members[0]` as leader, so a dead rank 0 (or a whole dead node)
    /// cannot block formation. Ranks in the new team are dense: member `i`
    /// of the list becomes team rank `i`.
    pub fn create_among(
        fabric: ArcFabric,
        me: ProcId,
        members: Vec<ProcId>,
        cfg: CollectiveConfig,
        boot_epoch: &mut u64,
    ) -> Self {
        let rank = members
            .iter()
            .position(|&p| p == me)
            .expect("create_among: caller must be in the member list");
        let members: Arc<Vec<ProcId>> = Arc::new(members);
        let m = members.len();
        let hier = Arc::new(HierarchyView::build(fabric.image_map(), &members));
        let local_max = hier.sets().iter().map(|s| s.len()).max().unwrap_or(1);
        let layout = FlagLayout::new(m, local_max);
        let flags = fabric.alloc_flags(me, layout.total());
        let exch = fabric.alloc_segment(me, m * EXCH_SLOT);

        // Publish (flags, exch) through the bootstrap segment, slot = the
        // sender's *global* rank (the segment spans all images by size).
        let mut slot = [0u8; bootstrap::SLOT_BYTES];
        slot[0..8].copy_from_slice(&(flags.0 as u64).to_ne_bytes());
        slot[8..16].copy_from_slice(&(exch.0 as u64).to_ne_bytes());
        for &j in members.iter() {
            fabric.put(
                me,
                j,
                bootstrap::SEG,
                me.index() * bootstrap::SLOT_BYTES,
                &slot,
            );
        }
        bootstrap::control_barrier_among(&*fabric, me, &members, boot_epoch);

        let mut all = vec![0u8; fabric.n_images() * bootstrap::SLOT_BYTES];
        fabric.get(me, me, bootstrap::SEG, 0, &mut all);
        let rsrc: Vec<MemberRsrc> = members
            .iter()
            .map(|p| {
                let base = p.index() * bootstrap::SLOT_BYTES;
                let f = u64::from_ne_bytes(all[base..base + 8].try_into().expect("8"));
                let e = u64::from_ne_bytes(all[base + 8..base + 16].try_into().expect("8"));
                MemberRsrc {
                    flags: FlagId(f as usize),
                    exch: SegmentId(e as usize),
                    scratch: SegmentId(usize::MAX),
                    gather: SegmentId(usize::MAX),
                }
            })
            .collect();
        // Nobody may reuse the bootstrap slots until everyone has read them.
        bootstrap::control_barrier_among(&*fabric, me, &members, boot_epoch);

        Self::assemble(fabric, me, rank, members, hier, cfg, layout, rsrc)
    }

    /// Split the parent team into subteams by `team_number` — the runtime's
    /// `form team` statement. Collective over the **parent** team: every
    /// parent member calls it, supplying its chosen number and optional
    /// 1-based `new_index` within its new team.
    ///
    /// Returns this image's new team. Ordering within a subteam follows
    /// `new_index` when given (all members of a subteam must then supply
    /// distinct indices forming 1..=m), else parent rank order.
    pub fn create_sub(
        &mut self,
        team_number: i64,
        new_index: Option<usize>,
        cfg: Option<CollectiveConfig>,
    ) -> TeamComm {
        let cfg = cfg.unwrap_or(self.raw_cfg);
        // Round 1: gather everyone's (number, key, has_index).
        let key = new_index.unwrap_or(0) as u64;
        let g1 = self.allgather4([team_number as u64, key, new_index.is_some() as u64, 0]);

        // My subteam: parent ranks with my number, ordered by key or rank.
        let mut group: Vec<(usize, u64, bool)> = g1
            .iter()
            .enumerate()
            .filter(|(_, v)| v[0] as i64 == team_number)
            .map(|(r, v)| (r, v[1], v[2] != 0))
            .collect();
        let any_index = group.iter().any(|(_, _, h)| *h);
        if any_index {
            assert!(
                group.iter().all(|(_, _, h)| *h),
                "form_team: some but not all members of team {team_number} gave a new_index"
            );
            group.sort_by_key(|&(r, k, _)| (k, r));
            let m = group.len();
            for (i, &(_, k, _)) in group.iter().enumerate() {
                assert_eq!(
                    k as usize,
                    i + 1,
                    "form_team: new_index values for team {team_number} must be a permutation of 1..={m}"
                );
            }
        } else {
            group.sort_by_key(|&(r, _, _)| r);
        }
        let parent_ranks: Vec<usize> = group.iter().map(|&(r, _, _)| r).collect();
        let members: Arc<Vec<ProcId>> =
            Arc::new(parent_ranks.iter().map(|&r| self.members[r]).collect());
        let my_new_rank = parent_ranks
            .iter()
            .position(|&r| r == self.rank)
            .expect("caller is in its own subteam");

        // Allocate my new team's resources and exchange ids parent-wide.
        // (The hierarchy is needed first: the flag block includes per-set-
        // position chunk-stream flags sized by the largest intranode set.)
        let m = members.len();
        let hier = Arc::new(HierarchyView::build(self.fabric.image_map(), &members));
        let local_max = hier.sets().iter().map(|s| s.len()).max().unwrap_or(1);
        let layout = FlagLayout::new(m, local_max);
        let flags = self.fabric.alloc_flags(self.me, layout.total());
        let exch = self.fabric.alloc_segment(self.me, m * EXCH_SLOT);
        let g2 = self.allgather4([flags.0 as u64, exch.0 as u64, 0, 0]);

        let rsrc: Vec<MemberRsrc> = parent_ranks
            .iter()
            .map(|&r| MemberRsrc {
                flags: FlagId(g2[r][0] as usize),
                exch: SegmentId(g2[r][1] as usize),
                scratch: SegmentId(usize::MAX),
                gather: SegmentId(usize::MAX),
            })
            .collect();

        Self::assemble(
            self.fabric.clone(),
            self.me,
            my_new_rank,
            members,
            hier,
            cfg,
            layout,
            rsrc,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        fabric: ArcFabric,
        me: ProcId,
        rank: usize,
        members: Arc<Vec<ProcId>>,
        hier: Arc<HierarchyView>,
        cfg: CollectiveConfig,
        layout: FlagLayout,
        rsrc: Vec<MemberRsrc>,
    ) -> Self {
        let local_max = layout.lm;
        let policy = SizePolicy::from_cost(fabric.cost());
        let am_on = cfg.am
            || std::env::var("CAF_AM")
                .map(|v| v.trim() == "1")
                .unwrap_or(false);
        let am = am_on.then(|| {
            std::sync::Mutex::new(Am::new(
                fabric.clone(),
                me,
                AmPolicy::from_cost(fabric.cost()),
            ))
        });
        Self {
            am,
            barrier_algo: cfg.barrier.resolve(&hier),
            reduce_algo: cfg.reduce.resolve(&hier),
            bcast_algo: cfg.bcast.resolve(&hier),
            gather_algo: cfg.gather.resolve(&hier),
            raw_cfg: cfg,
            policy,
            fabric,
            me,
            rank,
            members,
            hier,
            layout,
            rsrc,
            epochs: Epochs::default(),
            scratch_slot_bytes: 0,
            gather_slot_bytes: 0,
            local_max,
            buf: Vec::new(),
            buf2: Vec::new(),
            stage: Vec::new(),
        }
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// This image's 0-based rank within the team.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of images in the team.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Process of team rank `r` — the paper's image-index mapping array.
    pub fn proc_of(&self, r: usize) -> ProcId {
        self.members[r]
    }

    /// The member list (rank → process).
    pub fn members(&self) -> &Arc<Vec<ProcId>> {
        &self.members
    }

    /// The team's two-level decomposition.
    pub fn hierarchy(&self) -> &HierarchyView {
        &self.hier
    }

    /// The fabric this team communicates through.
    pub fn fabric(&self) -> &ArcFabric {
        &self.fabric
    }

    /// Resolved barrier algorithm for this team.
    pub fn barrier_algorithm(&self) -> BarrierAlgo {
        self.barrier_algo
    }

    /// Resolved reduction algorithm for this team.
    pub fn reduce_algorithm(&self) -> ReduceAlgo {
        self.reduce_algo
    }

    /// Resolved broadcast algorithm for this team.
    pub fn bcast_algorithm(&self) -> BcastAlgo {
        self.bcast_algo
    }

    /// Resolved gather/scatter algorithm for this team.
    pub fn gather_algorithm(&self) -> GatherAlgo {
        self.gather_algo
    }

    /// The size thresholds governing `Auto` algorithm selection.
    pub fn size_policy(&self) -> SizePolicy {
        self.policy
    }

    /// Override the size thresholds (benchmarks and tests; normal users
    /// keep the cost-model-derived defaults). Collective in effect: all
    /// members must install the same policy before the next collective.
    pub fn set_size_policy(&mut self, policy: SizePolicy) {
        self.policy = policy;
    }

    /// Broadcast algorithm for a payload of `bytes` — the per-call half of
    /// the `Auto` policy (the hierarchy half was resolved at formation).
    pub(crate) fn bcast_algo_for(&self, bytes: usize) -> BcastAlgo {
        self.raw_cfg
            .bcast
            .resolve_sized(&self.hier, bytes, &self.policy)
    }

    /// Reduction algorithm for a payload of `bytes`.
    pub(crate) fn reduce_algo_for(&self, bytes: usize) -> ReduceAlgo {
        self.raw_cfg
            .reduce
            .resolve_sized(&self.hier, bytes, &self.policy)
    }

    /// Elements per pipeline chunk for an element size of `elem` bytes.
    pub(crate) fn chunk_elems(&self, elem: usize) -> usize {
        (self.policy.chunk_bytes / elem.max(1)).max(1)
    }

    // ------------------------------------------------------------------
    // Collectives (public API)
    // ------------------------------------------------------------------

    /// Team barrier (`sync all` / `sync team`), using the algorithm
    /// resolved at formation.
    pub fn barrier(&mut self) {
        crate::barrier::barrier(self);
        // The algorithm's last act may be a buffered release storm (e.g.
        // the central-counter root): hand it to the fabric before
        // returning, or the waiting members never see it.
        self.flush_am();
    }

    /// Element-wise allreduce of `buf` with a user operation — CAF
    /// `co_reduce`. `f` must be commutative and associative; the
    /// hierarchical algorithms reorder combinations freely.
    pub fn co_reduce_with<T: CoValue>(&mut self, buf: &mut [T], f: impl Fn(T, T) -> T) {
        crate::reduce::allreduce(self, buf, &f);
        self.flush_am();
    }

    /// Element-wise intrinsic reduction (CAF `co_sum`/`co_min`/`co_max`).
    pub fn co_reduce<T: CoNumeric>(&mut self, buf: &mut [T], op: CoOp) {
        self.co_reduce_with(buf, |a, b| op.apply(a, b));
    }

    /// CAF `co_sum`: element-wise sum across the team, result everywhere.
    pub fn co_sum<T: CoNumeric>(&mut self, buf: &mut [T]) {
        self.co_reduce(buf, CoOp::Sum);
    }

    /// CAF `co_min`.
    pub fn co_min<T: CoNumeric>(&mut self, buf: &mut [T]) {
        self.co_reduce(buf, CoOp::Min);
    }

    /// CAF `co_max`.
    pub fn co_max<T: CoNumeric>(&mut self, buf: &mut [T]) {
        self.co_reduce(buf, CoOp::Max);
    }

    /// CAF `co_broadcast`: `buf` on team rank `root` is replicated into
    /// every member's `buf`.
    pub fn co_broadcast<T: CoValue>(&mut self, buf: &mut [T], root: usize) {
        crate::bcast::broadcast(self, buf, root);
        self.flush_am();
    }

    /// Gather `mine` from every member to team rank `root`; the root
    /// receives the concatenation in team-rank order (`None` elsewhere).
    /// Extension collective (see `gather.rs`).
    pub fn co_gather<T: CoValue>(&mut self, mine: &[T], root: usize) -> Option<Vec<T>> {
        let out = crate::gather::gather(self, mine, root);
        self.flush_am();
        out
    }

    /// Scatter from team rank `root`: the root supplies `n·out.len()`
    /// elements, member `r` receives slice `r` into `out`.
    /// Extension collective (see `gather.rs`).
    pub fn co_scatter<T: CoValue>(&mut self, all: Option<&[T]>, out: &mut [T], root: usize) {
        crate::gather::scatter(self, all, out, root);
        self.flush_am();
    }

    /// All-to-all personalized exchange: `send` holds `n` slices of `len`
    /// elements (slice `j` for team rank `j`); the result holds slice `r`'s
    /// payload from every rank `r`, in rank order — the distributed
    /// transpose. Extension collective (see `gather.rs`).
    ///
    /// Uses a ring schedule (`(rank + k) mod n` at step `k`) so every
    /// image sends and receives exactly one slice per step, and finishes
    /// with a team barrier that fences the exchange region for the next
    /// era (all-to-all has no root to run a release wave through).
    pub fn co_alltoall<T: CoValue>(&mut self, send: &[T], len: usize) -> Vec<T> {
        let out = crate::gather::alltoall(self, send, len);
        self.flush_am();
        out
    }

    // ------------------------------------------------------------------
    // Control plane (used by formation, scratch growth, and the runtime)
    // ------------------------------------------------------------------

    /// Exchange four `u64`s with every team member; returns the values
    /// indexed by team rank.
    ///
    /// Implemented as a binomial-tree gather to rank 0 followed by a tree
    /// broadcast of the combined array — 2(n−1) messages in 2·log n depth
    /// (a flat exchange would be n² messages, which dominates team-
    /// formation cost at scale). A trailing control barrier fences the
    /// exchange slots for reuse.
    pub fn allgather4(&mut self, vals: [u64; 4]) -> Vec<[u64; 4]> {
        // Clear-lowest-bit binomial tree: parent(v) = v & (v-1); the
        // subtree of v is the contiguous range [v, v + lowbit(v)) — which
        // is what lets each gather hop ship one contiguous slot range.
        let lowbit = |v: usize| v & v.wrapping_neg();
        let parent_of = |v: usize| v & (v - 1);
        let children_of = |v: usize, n: usize| -> Vec<usize> {
            let cap = if v == 0 { n } else { lowbit(v) };
            let mut out = Vec::new();
            let mut k = 1usize;
            while k < cap && v + k < n {
                out.push(v + k);
                k <<= 1;
            }
            out
        };
        let n = self.size();
        self.epochs.exch_tree += 1;
        let era = self.epochs.exch_tree;

        // My own slot stays in local memory: only *remote* contributions
        // ever touch the exchange segment, so no fabric round-trips to
        // self are paid for my own four words.
        let mut slot = [0u8; EXCH_SLOT];
        for (i, v) in vals.iter().enumerate() {
            slot[i * 8..(i + 1) * 8].copy_from_slice(&v.to_ne_bytes());
        }
        if n == 1 {
            self.control_barrier();
            return vec![vals];
        }
        let my_exch = self.rsrc[self.rank].exch;
        let v = self.rank;
        let children = children_of(v, n);
        // Gather: wait for each child's subtree, then ship my whole
        // contiguous subtree range — my slot from memory, the children's
        // ranges from my exchange segment — to my parent.
        if !children.is_empty() {
            self.wait_flag(flag::EXCH_GATHER, children.len() as u64 * era);
        }
        if v != 0 {
            let parent = parent_of(v);
            let hi = (v + lowbit(v)).min(n);
            let bytes = (hi - v) * EXCH_SLOT;
            let mut sub = self.take_stage(bytes);
            sub[..EXCH_SLOT].copy_from_slice(&slot);
            if hi > v + 1 {
                self.fabric.get(
                    self.me,
                    self.me,
                    my_exch,
                    (v + 1) * EXCH_SLOT,
                    &mut sub[EXCH_SLOT..],
                );
            }
            self.fabric.put(
                self.me,
                self.members[parent],
                self.rsrc[parent].exch,
                v * EXCH_SLOT,
                &sub,
            );
            self.add_flag(parent, flag::EXCH_GATHER, 1);
            self.restore_stage(sub);
            // Broadcast: wait for the combined array from my parent.
            self.wait_flag(flag::EXCH_BCAST, era);
        }
        // Assemble the full array once: remote contributions from my
        // exchange segment (children's subtrees at the root; the parent's
        // forwarded array elsewhere), my own slot from memory.
        let mut full = self.take_stage(n * EXCH_SLOT);
        if v == 0 {
            self.fabric
                .get(self.me, self.me, my_exch, EXCH_SLOT, &mut full[EXCH_SLOT..]);
        } else {
            self.fabric.get(self.me, self.me, my_exch, 0, &mut full);
        }
        full[v * EXCH_SLOT..(v + 1) * EXCH_SLOT].copy_from_slice(&slot);
        // Forward the full array to my children and decode it locally.
        for &c in &children {
            self.fabric
                .put(self.me, self.members[c], self.rsrc[c].exch, 0, &full);
            self.add_flag(c, flag::EXCH_BCAST, 1);
        }
        let out: Vec<[u64; 4]> = (0..n)
            .map(|j| {
                let mut v = [0u64; 4];
                for (i, vi) in v.iter_mut().enumerate() {
                    let base = j * EXCH_SLOT + i * 8;
                    *vi = u64::from_ne_bytes(full[base..base + 8].try_into().expect("8"));
                }
                v
            })
            .collect();
        self.restore_stage(full);
        // Fence: nobody starts the next exchange into these slots until
        // everyone has read this one.
        self.control_barrier();
        out
    }

    /// A plain central-counter barrier on the team's control flags. Used by
    /// the control plane so that benchmarked collectives keep their own
    /// flag history clean.
    pub fn control_barrier(&mut self) {
        self.epochs.exch += 1;
        let e = self.epochs.exch;
        let n = self.size() as u64;
        if n == 1 {
            return;
        }
        if self.rank == 0 {
            self.wait_flag(flag::EXCH_COUNTER, (n - 1) * e);
            for j in 1..n as usize {
                self.add_flag(j, flag::EXCH_RELEASE, 1);
            }
            // The release storm is the barrier's last act; with the AM
            // tier on it is sitting in per-destination buffers right now.
            self.flush_am();
        } else {
            self.add_flag(0, flag::EXCH_COUNTER, 1);
            self.wait_flag(flag::EXCH_RELEASE, e);
        }
    }

    // ------------------------------------------------------------------
    // Internal plumbing for the algorithm modules
    // ------------------------------------------------------------------

    /// Team tag for trace records: `first_member << 32 | size`. Stable for
    /// the team's life, distinct across sibling teams (their first members
    /// differ), and decodable without a registry.
    pub fn trace_tag(&self) -> u64 {
        ((self.members[0].index() as u64) << 32) | self.members.len() as u64
    }

    /// Fabric clock for a collective span's start/end, or 0 when tracing is
    /// off (spares the clock read — on the simulator, a lock acquisition —
    /// per collective call in untraced runs).
    pub(crate) fn trace_now(&self) -> u64 {
        if self.fabric.tracer().enabled() {
            self.fabric.now_ns(self.me)
        } else {
            0
        }
    }

    /// Record a collective-layer trace event on this image's ring.
    pub(crate) fn trace(&self, ev: Event) {
        self.fabric.tracer().record(self.me.index(), ev);
    }

    /// Notify team rank `to`: add `delta` to its flag `idx`. Routed through
    /// the active-message tier when it is on — the batcher coalesces a
    /// storm of these (the barrier release wave, the TDLB gather) into one
    /// delivery per destination.
    pub(crate) fn add_flag(&self, to: usize, idx: usize, delta: u64) {
        let dst = self.members[to];
        let flag = self.rsrc[to].flags.nth(idx);
        if let Some(am) = &self.am {
            am.lock().expect("am sender").flag_add(dst, flag, delta);
        } else {
            self.fabric.flag_add(self.me, dst, flag, delta);
        }
    }

    /// Wait until my flag `idx` is ≥ `target`. Flushes the AM buffers
    /// first: a buffered notification must never strand the peer whose
    /// bump this wait depends on.
    pub(crate) fn wait_flag(&self, idx: usize, target: u64) {
        self.flush_am();
        self.fabric
            .flag_wait_ge(self.me, self.rsrc[self.rank].flags.nth(idx), target);
    }

    /// Flush every buffered active message (no-op with the AM tier off or
    /// nothing pending). Every blocking wait and every public collective
    /// exit runs through this, so a buffered flag can never outlive the
    /// call that injected it.
    pub(crate) fn flush_am(&self) {
        if let Some(am) = &self.am {
            am.lock().expect("am sender").flush();
        }
    }

    /// Whether the active-message tier is routing this team's flag traffic.
    pub fn am_enabled(&self) -> bool {
        self.am.is_some()
    }

    /// Borrow the comm-owned staging buffer, sized to `len` bytes
    /// (contents unspecified). Return it with [`Self::restore_stage`];
    /// the backing allocation is kept across calls.
    pub(crate) fn take_stage(&mut self, len: usize) -> Vec<u8> {
        let mut b = std::mem::take(&mut self.stage);
        b.resize(len, 0);
        b
    }

    /// Return the staging buffer taken with [`Self::take_stage`].
    pub(crate) fn restore_stage(&mut self, b: Vec<u8>) {
        self.stage = b;
    }

    /// Grow (collectively) the team scratch so each slot holds `slot_bytes`.
    /// Collective: all members must request the same size (they do, because
    /// collectives are called with matching buffers — asserted via the
    /// exchange).
    pub(crate) fn ensure_scratch(&mut self, slot_bytes: usize) {
        if self.scratch_slot_bytes >= slot_bytes {
            return;
        }
        let new_slot = slot_bytes.next_power_of_two().max(64);
        let slots = self.scratch_slots();
        let seg = self.fabric.alloc_segment(self.me, slots * new_slot);
        let g = self.allgather4([seg.0 as u64, new_slot as u64, 0, 0]);
        for (j, v) in g.iter().enumerate() {
            assert_eq!(
                v[1] as usize, new_slot,
                "scratch growth disagreement: rank {j} wants {} bytes, rank {} wants {new_slot}",
                v[1], self.rank
            );
            self.rsrc[j].scratch = SegmentId(v[0] as usize);
        }
        self.scratch_slot_bytes = new_slot;
    }

    /// Number of scratch slots in the team layout.
    fn scratch_slots(&self) -> usize {
        2 * self.layout.d + 2 * self.local_max + 8
    }

    /// Byte offset of recursive-doubling slot for round `k`, parity `p`.
    pub(crate) fn sl_rd(&self, k: usize, p: usize) -> usize {
        debug_assert!(k < self.layout.d && p < 2);
        (2 * k + p) * self.scratch_slot_bytes
    }

    /// Byte offset of the intranode gather slot for set position `pos`.
    pub(crate) fn sl_gather(&self, pos: usize, p: usize) -> usize {
        debug_assert!(pos < self.local_max && p < 2);
        (2 * self.layout.d + 2 * pos + p) * self.scratch_slot_bytes
    }

    /// Byte offset of the fold-in (pre) slot.
    pub(crate) fn sl_pre(&self, p: usize) -> usize {
        (2 * self.layout.d + 2 * self.local_max + p) * self.scratch_slot_bytes
    }

    /// Byte offset of the fold-out (post) slot.
    pub(crate) fn sl_post(&self, p: usize) -> usize {
        self.sl_pre(p) + 2 * self.scratch_slot_bytes
    }

    /// Byte offset of the broadcast payload slot.
    pub(crate) fn sl_bcast(&self, p: usize) -> usize {
        self.sl_pre(p) + 4 * self.scratch_slot_bytes
    }

    /// Byte offset of the reduction release slot.
    pub(crate) fn sl_release(&self, p: usize) -> usize {
        self.sl_pre(p) + 6 * self.scratch_slot_bytes
    }

    /// Grow (collectively) the gather/scatter region: `n` slots of
    /// `slot_bytes` on every member.
    pub(crate) fn ensure_gather(&mut self, slot_bytes: usize) {
        if self.gather_slot_bytes >= slot_bytes {
            return;
        }
        let new_slot = slot_bytes.next_power_of_two().max(64);
        let seg = self.fabric.alloc_segment(self.me, self.size() * new_slot);
        let g = self.allgather4([seg.0 as u64, new_slot as u64, 1, 0]);
        for (j, v) in g.iter().enumerate() {
            assert_eq!(
                v[1] as usize, new_slot,
                "gather-region growth disagreement at rank {j}"
            );
            self.rsrc[j].gather = SegmentId(v[0] as usize);
        }
        self.gather_slot_bytes = new_slot;
    }

    /// Serialize `src` into team rank `to`'s gather region at slot `slot`.
    pub(crate) fn send_values_gather<T: CoValue>(&mut self, to: usize, slot: usize, src: &[T]) {
        debug_assert!(self.gather_slot_bytes > 0, "gather region not allocated");
        let off = slot * self.gather_slot_bytes;
        let mut b = std::mem::take(&mut self.buf);
        slice_to_bytes(src, &mut b);
        self.fabric
            .put(self.me, self.members[to], self.rsrc[to].gather, off, &b);
        self.buf = b;
    }

    /// Raw byte put into team rank `to`'s gather region.
    pub(crate) fn put_gather_raw(&self, to: usize, off: usize, bytes: &[u8]) {
        self.fabric
            .put(self.me, self.members[to], self.rsrc[to].gather, off, bytes);
    }

    /// Read raw bytes from my own gather region.
    pub(crate) fn read_my_gather(&self, off: usize, out: &mut [u8]) {
        self.fabric
            .get(self.me, self.me, self.rsrc[self.rank].gather, off, out);
    }

    /// Read my gather slot at byte offset `off` into `buf` (overwrite).
    pub(crate) fn load_from_gather<T: CoValue>(&mut self, off: usize, buf: &mut [T]) {
        let nbytes = buf.len() * T::SIZE;
        let mut b = std::mem::take(&mut self.buf2);
        b.resize(nbytes, 0);
        self.read_my_gather(off, &mut b);
        bytes_to_slice(&b, buf);
        self.buf2 = b;
    }

    /// Put `bytes` into team rank `to`'s scratch at byte offset `off`.
    pub(crate) fn put_scratch(&self, to: usize, off: usize, bytes: &[u8]) {
        debug_assert!(self.scratch_slot_bytes > 0, "scratch not allocated");
        self.fabric
            .put(self.me, self.members[to], self.rsrc[to].scratch, off, bytes);
    }

    /// Read `out.len()` bytes from my own scratch at byte offset `off`.
    pub(crate) fn read_my_scratch(&self, off: usize, out: &mut [u8]) {
        self.fabric
            .get(self.me, self.me, self.rsrc[self.rank].scratch, off, out);
    }

    /// Serialize `src` and put it into team rank `to`'s scratch at byte
    /// offset `off` (the workhorse data-plane send of every collective).
    pub(crate) fn send_values<T: CoValue>(&mut self, to: usize, off: usize, src: &[T]) {
        let mut b = std::mem::take(&mut self.buf);
        slice_to_bytes(src, &mut b);
        self.put_scratch(to, off, &b);
        self.buf = b;
    }

    /// Nonblocking variant of [`Self::send_values`]: the put is *injected*
    /// but the wire time is not paid by the initiator. The pipelined
    /// collectives rely on the fabric's point-to-point ordering guarantee
    /// — a flag posted to the same target after this call lands after the
    /// payload — so the returned token normally goes unused; `quiet`
    /// drains anything still in flight.
    pub(crate) fn send_values_nb<T: CoValue>(
        &mut self,
        to: usize,
        off: usize,
        src: &[T],
    ) -> PutToken {
        debug_assert!(self.scratch_slot_bytes > 0, "scratch not allocated");
        let mut b = std::mem::take(&mut self.buf);
        slice_to_bytes(src, &mut b);
        let tok = self
            .fabric
            .put_nb(self.me, self.members[to], self.rsrc[to].scratch, off, &b);
        self.buf = b;
        tok
    }

    /// Read my scratch slot at `off` and combine it element-wise into `buf`.
    pub(crate) fn combine_from_scratch<T: CoValue>(
        &mut self,
        off: usize,
        buf: &mut [T],
        f: &impl Fn(T, T) -> T,
    ) {
        let nbytes = buf.len() * T::SIZE;
        let mut b = std::mem::take(&mut self.buf2);
        b.resize(nbytes, 0);
        self.read_my_scratch(off, &mut b);
        for (i, slot) in buf.iter_mut().enumerate() {
            let v = T::load(&b[i * T::SIZE..(i + 1) * T::SIZE]);
            *slot = f(*slot, v);
        }
        self.buf2 = b;
    }

    /// Read my scratch slot at `off` into `buf` (overwrite).
    pub(crate) fn load_from_scratch<T: CoValue>(&mut self, off: usize, buf: &mut [T]) {
        let nbytes = buf.len() * T::SIZE;
        let mut b = std::mem::take(&mut self.buf2);
        b.resize(nbytes, 0);
        self.read_my_scratch(off, &mut b);
        bytes_to_slice(&b, buf);
        self.buf2 = b;
    }
}
