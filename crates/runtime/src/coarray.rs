//! Coarrays: symmetric data objects with square-bracket remote access.
//!
//! `A(:)[k] = B(:)` in Coarray Fortran is `a.put(k, 0, &b)` here; the
//! 1-sided semantics, the 1-based image index, and the "allocated over the
//! current team" rule all match the language. Atomic subroutines
//! (`atomic_add`, `atomic_cas`, …) are provided on `u64` cells.

use caf_collectives::{CoValue, TeamComm};
use caf_fabric::{ArcFabric, SegmentId};
use caf_topology::ProcId;
use std::marker::PhantomData;
use std::sync::Arc;

/// A coarray of `len` elements of `T` on every image of the team that
/// allocated it. Cloneable: clones refer to the same storage.
#[derive(Clone)]
pub struct Coarray<T: CoValue> {
    fabric: ArcFabric,
    me: ProcId,
    my_rank: usize,
    members: Arc<Vec<ProcId>>,
    /// Per team rank: that member's segment id.
    segs: Arc<Vec<SegmentId>>,
    len: usize,
    _t: PhantomData<T>,
}

impl<T: CoValue> Coarray<T> {
    /// Collective allocation over `comm`'s team (every member calls with
    /// the same `len`).
    pub(crate) fn allocate(fabric: ArcFabric, me: ProcId, comm: &mut TeamComm, len: usize) -> Self {
        let seg = fabric.alloc_segment(me, len * T::SIZE);
        let g = comm.allgather4([seg.0 as u64, len as u64, T::SIZE as u64, 0]);
        let segs: Vec<SegmentId> = g
            .iter()
            .enumerate()
            .map(|(j, v)| {
                assert_eq!(
                    v[1] as usize, len,
                    "coarray allocation mismatch: rank {j} allocated {} elems, expected {len}",
                    v[1]
                );
                assert_eq!(
                    v[2] as usize,
                    T::SIZE,
                    "coarray element size mismatch at rank {j}"
                );
                SegmentId(v[0] as usize)
            })
            .collect();
        Self {
            fabric,
            me,
            my_rank: comm.rank(),
            members: comm.members().clone(),
            segs: Arc::new(segs),
            len,
            _t: PhantomData,
        }
    }

    /// Elements per image.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the coarray holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of images the coarray spans (the allocating team's size).
    pub fn team_size(&self) -> usize {
        self.members.len()
    }

    /// My 1-based image index within the allocating team.
    pub fn this_image(&self) -> usize {
        self.my_rank + 1
    }

    fn target(&self, image1: usize) -> (ProcId, SegmentId) {
        assert!(
            (1..=self.members.len()).contains(&image1),
            "coarray image index {image1} outside team of {}",
            self.members.len()
        );
        (self.members[image1 - 1], self.segs[image1 - 1])
    }

    fn check_range(&self, start: usize, count: usize) {
        assert!(
            start + count <= self.len,
            "coarray range {start}..{} exceeds length {}",
            start + count,
            self.len
        );
    }

    /// `A(start+1 : start+data.len())[image1] = data` — one-sided write.
    pub fn put(&self, image1: usize, start: usize, data: &[T]) {
        self.check_range(start, data.len());
        let (proc, seg) = self.target(image1);
        let mut bytes = vec![0u8; data.len() * T::SIZE];
        caf_collectives::value::slice_to_bytes(data, &mut bytes);
        self.fabric.put(self.me, proc, seg, start * T::SIZE, &bytes);
    }

    /// `out = A(start+1 : start+out.len())[image1]` — one-sided read.
    pub fn get(&self, image1: usize, start: usize, out: &mut [T]) {
        self.check_range(start, out.len());
        let (proc, seg) = self.target(image1);
        let mut bytes = vec![0u8; out.len() * T::SIZE];
        self.fabric
            .get(self.me, proc, seg, start * T::SIZE, &mut bytes);
        caf_collectives::value::bytes_to_slice(&bytes, out);
    }

    /// Write a single element on a (possibly remote) image.
    pub fn put_elem(&self, image1: usize, idx: usize, value: T) {
        self.put(image1, idx, &[value]);
    }

    /// Read a single element from a (possibly remote) image.
    pub fn get_elem(&self, image1: usize, idx: usize) -> T {
        let mut out = [value_zeroed::<T>()];
        self.get(image1, idx, &mut out);
        out[0]
    }

    /// Overwrite my local slice.
    pub fn write_local(&self, data: &[T]) {
        assert_eq!(data.len(), self.len, "write_local length mismatch");
        self.put(self.this_image(), 0, data);
    }

    /// Copy my local slice out.
    pub fn read_local(&self) -> Vec<T> {
        let mut out = vec![value_zeroed::<T>(); self.len];
        self.get(self.this_image(), 0, &mut out);
        out
    }

    /// Raw bytes of my local slice — the unit of state a checkpoint
    /// snapshots (see [`crate::ImageCtx::checkpoint`]).
    pub fn local_bytes(&self) -> Vec<u8> {
        let data = self.read_local();
        let mut bytes = vec![0u8; data.len() * T::SIZE];
        caf_collectives::value::slice_to_bytes(&data, &mut bytes);
        bytes
    }

    /// Overwrite my local slice from bytes previously captured by
    /// [`Self::local_bytes`] (the checkpoint restore path).
    pub fn restore_local_bytes(&self, bytes: &[u8]) {
        assert_eq!(
            bytes.len(),
            self.len * T::SIZE,
            "restore_local_bytes length mismatch"
        );
        let mut data = vec![value_zeroed::<T>(); self.len];
        caf_collectives::value::bytes_to_slice(bytes, &mut data);
        self.write_local(&data);
    }
}

/// Zero-initialized value of a `CoValue` (all segments start zeroed, so
/// this is the natural fill).
fn value_zeroed<T: CoValue>() -> T {
    let bytes = vec![0u8; T::SIZE];
    T::load(&bytes)
}

impl Coarray<u64> {
    /// CAF `atomic_add(A[image1](idx), delta)` — no result.
    pub fn atomic_add(&self, image1: usize, idx: usize, delta: u64) {
        self.atomic_fetch_add(image1, idx, delta);
    }

    /// CAF `atomic_fetch_add`: returns the previous value.
    pub fn atomic_fetch_add(&self, image1: usize, idx: usize, delta: u64) -> u64 {
        self.check_range(idx, 1);
        let (proc, seg) = self.target(image1);
        self.fabric
            .amo_fetch_add_u64(self.me, proc, seg, idx * 8, delta)
    }

    /// CAF `atomic_cas`: returns the previous value (the swap happened iff
    /// it equals `expected`).
    pub fn atomic_cas(&self, image1: usize, idx: usize, expected: u64, new: u64) -> u64 {
        self.check_range(idx, 1);
        let (proc, seg) = self.target(image1);
        self.fabric
            .amo_cas_u64(self.me, proc, seg, idx * 8, expected, new)
    }

    /// CAF `atomic_ref`-style read (single atomic cell).
    pub fn atomic_read(&self, image1: usize, idx: usize) -> u64 {
        // A CAS with an impossible swap is a plain atomic read.
        self.atomic_cas(image1, idx, u64::MAX, u64::MAX)
    }
}
