//! Epoch-based checkpoint/rollback — the state half of survivable fleets.
//!
//! A [`CheckpointStore`] holds, per image, a sequence of epoch-numbered
//! snapshots of that image's application state (typically the raw bytes of
//! its coarray segments, via [`crate::Coarray::local_bytes`]). The runtime
//! entry points ([`crate::ImageCtx::checkpoint`] /
//! [`crate::ImageCtx::restore`]) wrap the store in the collective protocol:
//!
//! * **checkpoint(epoch)** — quiet + team barrier (so no one-sided traffic
//!   is in flight), snapshot, *atomic local commit* (write to a temp file,
//!   rename into place), then a completion barrier. A node dying at any
//!   point leaves every image's store either without the epoch or with it
//!   complete — never torn.
//! * **restore** — each member reports its latest locally committed epoch;
//!   a `co_min` resolves the **last globally complete epoch** (the largest
//!   epoch committed by *every* member of the restoring team); each image
//!   reloads its own snapshot at that epoch. Survivors and rejoiners run
//!   the same protocol: a respawned process finds its predecessor's
//!   snapshots in the file-backed store (`CAF_CKPT_DIR`).
//!
//! The two-phase structure is thus: phase 1 is the per-image atomic
//! rename-commit, phase 2 is the min-resolution at restore time. There is
//! no global commit record to tear.

use caf_fabric::RecoveryError;
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Environment variable naming the file-backed checkpoint directory. When
/// set, snapshots survive process death — required for `caf-launch
/// --respawn`, where the rejoined process must restore state its
/// predecessor wrote.
pub const ENV_CKPT_DIR: &str = "CAF_CKPT_DIR";

/// Magic header of a checkpoint file (version 1).
const CKPT_MAGIC: u64 = 0xCAF5_C4B7_0000_0001;

/// One image's snapshot at one epoch: the payload list its `snapshot`
/// closure produced, in order.
pub type SnapshotPayloads = Vec<Vec<u8>>;

/// Per-process store of epoch-numbered per-image snapshots. Shared by all
/// images a process hosts (`Arc` it across image threads); in-memory
/// always, mirrored to disk when built file-backed.
pub struct CheckpointStore {
    dir: Option<PathBuf>,
    /// `(image, epoch)` → payload list, for same-process restores.
    mem: Mutex<BTreeMap<(usize, u64), SnapshotPayloads>>,
    /// Committed epochs per image (in-memory view; disk is rescanned for
    /// epochs written by a dead predecessor process).
    committed: Mutex<BTreeMap<usize, BTreeSet<u64>>>,
}

impl CheckpointStore {
    /// An in-memory store: snapshots die with the process. Sufficient for
    /// shrinking-team recovery, where only survivors restore.
    pub fn in_memory() -> Self {
        Self {
            dir: None,
            mem: Mutex::new(BTreeMap::new()),
            committed: Mutex::new(BTreeMap::new()),
        }
    }

    /// A file-backed store under `dir` (created if missing): snapshots
    /// survive process death, so a respawned node can roll back to its
    /// predecessor's last committed epoch.
    pub fn file_backed(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir: Some(dir),
            mem: Mutex::new(BTreeMap::new()),
            committed: Mutex::new(BTreeMap::new()),
        })
    }

    /// File-backed under `$CAF_CKPT_DIR` when set (and creatable),
    /// in-memory otherwise.
    pub fn from_env() -> Self {
        match std::env::var(ENV_CKPT_DIR) {
            Ok(dir) if !dir.is_empty() => Self::file_backed(dir).unwrap_or_else(|e| {
                eprintln!("caf-runtime: cannot open {ENV_CKPT_DIR}: {e}; using in-memory store");
                Self::in_memory()
            }),
            _ => Self::in_memory(),
        }
    }

    /// True when snapshots survive process death.
    pub fn is_file_backed(&self) -> bool {
        self.dir.is_some()
    }

    fn final_path(dir: &Path, img: usize, epoch: u64) -> PathBuf {
        dir.join(format!("img{img}-epoch{epoch}.ckpt"))
    }

    /// Atomically commit image `img`'s snapshot for `epoch`. On a
    /// file-backed store the payloads are written to a temporary file and
    /// renamed into place, so a crash mid-write never leaves a readable
    /// half-epoch; the in-memory mirror is updated only after the rename
    /// succeeds.
    pub fn commit(&self, img: usize, epoch: u64, payloads: &[Vec<u8>]) -> std::io::Result<()> {
        if let Some(dir) = &self.dir {
            let tmp = dir.join(format!("img{img}-epoch{epoch}.ckpt.tmp"));
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&CKPT_MAGIC.to_le_bytes())?;
            f.write_all(&epoch.to_le_bytes())?;
            f.write_all(&(payloads.len() as u64).to_le_bytes())?;
            for p in payloads {
                f.write_all(&(p.len() as u64).to_le_bytes())?;
                f.write_all(p)?;
            }
            f.sync_all()?;
            drop(f);
            std::fs::rename(&tmp, Self::final_path(dir, img, epoch))?;
        }
        self.mem.lock().insert((img, epoch), payloads.to_vec());
        self.committed.lock().entry(img).or_default().insert(epoch);
        Ok(())
    }

    /// The largest epoch image `img` has committed, or `None`. Scans the
    /// backing directory too, so a freshly respawned process sees the
    /// epochs its predecessor wrote.
    pub fn latest_committed(&self, img: usize) -> Option<u64> {
        let mut best = self
            .committed
            .lock()
            .get(&img)
            .and_then(|s| s.iter().next_back().copied());
        if let Some(dir) = &self.dir {
            if let Ok(entries) = std::fs::read_dir(dir) {
                let prefix = format!("img{img}-epoch");
                for e in entries.flatten() {
                    let name = e.file_name();
                    let name = name.to_string_lossy();
                    if let Some(rest) = name.strip_prefix(&prefix) {
                        if let Some(num) = rest.strip_suffix(".ckpt") {
                            if let Ok(ep) = num.parse::<u64>() {
                                best = Some(best.map_or(ep, |b: u64| b.max(ep)));
                            }
                        }
                    }
                }
            }
        }
        best
    }

    /// Load image `img`'s committed snapshot for `epoch`, from memory or
    /// disk. `None` when the epoch was never committed (or the file fails
    /// validation — a torn write is treated as absent, which the
    /// min-resolution protocol then skips past).
    pub fn load(&self, img: usize, epoch: u64) -> Option<Vec<Vec<u8>>> {
        if let Some(p) = self.mem.lock().get(&(img, epoch)) {
            return Some(p.clone());
        }
        let dir = self.dir.as_ref()?;
        let mut f = std::fs::File::open(Self::final_path(dir, img, epoch)).ok()?;
        let mut bytes = Vec::new();
        f.read_to_end(&mut bytes).ok()?;
        decode_ckpt(&bytes, epoch)
    }

    /// Drop all snapshots strictly older than `epoch` (garbage collection
    /// between successful checkpoints).
    pub fn prune_below(&self, img: usize, epoch: u64) {
        let mut mem = self.mem.lock();
        let stale: Vec<(usize, u64)> = mem.range((img, 0)..(img, epoch)).map(|(k, _)| *k).collect();
        for k in &stale {
            mem.remove(k);
        }
        drop(mem);
        if let Some(set) = self.committed.lock().get_mut(&img) {
            set.retain(|&e| e >= epoch);
        }
        if let Some(dir) = &self.dir {
            for (_, e) in stale {
                let _ = std::fs::remove_file(Self::final_path(dir, img, e));
            }
        }
    }
}

fn decode_ckpt(bytes: &[u8], epoch: u64) -> Option<Vec<Vec<u8>>> {
    let mut at = 0usize;
    let u64_at = |at: &mut usize| -> Option<u64> {
        let v = u64::from_le_bytes(bytes.get(*at..*at + 8)?.try_into().ok()?);
        *at += 8;
        Some(v)
    };
    if u64_at(&mut at)? != CKPT_MAGIC || u64_at(&mut at)? != epoch {
        return None;
    }
    let count = u64_at(&mut at)? as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let len = u64_at(&mut at)? as usize;
        out.push(bytes.get(at..at + len)?.to_vec());
        at += len;
    }
    if at != bytes.len() {
        return None;
    }
    Some(out)
}

/// Convert a caught panic payload into a [`RecoveryError`], preferring the
/// fabric's own poison report when present.
pub(crate) fn panic_to_recovery(
    fabric: &caf_fabric::ArcFabric,
    payload: Box<dyn std::any::Any + Send>,
) -> RecoveryError {
    if let Err(e) = fabric.health() {
        return e;
    }
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "non-string panic payload".to_string());
    RecoveryError::Poisoned(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_memory_roundtrip_and_latest() {
        let s = CheckpointStore::in_memory();
        assert_eq!(s.latest_committed(0), None);
        s.commit(0, 1, &[vec![1, 2, 3]]).unwrap();
        s.commit(0, 2, &[vec![4, 5]]).unwrap();
        assert_eq!(s.latest_committed(0), Some(2));
        assert_eq!(s.load(0, 1), Some(vec![vec![1, 2, 3]]));
        assert_eq!(s.load(0, 3), None);
    }

    #[test]
    fn file_backed_survives_a_new_store_instance() {
        let dir = std::env::temp_dir().join(format!("caf-ckpt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let s = CheckpointStore::file_backed(&dir).unwrap();
            s.commit(3, 7, &[vec![9u8; 100], vec![]]).unwrap();
        }
        // A fresh store (a "respawned process") sees the committed epoch.
        let s2 = CheckpointStore::file_backed(&dir).unwrap();
        assert_eq!(s2.latest_committed(3), Some(7));
        assert_eq!(s2.load(3, 7), Some(vec![vec![9u8; 100], vec![]]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_file_is_treated_as_absent() {
        let dir = std::env::temp_dir().join(format!("caf-ckpt-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // A half-written (pre-rename) file never counts...
        std::fs::write(dir.join("img0-epoch5.ckpt.tmp"), [0u8; 12]).unwrap();
        // ...and a corrupt "committed" file fails validation on load.
        std::fs::write(dir.join("img0-epoch6.ckpt"), [0u8; 12]).unwrap();
        let s = CheckpointStore::file_backed(&dir).unwrap();
        assert_eq!(
            s.latest_committed(0),
            Some(6),
            "file exists so it is scanned"
        );
        assert_eq!(s.load(0, 5), None);
        assert_eq!(s.load(0, 6), None, "torn payload must not decode");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_drops_old_epochs() {
        let s = CheckpointStore::in_memory();
        for e in 1..=4 {
            s.commit(1, e, &[vec![e as u8]]).unwrap();
        }
        s.prune_below(1, 3);
        assert_eq!(s.load(1, 2), None);
        assert_eq!(s.load(1, 3), Some(vec![vec![3]]));
        assert_eq!(s.latest_committed(1), Some(4));
    }
}
