//! Collectives on a shrunken (recovery) topology: `create_among` must
//! yield a correct team for *any* survivor set — including the degenerate
//! shapes a real failure produces: the bootstrap leader (rank 0) dead, an
//! entire node dead, and arbitrary scatter — across the full algorithm
//! matrix, since the hierarchy the algorithms key on changes shape.

use caf_collectives::{BarrierAlgo, BcastAlgo, CollectiveConfig, GatherAlgo, ReduceAlgo, TeamComm};
use caf_fabric::{run_spmd, ArcFabric, SimConfig, SimFabric};
use caf_topology::{presets, ImageMap, Placement, ProcId};

fn fabric(nodes: usize, cores: usize, images: usize) -> ArcFabric {
    let map = ImageMap::new(presets::mini(nodes, cores), images, &Placement::Packed);
    SimFabric::new(map, SimConfig::default())
}

/// The full per-dimension algorithm matrix on top of the two-level base,
/// plus the three presets (mirrors the caf-check 19-cell matrix).
fn algo_matrix() -> Vec<CollectiveConfig> {
    let mut m = vec![
        CollectiveConfig::auto(),
        CollectiveConfig::one_level(),
        CollectiveConfig::two_level(),
    ];
    for b in [
        BarrierAlgo::CentralCounter,
        BarrierAlgo::Dissemination,
        BarrierAlgo::BinomialTree,
        BarrierAlgo::Tdlb,
        BarrierAlgo::TdlbMultilevel,
    ] {
        m.push(CollectiveConfig {
            barrier: b,
            ..CollectiveConfig::two_level()
        });
    }
    for r in [
        ReduceAlgo::FlatRecursiveDoubling,
        ReduceAlgo::FlatBinomial,
        ReduceAlgo::TwoLevel,
        ReduceAlgo::TwoLevelPipelined,
        ReduceAlgo::Rabenseifner,
    ] {
        m.push(CollectiveConfig {
            reduce: r,
            ..CollectiveConfig::two_level()
        });
    }
    for b in [
        BcastAlgo::FlatLinear,
        BcastAlgo::FlatBinomial,
        BcastAlgo::TwoLevel,
        BcastAlgo::TwoLevelPipelined,
    ] {
        m.push(CollectiveConfig {
            bcast: b,
            ..CollectiveConfig::two_level()
        });
    }
    for g in [GatherAlgo::FlatLinear, GatherAlgo::TwoLevel] {
        m.push(CollectiveConfig {
            gather: g,
            ..CollectiveConfig::two_level()
        });
    }
    m
}

/// Run every matrix cell over `survivors` (0-based global ranks) on a
/// 2-node × 4-image fabric and verify barrier / reduce / bcast / gather
/// results on the shrunken topology. Non-survivors retire immediately —
/// exactly what a recovered fleet looks like after `form_recovery_team`.
fn check_survivor_set(survivors: &'static [usize]) {
    for (cell, cfg) in algo_matrix().into_iter().enumerate() {
        let f = fabric(2, 4, 8);
        let f2 = f.clone();
        run_spmd(f, move |me| {
            if !survivors.contains(&me.index()) {
                f2.image_done(me);
                return;
            }
            let members: Vec<ProcId> = survivors.iter().map(|&i| ProcId(i)).collect();
            let m = members.len();
            let mut boot = 0u64;
            let mut comm = TeamComm::create_among(f2.clone(), me, members.clone(), cfg, &mut boot);
            let rank = comm.rank();

            // Reduce: dense-renumbered ranks sum to m(m+1)/2. Payload big
            // enough to engage the chunked/pipelined paths.
            let mut buf = vec![rank as i64 + 1; 600];
            comm.co_sum(&mut buf);
            let want = (m * (m + 1) / 2) as i64;
            assert!(
                buf.iter().all(|&v| v == want),
                "cell {cell}: co_sum {} != {want} on {survivors:?}",
                buf[0]
            );

            // Broadcast from the LAST member (never the old global leader).
            let mut b = if rank == m - 1 {
                vec![0xC0FFEEu64; 500]
            } else {
                vec![0u64; 500]
            };
            comm.co_broadcast(&mut b, m - 1);
            assert!(
                b.iter().all(|&v| v == 0xC0FFEE),
                "cell {cell}: bcast lost on {survivors:?}"
            );

            // Gather to rank 0 of the new numbering.
            let got = comm.co_gather(&[(rank + 1) as u64], 0);
            if rank == 0 {
                let want: Vec<u64> = (1..=m as u64).collect();
                assert_eq!(got.unwrap(), want, "cell {cell}: gather on {survivors:?}");
            } else {
                assert!(got.is_none());
            }

            // Barrier really separates epochs: flag-free check via co_max
            // of a per-rank value written after the barrier.
            comm.barrier();
            let mut mx = [rank as i64];
            comm.co_max(&mut mx);
            assert_eq!(mx[0], (m - 1) as i64, "cell {cell}");

            f2.image_done(me);
        });
    }
}

#[test]
fn whole_node_dead_team_spans_one_node() {
    // Node 0 (images 0..4) died entirely: the hierarchy collapses to a
    // single node set — the degenerate case where "leaders" and "slaves"
    // of the two-level algorithms all live on one node.
    check_survivor_set(&[4, 5, 6, 7]);
}

#[test]
fn bootstrap_leader_dead_new_leader_takes_over() {
    // Global rank 0 — the old control-barrier leader and the root of most
    // tree algorithms — is dead; members[0] moves to global rank 1.
    check_survivor_set(&[1, 2, 3, 4, 5, 6, 7]);
}

#[test]
fn scattered_survivors_asymmetric_nodes() {
    // One survivor on node 0, three on node 1: maximally asymmetric
    // hierarchy (a leader with no slaves next to a nearly full node).
    check_survivor_set(&[2, 4, 6, 7]);
}

#[test]
fn two_survivors_one_per_node() {
    // Minimal non-trivial team: every collective degenerates to a pair.
    check_survivor_set(&[3, 5]);
}

#[test]
fn single_survivor_all_collectives_are_identities() {
    check_survivor_set(&[6]);
}

#[test]
fn create_among_full_set_matches_create_initial_numbering() {
    // Sanity: `create_among` over everyone is just the initial team.
    let f = fabric(2, 4, 8);
    let f2 = f.clone();
    run_spmd(f, move |me| {
        let members: Vec<ProcId> = (0..8).map(ProcId).collect();
        let mut boot = 0u64;
        let mut comm =
            TeamComm::create_among(f2.clone(), me, members, CollectiveConfig::auto(), &mut boot);
        assert_eq!(comm.rank(), me.index());
        assert_eq!(comm.size(), 8);
        let mut v = [1i64];
        comm.co_sum(&mut v);
        assert_eq!(v[0], 8);
        f2.image_done(me);
    });
}
